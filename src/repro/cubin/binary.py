"""The CUBIN-like binary container.

A :class:`Cubin` holds everything GPA's static analyzer reads from a real
CUBIN:

* the architecture flag (``sm_70`` for Volta), from which architectural
  features are fetched;
* function symbols with their visibility (``global`` kernels vs ``device``
  functions);
* the encoded code section of each function (fixed-width 128-bit words);
* a line table mapping instruction offsets to source file/line, present when
  the code was compiled with ``-lineinfo``;
* DWARF-like inline information (which ranges of a function were inlined
  from which callee), used to build inline stacks;
* resource usage (registers per thread, static shared memory) needed for
  occupancy analysis.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.encoder import decode_program, encode_program
from repro.isa.instruction import Instruction


class FunctionVisibility(enum.Enum):
    """Symbol visibility recorded for each function."""

    GLOBAL = "global"  # a kernel entry point (__global__)
    DEVICE = "device"  # a device function (__device__)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class LineTableEntry:
    """One row of the line table: instruction offset -> source location."""

    offset: int
    file: str
    line: int


@dataclass(frozen=True)
class InlineRange:
    """A contiguous range of instruction offsets inlined from a callee."""

    start_offset: int
    end_offset: int
    callee: str
    call_site_line: Optional[int] = None

    def contains(self, offset: int) -> bool:
        return self.start_offset <= offset <= self.end_offset


@dataclass
class Function:
    """One function in a CUBIN."""

    name: str
    visibility: FunctionVisibility
    instructions: List[Instruction]
    #: Registers used per thread (drives occupancy and spill analysis).
    registers_per_thread: int = 32
    #: Static shared memory used per block, in bytes.
    shared_memory_bytes: int = 0
    #: Inline information, outermost ranges only (nested inlining is encoded
    #: by the order of ranges: later ranges that sit inside earlier ones are
    #: deeper frames).
    inline_ranges: List[InlineRange] = field(default_factory=list)
    #: Source file most of this function maps to.
    source_file: Optional[str] = None
    #: Raw disassembly text this function was ingested from, when it came
    #: through the SASS frontend (:mod:`repro.sass`).  Real-SASS operands
    #: (constant banks, uniform registers, unknown opcodes) do not fit the
    #: fixed-width encoder, so serialization falls back to this text and
    #: deserialization re-ingests it.
    source_listing: Optional[str] = None

    @property
    def is_kernel(self) -> bool:
        return self.visibility is FunctionVisibility.GLOBAL

    @property
    def code_size(self) -> int:
        """Code section size in bytes."""
        from repro.isa.instruction import INSTRUCTION_SIZE

        return len(self.instructions) * INSTRUCTION_SIZE

    def line_table(self) -> List[LineTableEntry]:
        """The line table recovered from instruction line annotations."""
        entries = []
        for instruction in self.instructions:
            if instruction.line is not None:
                entries.append(
                    LineTableEntry(
                        offset=instruction.offset,
                        file=instruction.source_file or self.source_file or "<unknown>",
                        line=instruction.line,
                    )
                )
        return entries

    def encode(self) -> bytes:
        """Encode the function's code section into bytes."""
        return encode_program(self.instructions)

    def instruction_at(self, offset: int) -> Instruction:
        for instruction in self.instructions:
            if instruction.offset == offset:
                return instruction
        raise KeyError(f"no instruction at offset {offset:#x} in {self.name}")

    def inline_stack_at(self, offset: int) -> Tuple[str, ...]:
        """Inline call stack (outermost first) covering ``offset``."""
        stack = []
        for inline_range in self.inline_ranges:
            if inline_range.contains(offset):
                stack.append(inline_range.callee)
        return tuple(stack)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Cubin:
    """A GPU binary: several functions compiled for one architecture."""

    arch_flag: str
    functions: Dict[str, Function] = field(default_factory=dict)
    #: Name of the module/translation unit (for reports only).
    module_name: str = "module.cubin"

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r} in {self.module_name}")
        self.functions[function.name] = function

    def kernels(self) -> List[Function]:
        """All global (kernel) functions."""
        return [f for f in self.functions.values() if f.is_kernel]

    def device_functions(self) -> List[Function]:
        """All device functions."""
        return [f for f in self.functions.values() if not f.is_kernel]

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError as exc:
            raise KeyError(
                f"no function {name!r} in {self.module_name}; "
                f"available: {sorted(self.functions)}"
            ) from exc

    # ------------------------------------------------------------------
    # Serialization (profiles and binaries are dumped for offline analysis)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable description of the binary.

        Code sections are stored as hex-encoded bytes of the fixed-width
        encoding; metadata (visibility, resources, line/inline info) is kept
        alongside so :meth:`from_dict` can reconstruct the binary.  Functions
        ingested from real disassembly often use operands the fixed-width
        encoding cannot express; those serialize their raw listing text
        (``"sass"``) instead of a ``"code"`` section.
        """
        from repro.isa.encoder import EncodingError

        payload = {"arch_flag": self.arch_flag, "module_name": self.module_name, "functions": {}}
        for name, function in self.functions.items():
            try:
                code = {"code": function.encode().hex()}
            except EncodingError:
                if function.source_listing is None:
                    raise
                code = {"sass": function.source_listing}
            payload["functions"][name] = {
                "visibility": function.visibility.value,
                "registers_per_thread": function.registers_per_thread,
                "shared_memory_bytes": function.shared_memory_bytes,
                "source_file": function.source_file,
                **code,
                "base_offset": function.instructions[0].offset if function.instructions else 0,
                "lines": [
                    [entry.offset, entry.file, entry.line] for entry in function.line_table()
                ],
                "inline_ranges": [
                    [r.start_offset, r.end_offset, r.callee, r.call_site_line]
                    for r in function.inline_ranges
                ],
                "targets": {
                    str(i.offset): i.target
                    for i in function.instructions
                    if i.target is not None
                },
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Cubin":
        """Reconstruct a binary from :meth:`to_dict` output."""
        from dataclasses import replace

        cubin = cls(arch_flag=payload["arch_flag"], module_name=payload.get("module_name", "module.cubin"))
        for name, data in payload["functions"].items():
            source_listing = data.get("sass")
            if source_listing is not None:
                # Re-ingest functions that serialized their raw listing.
                from repro.sass.frontend import ingest_listing

                ingested, _report = ingest_listing(
                    source_listing, source_name=name, default_arch=payload["arch_flag"]
                )
                instructions = list(next(iter(ingested.functions.values())).instructions)
            else:
                code = bytes.fromhex(data["code"])
                instructions = decode_program(code, base_offset=data.get("base_offset", 0))
            line_by_offset = {entry[0]: (entry[1], entry[2]) for entry in data.get("lines", [])}
            targets = {int(k): v for k, v in data.get("targets", {}).items()}
            restored = []
            for instruction in instructions:
                file_line = line_by_offset.get(instruction.offset)
                updates = {}
                if file_line is not None:
                    updates["source_file"] = file_line[0]
                    updates["line"] = file_line[1]
                if instruction.offset in targets:
                    updates["target"] = targets[instruction.offset]
                restored.append(replace(instruction, **updates) if updates else instruction)
            function = Function(
                name=name,
                visibility=FunctionVisibility(data["visibility"]),
                instructions=restored,
                registers_per_thread=data.get("registers_per_thread", 32),
                shared_memory_bytes=data.get("shared_memory_bytes", 0),
                source_file=data.get("source_file"),
                source_listing=source_listing,
                inline_ranges=[
                    InlineRange(r[0], r[1], r[2], r[3]) for r in data.get("inline_ranges", [])
                ],
            )
            cubin.add_function(function)
        return cubin

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Cubin":
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.functions)
