"""Disassembler (nvdisasm substitute).

GPA runs ``nvdisasm`` over CUBINs to decode instructions and dump raw control
flow graphs.  Our disassembler performs the same role on the fixed-width
encoding: it decodes a function's code section back to instructions, renders
an nvdisasm-like listing (with control-code brackets), and produces the raw
CFG that the static analyzer then refines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.cubin.binary import Cubin, Function
from repro.isa.encoder import decode_program


@dataclass
class DisassembledFunction:
    """The output of disassembling one function."""

    name: str
    listing: str
    instructions: list
    cfg: ControlFlowGraph


def render_listing(function: Function, with_control: bool = True) -> str:
    """Render an nvdisasm-like text listing of a function."""
    lines = [f"\t.function {function.name} ({function.visibility.value})"]
    last_line: Optional[int] = None
    for instruction in function.instructions:
        if instruction.line is not None and instruction.line != last_line:
            source = instruction.source_file or function.source_file or "<unknown>"
            lines.append(f"\t//## File \"{source}\", line {instruction.line}")
            last_line = instruction.line
        lines.append(f"        /*{instruction.offset:04x}*/  {instruction.render(with_control)}")
    return "\n".join(lines)


def disassemble_function(function: Function, from_bytes: bool = False) -> DisassembledFunction:
    """Disassemble one function, optionally round-tripping through its encoding.

    With ``from_bytes=True`` the instructions are re-decoded from the encoded
    code section (exercising the 128-bit encoder/decoder); otherwise the
    in-memory instruction list is used, which preserves information the
    compact encoding cannot represent exactly (long line numbers, more than
    two modifiers).
    """
    if from_bytes:
        instructions = decode_program(function.encode())
    else:
        instructions = list(function.instructions)
    cfg = build_cfg(instructions)
    listing = render_listing(function)
    return DisassembledFunction(
        name=function.name, listing=listing, instructions=instructions, cfg=cfg
    )


def disassemble_cubin(cubin: Cubin, from_bytes: bool = False) -> Dict[str, DisassembledFunction]:
    """Disassemble every function in a binary."""
    return {
        name: disassemble_function(function, from_bytes=from_bytes)
        for name, function in cubin.functions.items()
    }
