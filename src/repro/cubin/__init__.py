"""CUBIN-like binary container and kernel authoring DSL.

The paper's profiler records CUDA binaries (CUBINs) for offline analysis;
GPA's static analyzer then recovers control flow, program structure and
architectural features from them.  This package provides:

* :class:`~repro.cubin.binary.Cubin` / :class:`~repro.cubin.binary.Function`
  — the binary container (architecture flag, function symbols with
  global/device visibility, encoded code sections, line tables and
  DWARF-like inline information, register and shared-memory usage);
* :class:`~repro.cubin.builder.KernelBuilder` — a DSL for authoring SASS-like
  kernels, including an assembler pass that assigns control codes
  (stall cycles, write/read barriers and wait masks) the way ptxas does;
* :mod:`repro.cubin.disasm` — an nvdisasm substitute that decodes code
  sections back to instruction listings and raw control flow graphs.
"""

from repro.cubin.binary import Cubin, Function, FunctionVisibility, LineTableEntry
from repro.cubin.builder import CubinBuilder, KernelBuilder
from repro.cubin.disasm import disassemble_cubin, disassemble_function

__all__ = [
    "Cubin",
    "CubinBuilder",
    "Function",
    "FunctionVisibility",
    "KernelBuilder",
    "LineTableEntry",
    "disassemble_cubin",
    "disassemble_function",
]
