"""Kernel authoring DSL and the control-code "assembler" pass.

Real CUBINs are produced by ``nvcc``/``ptxas``; our synthetic workloads are
authored directly at the SASS level with :class:`KernelBuilder`.  The builder
offers:

* convenience emitters for the common opcodes (loads/stores in every address
  space, integer/fp32/fp64/SFU arithmetic, conversions, predicate setters,
  branches, barriers);
* labels and a ``loop(...)`` context manager that lays out loop bodies and
  back edges;
* an ``inlined(...)`` context manager that records DWARF-like inline ranges;
* source-line tracking (``at_line``) so every instruction carries the line
  mapping ``-lineinfo`` would provide;
* an assembler pass that assigns *control codes* — write/read barriers, wait
  masks and stall cycles — from the def-use structure of the instruction
  stream, mirroring what ptxas does.  Branches, calls and synchronization
  instructions wait on all outstanding barriers, which reproduces the
  Figure 3 situation where a ``BRA`` that never reads ``R0`` still waits on
  the barrier set by an earlier ``LDG``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.cubin.binary import Cubin, Function, FunctionVisibility, InlineRange
from repro.isa.instruction import INSTRUCTION_SIZE, ControlCode, Instruction, MAX_STALL_CYCLES
from repro.isa.opcodes import lookup_opcode
from repro.isa.registers import (
    ALWAYS,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    SpecialRegister,
)


def r(index: int) -> RegisterOperand:
    """Shorthand register constructor used by workload definitions."""
    return RegisterOperand(index)


def p(index: int, negated: bool = False) -> Predicate:
    """Shorthand predicate constructor."""
    return Predicate(index, negated)


def imm(value: float, is_double: bool = False) -> ImmediateOperand:
    """Shorthand immediate constructor."""
    return ImmediateOperand(float(value), is_double=is_double)


def mem(base: Union[int, RegisterOperand], offset: int = 0,
        space: MemorySpace = MemorySpace.GLOBAL) -> MemoryOperand:
    """Shorthand memory-operand constructor."""
    base_reg = base if isinstance(base, RegisterOperand) else RegisterOperand(base)
    return MemoryOperand(base=base_reg, offset=offset, space=space)


_SPACE_BY_LOAD = {
    "LDG": MemorySpace.GLOBAL,
    "LDL": MemorySpace.LOCAL,
    "LDS": MemorySpace.SHARED,
    "LDC": MemorySpace.CONSTANT,
    "LD": MemorySpace.GENERIC,
    "TEX": MemorySpace.TEXTURE,
}
_SPACE_BY_STORE = {
    "STG": MemorySpace.GLOBAL,
    "STL": MemorySpace.LOCAL,
    "STS": MemorySpace.SHARED,
    "ST": MemorySpace.GENERIC,
}


@dataclass
class _PendingBranch:
    """A branch emitted before its target label was defined."""

    position: int
    label: str


class KernelBuilder:
    """Builds one function (kernel or device function) instruction by instruction."""

    def __init__(
        self,
        name: str,
        visibility: FunctionVisibility = FunctionVisibility.GLOBAL,
        source_file: Optional[str] = None,
        registers_per_thread: Optional[int] = None,
        shared_memory_bytes: int = 0,
    ):
        self.name = name
        self.visibility = visibility
        self.source_file = source_file
        self.registers_per_thread = registers_per_thread
        self.shared_memory_bytes = shared_memory_bytes
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending_branches: List[_PendingBranch] = []
        self._current_line: Optional[int] = None
        self._inline_stack: List[Tuple[str, int, Optional[int]]] = []
        self._inline_ranges: List[InlineRange] = []

    # ------------------------------------------------------------------
    # Source mapping
    # ------------------------------------------------------------------
    def at_line(self, line: int) -> "KernelBuilder":
        """Set the source line attached to subsequently emitted instructions."""
        self._current_line = line
        return self

    @contextlib.contextmanager
    def inlined(self, callee: str, call_site_line: Optional[int] = None):
        """Record that instructions emitted inside came from an inlined callee."""
        start = self._next_offset()
        self._inline_stack.append((callee, start, call_site_line))
        try:
            yield self
        finally:
            callee_name, start_offset, site_line = self._inline_stack.pop()
            end = self._next_offset() - INSTRUCTION_SIZE
            if end >= start_offset:
                self._inline_ranges.append(
                    InlineRange(start_offset, end, callee_name, site_line)
                )

    # ------------------------------------------------------------------
    # Labels, branches, loops
    # ------------------------------------------------------------------
    def label(self, name: str) -> "KernelBuilder":
        """Define a label at the next instruction offset."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r} in {self.name}")
        self._labels[name] = self._next_offset()
        return self

    def bra(self, label: str, predicate: Predicate = ALWAYS) -> Instruction:
        """Emit a branch to ``label`` (which may be defined later)."""
        instruction = self.emit("BRA", predicate=predicate)
        if label in self._labels:
            self._instructions[-1] = replace(instruction, target=self._labels[label])
        else:
            self._pending_branches.append(_PendingBranch(len(self._instructions) - 1, label))
        return self._instructions[-1]

    @contextlib.contextmanager
    def loop(self, name: str, predicate: Optional[Predicate] = None):
        """Lay out a loop: a header label on entry, a back edge on exit.

        ``predicate`` guards the back edge (the typical ``@P0 BRA head``
        pattern); if omitted the back edge is unconditional and the loop must
        be exited by a branch inside the body.
        """
        head = f"{name}__head"
        self.label(head)
        try:
            yield self
        finally:
            self.bra(head, predicate=predicate or ALWAYS)

    # ------------------------------------------------------------------
    # Core emitter
    # ------------------------------------------------------------------
    def _next_offset(self) -> int:
        return len(self._instructions) * INSTRUCTION_SIZE

    def emit(
        self,
        opcode: str,
        dests: Sequence[object] = (),
        sources: Sequence[object] = (),
        modifiers: Sequence[str] = (),
        predicate: Predicate = ALWAYS,
        target: Optional[int] = None,
        line: Optional[int] = None,
    ) -> Instruction:
        """Emit one instruction; returns it (already appended)."""
        lookup_opcode(opcode)  # validate early
        instruction = Instruction(
            offset=self._next_offset(),
            opcode=opcode,
            modifiers=tuple(modifiers),
            predicate=predicate,
            dests=tuple(dests),
            sources=tuple(sources),
            target=target,
            line=line if line is not None else self._current_line,
            source_file=self.source_file,
            inline_stack=tuple(frame[0] for frame in self._inline_stack),
        )
        self._instructions.append(instruction)
        return instruction

    # ------------------------------------------------------------------
    # Convenience emitters
    # ------------------------------------------------------------------
    def s2r(self, dest: int, special: str, predicate: Predicate = ALWAYS) -> Instruction:
        return self.emit("S2R", [r(dest)], [SpecialRegister(special)], predicate=predicate)

    def mov(self, dest: int, source: object, predicate: Predicate = ALWAYS) -> Instruction:
        src = source if not isinstance(source, int) else r(source)
        return self.emit("MOV", [r(dest)], [src], predicate=predicate)

    def mov_imm(self, dest: int, value: float, predicate: Predicate = ALWAYS) -> Instruction:
        return self.emit("MOV32I", [r(dest)], [imm(value)], predicate=predicate)

    def _binary(self, opcode: str, dest: int, a: object, b: object,
                modifiers: Sequence[str] = (), predicate: Predicate = ALWAYS) -> Instruction:
        operands = [x if not isinstance(x, int) else r(x) for x in (a, b)]
        return self.emit(opcode, [r(dest)], operands, modifiers=modifiers, predicate=predicate)

    def _ternary(self, opcode: str, dest: int, a: object, b: object, c: object,
                 modifiers: Sequence[str] = (), predicate: Predicate = ALWAYS) -> Instruction:
        operands = [x if not isinstance(x, int) else r(x) for x in (a, b, c)]
        return self.emit(opcode, [r(dest)], operands, modifiers=modifiers, predicate=predicate)

    def iadd(self, dest: int, a: object, b: object, predicate: Predicate = ALWAYS) -> Instruction:
        return self._binary("IADD", dest, a, b, predicate=predicate)

    def imad(self, dest: int, a: object, b: object, c: object, wide: bool = False,
             predicate: Predicate = ALWAYS) -> Instruction:
        modifiers = ("WIDE",) if wide else ()
        return self._ternary("IMAD", dest, a, b, c, modifiers=modifiers, predicate=predicate)

    def idiv(self, dest: int, a: object, b: object, predicate: Predicate = ALWAYS) -> Instruction:
        return self._binary("IDIV", dest, a, b, predicate=predicate)

    def shl(self, dest: int, a: object, b: object, predicate: Predicate = ALWAYS) -> Instruction:
        return self._binary("SHL", dest, a, b, predicate=predicate)

    def lop3(self, dest: int, a: object, b: object, c: object,
             predicate: Predicate = ALWAYS) -> Instruction:
        return self._ternary("LOP3", dest, a, b, c, predicate=predicate)

    def fadd(self, dest: int, a: object, b: object, predicate: Predicate = ALWAYS) -> Instruction:
        return self._binary("FADD", dest, a, b, predicate=predicate)

    def fmul(self, dest: int, a: object, b: object, predicate: Predicate = ALWAYS) -> Instruction:
        return self._binary("FMUL", dest, a, b, predicate=predicate)

    def ffma(self, dest: int, a: object, b: object, c: object,
             predicate: Predicate = ALWAYS) -> Instruction:
        return self._ternary("FFMA", dest, a, b, c, predicate=predicate)

    def dadd(self, dest: int, a: object, b: object, predicate: Predicate = ALWAYS) -> Instruction:
        return self._binary("DADD", dest, a, b, predicate=predicate)

    def dmul(self, dest: int, a: object, b: object, predicate: Predicate = ALWAYS) -> Instruction:
        return self._binary("DMUL", dest, a, b, predicate=predicate)

    def dfma(self, dest: int, a: object, b: object, c: object,
             predicate: Predicate = ALWAYS) -> Instruction:
        return self._ternary("DFMA", dest, a, b, c, predicate=predicate)

    def f2f(self, dest: int, source: object, modifiers: Sequence[str] = ("F64", "F32"),
            predicate: Predicate = ALWAYS) -> Instruction:
        src = source if not isinstance(source, int) else r(source)
        return self.emit("F2F", [r(dest)], [src], modifiers=modifiers, predicate=predicate)

    def i2f(self, dest: int, source: object, predicate: Predicate = ALWAYS) -> Instruction:
        src = source if not isinstance(source, int) else r(source)
        return self.emit("I2F", [r(dest)], [src], predicate=predicate)

    def mufu(self, dest: int, source: object, function: str = "RCP",
             predicate: Predicate = ALWAYS) -> Instruction:
        src = source if not isinstance(source, int) else r(source)
        return self.emit("MUFU", [r(dest)], [src], modifiers=(function,), predicate=predicate)

    def isetp(self, dest_pred: int, a: object, b: object, condition: str = "GE",
              predicate: Predicate = ALWAYS) -> Instruction:
        operands = [x if not isinstance(x, int) else r(x) for x in (a, b)]
        return self.emit(
            "ISETP", [p(dest_pred)], operands, modifiers=(condition, "AND"), predicate=predicate
        )

    def fsetp(self, dest_pred: int, a: object, b: object, condition: str = "GT",
              predicate: Predicate = ALWAYS) -> Instruction:
        operands = [x if not isinstance(x, int) else r(x) for x in (a, b)]
        return self.emit(
            "FSETP", [p(dest_pred)], operands, modifiers=(condition, "AND"), predicate=predicate
        )

    def sel(self, dest: int, a: object, b: object, pred: Predicate,
            predicate: Predicate = ALWAYS) -> Instruction:
        operands = [x if not isinstance(x, int) else r(x) for x in (a, b)]
        return self.emit("SEL", [r(dest)], operands + [pred], predicate=predicate)

    # --- memory --------------------------------------------------------
    def _load(self, opcode: str, dest: int, addr: Union[int, MemoryOperand], offset: int,
              modifiers: Sequence[str], predicate: Predicate) -> Instruction:
        operand = addr if isinstance(addr, MemoryOperand) else mem(addr, offset, _SPACE_BY_LOAD[opcode])
        return self.emit(opcode, [r(dest)], [operand], modifiers=modifiers, predicate=predicate)

    def _store(self, opcode: str, addr: Union[int, MemoryOperand], source: int, offset: int,
               modifiers: Sequence[str], predicate: Predicate) -> Instruction:
        operand = addr if isinstance(addr, MemoryOperand) else mem(addr, offset, _SPACE_BY_STORE[opcode])
        return self.emit(opcode, [operand], [r(source)], modifiers=modifiers, predicate=predicate)

    def ldg(self, dest: int, addr: Union[int, MemoryOperand], offset: int = 0,
            modifiers: Sequence[str] = ("E", "32"), predicate: Predicate = ALWAYS) -> Instruction:
        return self._load("LDG", dest, addr, offset, modifiers, predicate)

    def stg(self, addr: Union[int, MemoryOperand], source: int, offset: int = 0,
            modifiers: Sequence[str] = ("E", "32"), predicate: Predicate = ALWAYS) -> Instruction:
        return self._store("STG", addr, source, offset, modifiers, predicate)

    def lds(self, dest: int, addr: Union[int, MemoryOperand], offset: int = 0,
            predicate: Predicate = ALWAYS) -> Instruction:
        return self._load("LDS", dest, addr, offset, ("32",), predicate)

    def sts(self, addr: Union[int, MemoryOperand], source: int, offset: int = 0,
            predicate: Predicate = ALWAYS) -> Instruction:
        return self._store("STS", addr, source, offset, ("32",), predicate)

    def ldl(self, dest: int, addr: Union[int, MemoryOperand], offset: int = 0,
            predicate: Predicate = ALWAYS) -> Instruction:
        return self._load("LDL", dest, addr, offset, ("32",), predicate)

    def stl(self, addr: Union[int, MemoryOperand], source: int, offset: int = 0,
            predicate: Predicate = ALWAYS) -> Instruction:
        return self._store("STL", addr, source, offset, ("32",), predicate)

    def ldc(self, dest: int, addr: Union[int, MemoryOperand], offset: int = 0,
            predicate: Predicate = ALWAYS) -> Instruction:
        return self._load("LDC", dest, addr, offset, ("32",), predicate)

    # --- synchronization / control --------------------------------------
    def bar_sync(self) -> Instruction:
        return self.emit("BAR", modifiers=("SYNC",))

    def membar(self) -> Instruction:
        return self.emit("MEMBAR", modifiers=("GPU",))

    def call(self, callee: str) -> Instruction:
        """Emit a call; the callee is recorded symbolically in the sources."""
        return self.emit("CAL", sources=[SpecialRegister(f"SR_GRIDID")], target=None)

    def nop(self) -> Instruction:
        return self.emit("NOP")

    def exit(self) -> Instruction:
        return self.emit("EXIT")

    def ret(self) -> Instruction:
        return self.emit("RET")

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, assign_control: bool = True) -> Function:
        """Finalize the function: resolve labels, assign control codes."""
        self._resolve_branches()
        instructions = list(self._instructions)
        if assign_control:
            instructions = assign_control_codes(instructions)
        registers = self.registers_per_thread
        if registers is None:
            registers = _max_register_used(instructions) + 1
        return Function(
            name=self.name,
            visibility=self.visibility,
            instructions=instructions,
            registers_per_thread=registers,
            shared_memory_bytes=self.shared_memory_bytes,
            inline_ranges=list(self._inline_ranges),
            source_file=self.source_file,
        )

    def _resolve_branches(self) -> None:
        unresolved = []
        for pending in self._pending_branches:
            if pending.label not in self._labels:
                unresolved.append(pending.label)
                continue
            instruction = self._instructions[pending.position]
            self._instructions[pending.position] = replace(
                instruction, target=self._labels[pending.label]
            )
        if unresolved:
            raise ValueError(f"unresolved labels in {self.name}: {sorted(set(unresolved))}")
        self._pending_branches = []


def _max_register_used(instructions: Sequence[Instruction]) -> int:
    highest = 0
    for instruction in instructions:
        for reg in instruction.defined_registers | instruction.used_registers:
            if not reg.is_zero:
                highest = max(highest, reg.index)
    return highest


def assign_control_codes(instructions: Sequence[Instruction]) -> List[Instruction]:
    """Assign write/read barriers, wait masks and stall cycles.

    The pass walks the instruction stream in order and mimics ptxas:

    * a variable-latency instruction that writes registers allocates a
      *write barrier*; later readers (or writers) of those registers wait on
      it;
    * a variable-latency instruction that reads registers (stores, atomics)
      allocates a *read barrier*; later writers of those registers wait on it
      (the WAR dependency of Figure 5b);
    * branches, calls, returns, exits and synchronization instructions wait
      on every outstanding barrier (the Figure 3 pattern);
    * fixed-latency producers get ``stall_cycles`` covering their latency
      when the very next instruction consumes their result.
    """
    result: List[Instruction] = []
    # barrier index -> set of register indices guarded (write barriers)
    write_guard: Dict[int, Set[int]] = {}
    # barrier index -> set of register indices being read (read barriers)
    read_guard: Dict[int, Set[int]] = {}
    next_barrier = 0

    def allocate_barrier() -> int:
        nonlocal next_barrier
        for probe in range(6):
            candidate = (next_barrier + probe) % 6
            if candidate not in write_guard and candidate not in read_guard:
                next_barrier = (candidate + 1) % 6
                return candidate
        # All barriers busy: reuse round-robin (oldest semantics approximated).
        candidate = next_barrier
        next_barrier = (next_barrier + 1) % 6
        write_guard.pop(candidate, None)
        read_guard.pop(candidate, None)
        return candidate

    ordered = list(instructions)
    for position, instruction in enumerate(ordered):
        info = instruction.info
        used = {reg.index for reg in instruction.used_registers}
        defined = {reg.index for reg in instruction.defined_registers}

        wait_mask: Set[int] = set()
        if instruction.is_branch or instruction.is_exit or instruction.is_call or instruction.is_synchronization:
            wait_mask.update(write_guard)
            wait_mask.update(read_guard)
        else:
            for barrier, guarded in write_guard.items():
                if guarded & (used | defined):
                    wait_mask.add(barrier)
            for barrier, guarded in read_guard.items():
                if guarded & defined:
                    wait_mask.add(barrier)

        for barrier in wait_mask:
            write_guard.pop(barrier, None)
            read_guard.pop(barrier, None)

        write_barrier: Optional[int] = None
        read_barrier: Optional[int] = None
        if info.is_variable_latency:
            if defined:
                write_barrier = allocate_barrier()
                write_guard[write_barrier] = set(defined)
            if info.is_store or (info.is_memory and not defined):
                read_barrier = allocate_barrier()
                read_guard[read_barrier] = set(used)

        stall_cycles = 1
        if not info.is_variable_latency and defined and position + 1 < len(ordered):
            next_instruction = ordered[position + 1]
            next_uses = {reg.index for reg in next_instruction.used_registers}
            if next_uses & defined:
                stall_cycles = min(info.latency, MAX_STALL_CYCLES)

        control = ControlCode(
            stall_cycles=stall_cycles,
            yield_flag=True,
            write_barrier=write_barrier,
            read_barrier=read_barrier,
            wait_mask=frozenset(wait_mask),
        )
        result.append(instruction.with_control(control))

    return result


class CubinBuilder:
    """Assembles several functions into a :class:`Cubin`."""

    def __init__(self, arch_flag: str = "sm_70", module_name: str = "module.cubin"):
        self.arch_flag = arch_flag
        self.module_name = module_name
        self._functions: List[Function] = []

    def add_function(self, function: Function) -> "CubinBuilder":
        self._functions.append(function)
        return self

    def kernel(self, name: str, **kwargs) -> KernelBuilder:
        """Create a :class:`KernelBuilder` for a global function."""
        return KernelBuilder(name, visibility=FunctionVisibility.GLOBAL, **kwargs)

    def device_function(self, name: str, **kwargs) -> KernelBuilder:
        """Create a :class:`KernelBuilder` for a device function."""
        return KernelBuilder(name, visibility=FunctionVisibility.DEVICE, **kwargs)

    def build(self) -> Cubin:
        cubin = Cubin(arch_flag=self.arch_flag, module_name=self.module_name)
        for function in self._functions:
            cubin.add_function(function)
        return cubin
