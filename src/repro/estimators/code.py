"""Code-optimization estimators (Section 5.2.1).

All quantities are sample counts from one kernel profile:

* ``T`` — total samples,
* ``A`` — active samples,
* ``L = T - A`` — latency samples,
* ``M`` — samples matched by a stall-elimination optimizer,
* ``M_L`` — latency samples matched by a latency-hiding optimizer.

Stall elimination assumes the matched stalls can at best be removed entirely
(Equation 2).  Latency hiding assumes matched latency samples can at best be
covered by moving *active* work into the stall slots, so the benefit is
bounded by the available active samples (Equation 4) — and therefore by 2x
overall (Theorem 5.1).  Optimizations that only rearrange code within a
scope (a loop or function) can only use the active samples of that scope
(Equation 5).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional


def _guarded_ratio(total: float, removed: float) -> float:
    """``total / (total - removed)`` guarded against degenerate inputs."""
    if total <= 0:
        return 1.0
    removed = min(max(removed, 0.0), total - 1e-9) if removed < total else total - 1e-9
    removed = max(removed, 0.0)
    return total / (total - removed)


def stall_elimination_speedup(total_samples: float, matched_stalls: float) -> float:
    """Equation 2: ``S_e = T / (T - M)``."""
    if total_samples <= 0:
        return 1.0
    matched = min(max(matched_stalls, 0.0), total_samples)
    return _guarded_ratio(total_samples, matched)


def latency_hiding_speedup(
    total_samples: float, active_samples: float, matched_latency_samples: float
) -> float:
    """Equation 4: ``S_h = T / (T - min(A, M_L))``.

    Equation 3 (``T / (T - M_L)``) is the unrefined kernel-level version; the
    refinement accounts for the fact that only active work can be moved into
    stall slots (Figure 6).
    """
    if total_samples <= 0:
        return 1.0
    matched = min(max(matched_latency_samples, 0.0), total_samples)
    active = max(active_samples, 0.0)
    return _guarded_ratio(total_samples, min(active, matched))


def latency_hiding_upper_bound() -> float:
    """Theorem 5.1: the speedup of latency-hiding optimizations is at most 2x."""
    return 2.0


def scoped_latency_hiding_speedup(
    total_samples: float,
    scope_active_samples: Iterable[float],
    matched_latency_samples: float,
) -> float:
    """Equation 5: latency hiding limited to one scope.

    ``scope_active_samples`` are the active samples of the scope and of every
    scope nested inside it (the optimizer may only rearrange code within that
    region); ``matched_latency_samples`` are the matched latency samples of
    the scope.
    """
    if total_samples <= 0:
        return 1.0
    available_active = sum(max(value, 0.0) for value in scope_active_samples)
    matched = min(max(matched_latency_samples, 0.0), total_samples)
    return _guarded_ratio(total_samples, min(available_active, matched))


def combined_scoped_speedup(
    total_samples: float,
    per_scope: Mapping[object, tuple],
) -> float:
    """Aggregate Equation 5 over several disjoint scopes.

    ``per_scope`` maps a scope identifier to ``(active_in_scope,
    matched_latency_in_scope)``.  The hidden latency of each scope is
    ``min(active, matched)``; the aggregate speedup removes the sum of the
    hidden latencies (never more than the total latency of the kernel).
    """
    if total_samples <= 0:
        return 1.0
    hidden = 0.0
    for active, matched in per_scope.values():
        hidden += min(max(active, 0.0), max(matched, 0.0))
    return _guarded_ratio(total_samples, min(hidden, total_samples))
