"""Parallel-optimization estimator (Section 5.2.2, Equations 6-10).

Parallel optimizers change the number of blocks and the number of threads per
block.  The estimator models the effect through two factors:

* ``CW = W_new / W`` — the change of active warps per scheduler (Equation 6);
* ``CI = I_new / I`` — the change of the scheduler issue rate (Equation 7),
  where ``I = 1 - (1 - R_I)^W`` (Equation 8) and
  ``I_new = 1 - (1 - R_I)^W_new`` (Equation 9), with ``R_I`` the per-warp
  readiness rate derived from the measured kernel issue (active) ratio.

The estimated speedup is ``S_p = (1 / CW) * CI * f`` (Equation 10), where the
factor ``f`` captures effects specific to each optimizer.  In this
implementation ``f`` is composed of

* the change in the number of SMs that actually receive blocks (a grid with
  fewer blocks than SMs leaves most of the GPU idle — the Block Increase
  case of particlefilter, streamcluster and PeleC), and
* optionally, the removal of memory-throttle and not-selected stalls when
  the number of warps per scheduler drops to one or below (the assumption
  mentioned at the end of Section 5.2.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.machine import GpuArchitecture, VoltaV100
from repro.arch.occupancy import OccupancyCalculator, OccupancyResult
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.stall_reasons import StallReason


@dataclass(frozen=True)
class ParallelEstimate:
    """The output of the parallel estimator for one proposed launch change."""

    #: Proposed launch configuration.
    new_config: LaunchConfig
    #: Occupancy of the proposed configuration.
    new_occupancy: OccupancyResult
    #: Warps per scheduler, before and after.
    warps_per_scheduler: float
    new_warps_per_scheduler: float
    #: Equation 6.
    cw: float
    #: Scheduler issue rates (Equations 8 and 9) and their ratio (Equation 7).
    issue_rate: float
    new_issue_rate: float
    ci: float
    #: Optimizer-specific factor of Equation 10.
    f: float
    #: Equation 10.
    speedup: float

    def describe(self) -> str:
        return (
            f"blocks={self.new_config.grid_blocks}, "
            f"threads/block={self.new_config.threads_per_block}: "
            f"CW={self.cw:.3f}, CI={self.ci:.3f}, f={self.f:.3f}, "
            f"estimated speedup {self.speedup:.2f}x"
        )


class ParallelEstimator:
    """Estimates the speedup of changing the launch configuration."""

    def __init__(self, architecture: Optional[GpuArchitecture] = None):
        self.architecture = architecture or VoltaV100

    # ------------------------------------------------------------------
    def per_warp_ready_rate(self, issue_ratio: float, warps_per_scheduler: float) -> float:
        """Invert Equation 8: per-warp readiness R_I from the measured issue ratio.

        The measured active ratio of the kernel is the scheduler-level issue
        probability ``I``; with ``W`` warps per scheduler the per-warp
        readiness solves ``I = 1 - (1 - R_I)^W``.
        """
        issue_ratio = min(max(issue_ratio, 1e-6), 1.0 - 1e-6)
        warps = max(warps_per_scheduler, 1e-6)
        return 1.0 - (1.0 - issue_ratio) ** (1.0 / warps)

    def scheduler_issue_rate(self, per_warp_rate: float, warps_per_scheduler: float) -> float:
        """Equation 8/9: ``I = 1 - (1 - R_I)^W``."""
        per_warp_rate = min(max(per_warp_rate, 0.0), 1.0)
        warps = max(warps_per_scheduler, 0.0)
        return 1.0 - (1.0 - per_warp_rate) ** warps

    # ------------------------------------------------------------------
    def estimate(
        self,
        profile: KernelProfile,
        new_config: LaunchConfig,
        registers_per_thread: Optional[int] = None,
        shared_memory_per_block: Optional[int] = None,
        assume_no_throttle_below_one_warp: bool = True,
        total_work_factor: Optional[float] = None,
    ) -> ParallelEstimate:
        """Estimate the speedup of launching with ``new_config``.

        ``total_work_factor`` is the ratio of warp-level work (dynamic
        warp-instructions) after / before the change.  When ``None`` it is
        derived from the change of the total warp count — the right model
        when the total number of *threads* and the per-thread work are fixed
        (e.g. Thread Increase reshaping 16-thread blocks into full warps).
        Optimizers that redistribute a fixed total amount of work across more
        blocks (Block Increase splitting the grid) should pass ``1.0``.
        """
        arch = self.architecture
        stats = profile.statistics
        old_config = stats.config
        registers = registers_per_thread if registers_per_thread is not None else stats.registers_per_thread
        shared = (
            shared_memory_per_block
            if shared_memory_per_block is not None
            else old_config.shared_memory_bytes
        )

        calculator = OccupancyCalculator(arch)
        new_occupancy = calculator.calculate(
            grid_blocks=new_config.grid_blocks,
            threads_per_block=new_config.threads_per_block,
            registers_per_thread=registers,
            shared_memory_per_block=shared,
        )

        old_warps = max(stats.warps_per_scheduler, 1e-6)
        new_warps = max(new_occupancy.warps_per_scheduler, 1e-6)
        cw = new_warps / old_warps

        per_warp_rate = self.per_warp_ready_rate(profile.issue_rate, old_warps)
        issue_rate = self.scheduler_issue_rate(per_warp_rate, old_warps)
        new_issue_rate = self.scheduler_issue_rate(per_warp_rate, new_warps)
        ci = new_issue_rate / issue_rate if issue_rate > 0 else 1.0

        # Active SM change: a grid smaller than the SM count leaves SMs idle.
        old_active_sms = min(arch.num_sms, old_config.grid_blocks)
        new_active_sms = min(arch.num_sms, new_config.grid_blocks)
        sm_factor = new_active_sms / max(old_active_sms, 1)

        # Warp-level work change.  With per-thread work and total thread
        # count fixed, the work per warp is unchanged and the total work
        # scales with the number of warps in the grid (narrow blocks pad
        # warps with idle lanes).
        if total_work_factor is None:
            total_old_warps = old_config.grid_blocks * math.ceil(
                old_config.threads_per_block / arch.warp_size
            )
            total_new_warps = new_config.grid_blocks * math.ceil(
                new_config.threads_per_block / arch.warp_size
            )
            work_factor = total_new_warps / max(total_old_warps, 1)
        else:
            work_factor = max(total_work_factor, 1e-6)

        throttle_factor = 1.0
        if assume_no_throttle_below_one_warp and new_warps <= 1.0:
            removable = profile.stalls_by_reason().get(StallReason.MEMORY_THROTTLE, 0)
            removable += profile.stalls_by_reason().get(StallReason.NOT_SELECTED, 0)
            if profile.total_samples:
                throttle_factor = profile.total_samples / max(
                    profile.total_samples - removable, 1
                )

        # Speedup from the throughput model: time ~ work / (active SMs x I).
        speedup = sm_factor * throttle_factor * ci / work_factor
        speedup = max(speedup, 0.0)
        # Report the optimizer-specific factor so that the paper's identity
        # S_p = (1 / CW) * CI * f  (Equation 10) holds exactly.
        f = speedup * cw / ci if ci > 0 else cw * sm_factor

        return ParallelEstimate(
            new_config=new_config,
            new_occupancy=new_occupancy,
            warps_per_scheduler=old_warps,
            new_warps_per_scheduler=new_warps,
            cw=cw,
            issue_rate=issue_rate,
            new_issue_rate=new_issue_rate,
            ci=ci,
            f=f,
            speedup=speedup,
        )
