"""Performance estimators (Section 5.2).

Estimators translate the stalls matched by an optimizer into an estimated
speedup by modelling GPU execution with the instruction samples:

* stall-elimination speedup, Equation 2;
* latency-hiding speedup with the ``min(A, M_L)`` refinement, Equations 3–4,
  whose upper bound is 2x (Theorem 5.1);
* scope-limited latency hiding for loops and functions, Equation 5;
* the parallel-optimization estimator built on the change of active warps
  per scheduler and the change of issue rate, Equations 6–10.
"""

from repro.estimators.code import (
    latency_hiding_speedup,
    latency_hiding_upper_bound,
    scoped_latency_hiding_speedup,
    stall_elimination_speedup,
)
from repro.estimators.parallel import ParallelEstimate, ParallelEstimator

__all__ = [
    "ParallelEstimate",
    "ParallelEstimator",
    "latency_hiding_speedup",
    "latency_hiding_upper_bound",
    "scoped_latency_hiding_speedup",
    "stall_elimination_speedup",
]
