"""Evaluation harness: the code that regenerates the paper's tables and figures.

* :mod:`repro.evaluation.table3` — achieved vs. estimated speedups for every
  (kernel, optimization) pair of Table 3;
* :mod:`repro.evaluation.figure7` — single-dependency coverage before and
  after pruning cold edges (Figure 7);
* :mod:`repro.evaluation.figure1` — the PC-sampling mental model of Figure 1
  (stall/active ratios from round-robin scheduler sampling);
* :mod:`repro.evaluation.metrics` — shared helpers (geometric mean, error).

The ``benchmarks/`` directory wraps these entry points with pytest-benchmark;
``examples/`` and ``EXPERIMENTS.md`` use them directly.
"""

from repro.evaluation.metrics import geometric_mean, relative_error
from repro.evaluation.table3 import Table3Result, Table3Row, evaluate_case, evaluate_table3, format_table3
from repro.evaluation.figure7 import CoverageRow, evaluate_figure7, format_figure7
from repro.evaluation.figure1 import sampling_model_demo

__all__ = [
    "CoverageRow",
    "Table3Result",
    "Table3Row",
    "evaluate_case",
    "evaluate_figure7",
    "evaluate_table3",
    "format_figure7",
    "format_table3",
    "geometric_mean",
    "relative_error",
    "sampling_model_demo",
]
