"""Shared evaluation metrics."""

from __future__ import annotations

import math
from typing import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (1.0 for an empty sequence)."""
    values = [float(v) for v in values if v > 0]
    if not values:
        return 1.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_error(estimated: float, achieved: float) -> float:
    """The paper's estimate error: ``|estimated - achieved| / achieved``."""
    if achieved == 0:
        return 0.0
    return abs(estimated - achieved) / abs(achieved)
