"""Figure 1: the PC-sampling mental model.

The figure shows an SM whose four schedulers are sampled round-robin every N
cycles; each sample is *active* if the scheduler issued that cycle and
*latency* otherwise, and stall samples carry the sampled warp's stall reason.
``sampling_model_demo`` runs a small kernel through the simulator and returns
the quantities the figure reasons about: the total/active/latency sample
counts, the stall and active ratios, and the per-reason breakdown — the same
estimate of the kernel stall ratio described in Section 2.1.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.request import AdvisingRequest
from repro.api.session import AdvisingSession
from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec


def _toy_kernel() -> CubinBuilder:
    builder = CubinBuilder(module_name="figure1_demo")
    k = builder.kernel("mixed_kernel", source_file="figure1.cu")
    k.at_line(1)
    k.s2r(0, "SR_TID.X")
    k.mov_imm(2, 0x100)
    k.mov_imm(3, 0)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 20)
    k.at_line(5)
    k.isetp(0, 8, 9, "LT")
    with k.loop("body", predicate=p(0)):
        k.at_line(5)
        k.iadd(8, 8, imm(1))
        k.at_line(6)
        k.ldg(4, 2)
        k.at_line(7)
        k.ffma(5, 4, 4, 5)
        k.ffma(6, 6, 6, 6)
        k.ffma(7, 7, 7, 7)
        k.at_line(5)
        k.isetp(0, 8, 9, "LT")
    k.at_line(9)
    k.stg(2, 5)
    k.exit()
    builder.add_function(k.build())
    return builder


def sampling_model_demo(
    sample_period: int = 8,
    arch_flag: str = "sm_70",
    cache_dir: Optional[str] = None,
    simulation_scope: str = "single_wave",
    memory_model: str = "flat",
    simulator_backend: Optional[str] = None,
) -> Dict[str, object]:
    """Run the Figure 1 demonstration and return its sample statistics.

    The demo runs the profiling stage alone — the analyzer is not involved —
    so it drives :meth:`AdvisingSession.profile
    <repro.api.session.AdvisingSession.profile>` with a binary-source
    request.  Under ``simulation_scope="whole_gpu"`` the sample stream comes
    from every SM of the simulated GPU instead of one.
    """
    builder = _toy_kernel()
    session = AdvisingSession(
        architecture=arch_flag, sample_period=sample_period, cache=cache_dir,
        simulation_scope=simulation_scope, memory_model=memory_model,
        simulator_backend=simulator_backend,
    )
    profiled = session.profile(
        AdvisingRequest(
            source="binary",
            cubin=builder.build(),
            kernel="mixed_kernel",
            config=LaunchConfig(grid_blocks=320, threads_per_block=128),
            workload=WorkloadSpec(loop_trip_counts={5: 12}),
            arch_flag=arch_flag,
        )
    )
    profile = profiled.profile
    return {
        "sample_period": sample_period,
        "total_samples": profile.total_samples,
        "active_samples": profile.active_samples,
        "latency_samples": profile.latency_samples,
        "active_ratio": profile.active_ratio,
        "stall_ratio": profile.stall_ratio,
        "stalls_by_reason": {
            reason.value: count for reason, count in profile.stalls_by_reason().items()
        },
        "wave_cycles": profile.statistics.wave_cycles,
        "kernel_cycles": profile.statistics.kernel_cycles,
        "warps_per_scheduler": profile.statistics.warps_per_scheduler,
        "simulation_scope": profile.statistics.simulation_scope,
        "memory_model": profile.statistics.memory_model,
    }
