"""Table 3: achieved vs. estimated speedups for every benchmark/optimization pair.

For each row the harness

1. profiles the baseline kernel on the simulated V100 and runs GPA's dynamic
   analyzer on the profile (the *estimated* speedup is the matched
   optimizer's estimate; its rank among the applicable suggestions is also
   recorded);
2. profiles the hand-optimized variant of the same kernel (the code change
   the paper applied) and computes the *achieved* speedup as the ratio of
   estimated kernel cycles;
3. reports the estimate error ``|estimated - achieved| / achieved``.

Absolute times are simulator cycles, not the paper's microseconds; only the
speedups and their ordering are meaningful for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.advisor.advisor import GPA
from repro.evaluation.metrics import geometric_mean, relative_error
from repro.workloads.base import BenchmarkCase
from repro.workloads.registry import all_cases


@dataclass
class Table3Row:
    """One row of the reproduced Table 3."""

    case: BenchmarkCase
    baseline_cycles: float
    optimized_cycles: float
    achieved_speedup: float
    estimated_speedup: float
    error: float
    #: Rank of the expected optimizer among the applicable advice (1 = top).
    optimizer_rank: Optional[int]
    total_samples: int

    @property
    def name(self) -> str:
        return self.case.name

    @property
    def optimization(self) -> str:
        return self.case.optimization


@dataclass
class Table3Result:
    """All rows plus the aggregate statistics the paper reports."""

    rows: List[Table3Row] = field(default_factory=list)

    @property
    def geomean_achieved(self) -> float:
        return geometric_mean(row.achieved_speedup for row in self.rows)

    @property
    def geomean_estimated(self) -> float:
        return geometric_mean(row.estimated_speedup for row in self.rows)

    @property
    def geomean_error(self) -> float:
        return geometric_mean(max(row.error, 1e-4) for row in self.rows)

    @property
    def mean_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.error for row in self.rows) / len(self.rows)


def evaluate_case(
    case: BenchmarkCase,
    gpa: Optional[GPA] = None,
    sample_period: int = 8,
) -> Table3Row:
    """Evaluate one Table 3 row (profile baseline, advise, profile optimized)."""
    gpa = gpa or GPA(sample_period=sample_period)

    baseline = case.build_baseline()
    profiled_baseline = gpa.profile(
        baseline.cubin, baseline.kernel, baseline.config, baseline.workload
    )
    report = gpa.advise_profiled(profiled_baseline)

    optimized = case.build_optimized()
    profiled_optimized = gpa.profile(
        optimized.cubin, optimized.kernel, optimized.config, optimized.workload
    )

    baseline_cycles = profiled_baseline.kernel_cycles
    optimized_cycles = profiled_optimized.kernel_cycles
    achieved = baseline_cycles / optimized_cycles if optimized_cycles else 1.0

    advice = report.advice_for(case.optimizer_name)
    estimated = advice.estimated_speedup if advice is not None else 1.0
    applicable = [item.optimizer for item in report.advice if item.applicable]
    rank = (
        applicable.index(case.optimizer_name) + 1
        if case.optimizer_name in applicable
        else None
    )

    return Table3Row(
        case=case,
        baseline_cycles=baseline_cycles,
        optimized_cycles=optimized_cycles,
        achieved_speedup=achieved,
        estimated_speedup=estimated,
        error=relative_error(estimated, achieved),
        optimizer_rank=rank,
        total_samples=profiled_baseline.profile.total_samples,
    )


def evaluate_table3(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    sample_period: int = 8,
) -> Table3Result:
    """Evaluate every Table 3 row (or the supplied subset)."""
    gpa = GPA(sample_period=sample_period)
    result = Table3Result()
    for case in cases if cases is not None else all_cases():
        result.rows.append(evaluate_case(case, gpa=gpa))
    return result


def format_table3(result: Table3Result, include_paper: bool = True) -> str:
    """Render the reproduced Table 3 as aligned text."""
    header = (
        f"{'Application':24s} {'Kernel':28s} {'Optimization':30s} "
        f"{'Original':>12s} {'Achieved':>9s} {'Estimated':>10s} {'Error':>7s} {'Rank':>5s}"
    )
    if include_paper:
        header += f"  {'Paper A.':>9s} {'Paper E.':>9s}"
    lines = [header, "-" * len(header)]
    for row in result.rows:
        line = (
            f"{row.case.name:24s} {row.case.kernel:28s} {row.case.optimization:30s} "
            f"{row.baseline_cycles:10.0f}cy {row.achieved_speedup:8.2f}x "
            f"{row.estimated_speedup:9.2f}x {row.error * 100:6.1f}% "
            f"{row.optimizer_rank if row.optimizer_rank is not None else '-':>5}"
        )
        if include_paper:
            line += (
                f"  {row.case.paper_achieved_speedup:8.2f}x "
                f"{row.case.paper_estimated_speedup:8.2f}x"
            )
        lines.append(line)
    lines.append("-" * len(header))
    lines.append(
        f"{'geomean':24s} {'':28s} {'':30s} {'':>12s} "
        f"{result.geomean_achieved:8.2f}x {result.geomean_estimated:9.2f}x "
        f"{result.mean_error * 100:6.1f}%"
    )
    return "\n".join(lines)
