"""Table 3: achieved vs. estimated speedups for every benchmark/optimization pair.

For each row the harness

1. profiles the baseline kernel on the simulated V100 and runs GPA's dynamic
   analyzer on the profile (the *estimated* speedup is the matched
   optimizer's estimate; its rank among the applicable suggestions is also
   recorded);
2. profiles the hand-optimized variant of the same kernel (the code change
   the paper applied) and computes the *achieved* speedup as the ratio of
   estimated kernel cycles;
3. reports the estimate error ``|estimated - achieved| / achieved``.

Absolute times are simulator cycles, not the paper's microseconds; only the
speedups and their ordering are meaningful for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.advisor.advisor import GPA
from repro.evaluation.metrics import geometric_mean
from repro.pipeline.batch import (
    BatchAdvisor,
    BatchConfig,
    error_summary,
    evaluate_case_outcome,
)
from repro.pipeline.runner import ProgressCallback
from repro.workloads.base import BenchmarkCase
from repro.workloads.registry import all_cases

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.session import AdvisingSession


@dataclass
class Table3Row:
    """One row of the reproduced Table 3."""

    case: BenchmarkCase
    baseline_cycles: float
    optimized_cycles: float
    achieved_speedup: float
    estimated_speedup: float
    error: float
    #: Rank of the expected optimizer among the applicable advice (1 = top).
    optimizer_rank: Optional[int]
    total_samples: int

    @property
    def name(self) -> str:
        return self.case.name

    @property
    def optimization(self) -> str:
        return self.case.optimization


@dataclass
class Table3Result:
    """All rows plus the aggregate statistics the paper reports."""

    rows: List[Table3Row] = field(default_factory=list)
    #: Cases that failed during a batch sweep, as (case_id, traceback) pairs;
    #: one bad case never kills the whole table.
    failures: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def geomean_achieved(self) -> float:
        return geometric_mean(row.achieved_speedup for row in self.rows)

    @property
    def geomean_estimated(self) -> float:
        return geometric_mean(row.estimated_speedup for row in self.rows)

    @property
    def geomean_error(self) -> float:
        return geometric_mean(max(row.error, 1e-4) for row in self.rows)

    @property
    def mean_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.error for row in self.rows) / len(self.rows)


def _row_from_outcome(case: BenchmarkCase, outcome: dict) -> Table3Row:
    """Build a :class:`Table3Row` from a batch-worker outcome dict."""
    return Table3Row(
        case=case,
        baseline_cycles=outcome["baseline_cycles"],
        optimized_cycles=outcome["optimized_cycles"],
        achieved_speedup=outcome["achieved_speedup"],
        estimated_speedup=outcome["estimated_speedup"],
        error=outcome["error"],
        optimizer_rank=outcome["optimizer_rank"],
        total_samples=outcome["total_samples"],
    )


def evaluate_case(
    case: BenchmarkCase,
    gpa: Optional[GPA] = None,
    sample_period: int = 8,
    session: Optional["AdvisingSession"] = None,
) -> Table3Row:
    """Evaluate one Table 3 row (profile baseline, advise, profile optimized).

    ``session`` is the preferred engine; the legacy ``gpa`` argument is kept
    for compatibility (its internal session is used).
    """
    if session is None:
        if gpa is not None:
            session = gpa.session
        else:
            from repro.api.session import AdvisingSession

            session = AdvisingSession(sample_period=sample_period)
    return _row_from_outcome(case, evaluate_case_outcome(case, session))


def evaluate_table3(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    sample_period: int = 8,
    jobs: int = 1,
    arch_flag: str = "sm_70",
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    simulation_scope: str = "single_wave",
    memory_model: str = "flat",
    simulator_backend: Optional[str] = None,
) -> Table3Result:
    """Evaluate every Table 3 row (or the supplied subset).

    Each case's baseline + optimized profiles are pipeline jobs: ``jobs > 1``
    fans registry cases across worker processes, ``cache_dir`` replays
    previously simulated profiles from disk, ``arch_flag`` retargets the
    sweep onto any registered architecture, and ``simulation_scope``
    selects the simulation engine (``"whole_gpu"`` measures whole-kernel
    cycles across every SM instead of extrapolating one wave), and
    ``memory_model`` selects the memory system (``"hierarchy"`` services
    accesses through the coalescing L1/L2/DRAM model).  Per-case
    failures land in :attr:`Table3Result.failures` instead of aborting the
    sweep.
    """
    case_list = list(cases) if cases is not None else all_cases()
    advisor = BatchAdvisor(
        BatchConfig(
            arch_flag=arch_flag,
            sample_period=sample_period,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            jobs=jobs,
            simulation_scope=simulation_scope,
            memory_model=memory_model,
            simulator_backend=simulator_backend,
        )
    )
    result = Table3Result()
    for case, outcome in zip(case_list, advisor.evaluate_table3(case_list, progress=progress)):
        if outcome.ok:
            result.rows.append(_row_from_outcome(case, outcome.value))
        else:
            result.failures.append((outcome.case_id, outcome.error))
    return result


def format_table3(result: Table3Result, include_paper: bool = True) -> str:
    """Render the reproduced Table 3 as aligned text."""
    header = (
        f"{'Application':24s} {'Kernel':28s} {'Optimization':30s} "
        f"{'Original':>12s} {'Achieved':>9s} {'Estimated':>10s} {'Error':>7s} {'Rank':>5s}"
    )
    if include_paper:
        header += f"  {'Paper A.':>9s} {'Paper E.':>9s}"
    lines = [header, "-" * len(header)]
    for row in result.rows:
        line = (
            f"{row.case.name:24s} {row.case.kernel:28s} {row.case.optimization:30s} "
            f"{row.baseline_cycles:10.0f}cy {row.achieved_speedup:8.2f}x "
            f"{row.estimated_speedup:9.2f}x {row.error * 100:6.1f}% "
            f"{row.optimizer_rank if row.optimizer_rank is not None else '-':>5}"
        )
        if include_paper:
            line += (
                f"  {row.case.paper_achieved_speedup:8.2f}x "
                f"{row.case.paper_estimated_speedup:8.2f}x"
            )
        lines.append(line)
    lines.append("-" * len(header))
    # The aggregate row is the geometric mean throughout — including the
    # error column, which once printed the arithmetic mean under this label.
    lines.append(
        f"{'geomean':24s} {'':28s} {'':30s} {'':>12s} "
        f"{result.geomean_achieved:8.2f}x {result.geomean_estimated:9.2f}x "
        f"{result.geomean_error * 100:6.1f}%"
    )
    if result.failures:
        lines.append("")
        lines.append(
            f"{len(result.failures)} case(s) FAILED and are excluded from the "
            f"rows and aggregates above:"
        )
        for case_id, error in result.failures:
            lines.append(f"  {case_id}: {error_summary(error)}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Command-line entry point (the nightly sweep's engine)
# ----------------------------------------------------------------------
def table3_payload(result: Table3Result, config: dict) -> dict:
    """A JSON document of the reproduced table (the nightly artifact)."""
    return {
        "kind": "table3",
        "config": config,
        "rows": [
            {
                "case": row.case.case_id,
                "application": row.case.name,
                "kernel": row.case.kernel,
                "optimization": row.case.optimization,
                "baseline_cycles": row.baseline_cycles,
                "optimized_cycles": row.optimized_cycles,
                "achieved_speedup": row.achieved_speedup,
                "estimated_speedup": row.estimated_speedup,
                "error": row.error,
                "optimizer_rank": row.optimizer_rank,
                "total_samples": row.total_samples,
                "paper_achieved_speedup": row.case.paper_achieved_speedup,
                "paper_estimated_speedup": row.case.paper_estimated_speedup,
            }
            for row in result.rows
        ],
        "failures": [
            {"case": case_id, "error": error}
            for case_id, error in result.failures
        ],
        "geomean_achieved": result.geomean_achieved,
        "geomean_estimated": result.geomean_estimated,
        "geomean_error": result.geomean_error,
        "mean_error": result.mean_error,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.evaluation.table3``: sweep the registry, write the table.

    Exits non-zero when anything went wrong, and distinguishes *results*
    from *infrastructure* (see :mod:`repro.evaluation.exitcodes`): cases
    that failed evaluation exit 3 — the sweep ran, the data is red — while
    an exception out of the harness itself exits 1, telling CI the leg is
    retryable rather than the numbers bad.
    """
    import argparse
    import json
    import sys
    import traceback
    from pathlib import Path

    from repro.evaluation.exitcodes import (
        EXIT_CASES_FAILED,
        EXIT_INFRA,
        EXIT_OK,
    )

    from repro.sampling.memory import MEMORY_MODELS
    from repro.sampling.profiler import SIMULATION_SCOPES
    from repro.sampling.vector import SIMULATOR_BACKENDS

    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.table3",
        description="Reproduce Table 3 over the full benchmark registry.",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--arch", default="sm_70", dest="arch_flag",
                        help="architecture model (default sm_70)")
    parser.add_argument("--sample-period", type=int, default=8)
    parser.add_argument("--scope", default="single_wave", choices=SIMULATION_SCOPES,
                        dest="simulation_scope", metavar="SCOPE")
    parser.add_argument("--memory-model", default="flat", choices=MEMORY_MODELS,
                        dest="memory_model", metavar="MODEL")
    parser.add_argument("--simulator-backend", default=None, choices=SIMULATOR_BACKENDS,
                        dest="simulator_backend", metavar="BACKEND")
    parser.add_argument("--cache-dir", default=None, metavar="PATH")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="only evaluate the first N registry cases")
    parser.add_argument("--text", default="-", metavar="PATH",
                        help="where to write the rendered table ('-' = stdout)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the table as a JSON document")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.sample_period <= 0:
        parser.error("--sample-period must be positive")
    if args.limit is not None and args.limit < 0:
        parser.error("--limit must be non-negative")

    cases = all_cases()
    if args.limit is not None:
        cases = cases[: args.limit]

    def progress(event) -> None:
        if event.status == "start":
            return
        status = "ok" if event.status == "done" else "FAILED"
        print(f"  {event.step:55s} {status} ({event.duration:.2f}s)",
              file=sys.stderr, flush=True)

    try:
        result = evaluate_table3(
            cases,
            sample_period=args.sample_period,
            jobs=args.jobs,
            arch_flag=args.arch_flag,
            cache_dir=args.cache_dir,
            progress=progress,
            simulation_scope=args.simulation_scope,
            memory_model=args.memory_model,
            simulator_backend=args.simulator_backend,
        )
    except Exception:
        traceback.print_exc()
        print("sweep harness failed before producing a table; retry the run",
              file=sys.stderr)
        return EXIT_INFRA
    rendered = format_table3(result)
    if args.text == "-":
        print(rendered)
    else:
        Path(args.text).write_text(rendered + "\n")
    if args.json is not None:
        config = {
            "arch_flag": args.arch_flag,
            "sample_period": args.sample_period,
            "simulation_scope": args.simulation_scope,
            "memory_model": args.memory_model,
            "cases": len(cases),
            "jobs": args.jobs,
        }
        Path(args.json).write_text(
            json.dumps(table3_payload(result, config), indent=2) + "\n"
        )
    if result.failures:
        print(f"{len(result.failures)} case(s) failed", file=sys.stderr)
        return EXIT_CASES_FAILED
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
