"""Figure 7: single-dependency coverage before and after pruning cold edges.

For every Rodinia benchmark the harness profiles the baseline kernel, builds
the instruction dependency graph, measures single-dependency coverage, prunes
cold edges with the three heuristic rules and measures the coverage again.
The paper's qualitative claims: pruning raises coverage above roughly 0.8 for
most benchmarks, while bfs (64-bit addresses assembled from separately
defined registers) and nw (intricate fully-unrolled control flow) stay lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.blame.coverage import single_dependency_coverage
from repro.blame.graph import build_dependency_graph
from repro.blame.pruning import prune_cold_edges
from repro.pipeline.batch import BatchAdvisor, BatchConfig, resolve_case
from repro.pipeline.runner import ProgressCallback
from repro.workloads.base import BenchmarkCase
from repro.workloads.registry import rodinia_cases


@dataclass
class CoverageRow:
    """Coverage of one benchmark before/after pruning."""

    benchmark: str
    kernel: str
    coverage_before: float
    coverage_after: float
    edges_before: int
    edges_after: int
    nodes: int


def coverage_case_worker(config: BatchConfig, case_or_id) -> CoverageRow:
    """Batch worker: the coverage row of one benchmark's baseline kernel."""
    from repro.api.request import request_for_case

    case = resolve_case(case_or_id)
    session = config.build_session()
    profiled = session.profile(
        request_for_case(case, "baseline", arch_flag=config.arch_flag)
    )
    graph = build_dependency_graph(profiled.profile, profiled.structure)
    before = single_dependency_coverage(graph)
    edges_before = len(graph.edges)
    pruned = graph.copy()
    prune_cold_edges(pruned, profiled.structure, config.architecture)
    after = single_dependency_coverage(pruned)
    return CoverageRow(
        benchmark=case.name,
        kernel=case.kernel,
        coverage_before=before,
        coverage_after=after,
        edges_before=edges_before,
        edges_after=len(pruned.edges),
        nodes=len(graph.stalled_nodes()),
    )


def evaluate_figure7(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    sample_period: int = 8,
    jobs: int = 1,
    arch_flag: str = "sm_70",
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    simulation_scope: str = "single_wave",
    memory_model: str = "flat",
    simulator_backend: Optional[str] = None,
) -> List[CoverageRow]:
    """Compute coverage rows for every (unique) benchmark.

    Runs through the batch pipeline: ``jobs`` fans benchmarks out across
    processes, ``cache_dir`` replays already-simulated baseline profiles and
    ``simulation_scope`` selects the simulation engine and ``memory_model``
    the memory system the profiles are collected with.
    """
    unique: List[BenchmarkCase] = []
    seen = set()
    for case in cases if cases is not None else rodinia_cases():
        if case.name in seen:
            continue
        seen.add(case.name)
        unique.append(case)

    advisor = BatchAdvisor(
        BatchConfig(
            arch_flag=arch_flag,
            sample_period=sample_period,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            jobs=jobs,
            simulation_scope=simulation_scope,
            memory_model=memory_model,
            simulator_backend=simulator_backend,
        )
    )
    results = advisor.run_cases(coverage_case_worker, unique, progress=progress)
    failed = [result for result in results if not result.ok]
    if failed:
        raise RuntimeError(
            f"figure 7 sweep failed for {failed[0].case_id}:\n{failed[0].error}"
        )
    return [result.value for result in results]


def format_figure7(rows: Sequence[CoverageRow]) -> str:
    """Render the coverage comparison as an ASCII bar-chart-like table."""
    header = (
        f"{'Benchmark':24s} {'Kernel':28s} {'Before':>8s} {'After':>8s} "
        f"{'Edges':>12s} {'Stalled nodes':>14s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.benchmark:24s} {row.kernel:28s} {row.coverage_before:8.2f} "
            f"{row.coverage_after:8.2f} {row.edges_before:5d} ->{row.edges_after:4d} "
            f"{row.nodes:14d}"
        )
    if rows:
        mean_before = sum(r.coverage_before for r in rows) / len(rows)
        mean_after = sum(r.coverage_after for r in rows) / len(rows)
        lines.append("-" * len(header))
        lines.append(f"{'mean':24s} {'':28s} {mean_before:8.2f} {mean_after:8.2f}")
    return "\n".join(lines)
