"""The shard runner: one shard's units, checkpointed unit by unit.

:class:`ShardRunner` executes the units of one shard of an
:class:`~repro.evaluation.fleet.plan.EvaluationPlan` through anything that
satisfies the :class:`~repro.api.advisor.Advisor` protocol — an inline
:class:`~repro.api.session.AdvisingSession` by default, or a
:class:`~repro.service.ServiceClient` when the sweep is pointed at a
running advising daemon (``--via-service``).  Because every knob of a
:class:`~repro.evaluation.fleet.plan.SweepConfiguration` rides on the
:class:`~repro.api.request.AdvisingRequest` itself, one advisor serves
every configuration in the shard, and the numbers are bit-identical to the
serial :func:`~repro.evaluation.table3.evaluate_table3` harness by the
simulator's determinism contract.

Failure taxonomy (this drives the CI retry policy, see
:mod:`repro.evaluation.exitcodes`):

* a **case failure** — the advisor captured an evaluation error for the
  unit — is *data*: it is checkpointed like a success and lands in the
  merge step's failure ledger.  Re-running would reproduce it.
* an **infrastructure failure** — the advisor itself raised (dead daemon,
  broken transport), or checkpoint I/O failed — propagates out of
  :meth:`ShardRunner.run`.  Nothing is recorded for the in-flight unit, so
  a retried leg resumes exactly there.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.evaluation.fleet.checkpoint import (
    ShardCheckpoint,
    UnitRecord,
    load_checkpoint,
    store_checkpoint,
)
from repro.evaluation.fleet.plan import EvaluationPlan, FleetError, WorkUnit
from repro.pipeline.runner import ProgressCallback, ProgressEvent


class CaseFailure(Exception):
    """One unit's case failed evaluation; carries the captured traceback."""

    def __init__(self, error: str):
        super().__init__(error.strip().splitlines()[-1] if error.strip() else "case failed")
        self.error = error


def unit_request(unit: WorkUnit, variant: str):
    """The advising request for one variant of a unit.

    Every configuration knob is set explicitly on the request, so the
    outcome does not depend on how the executing advisor (or the daemon
    behind it) happens to be configured.
    """
    from repro.api.request import request_for_case

    config = unit.config
    return request_for_case(
        unit.case_id,
        variant,
        arch_flag=config.arch_flag,
        sample_period=config.sample_period,
        simulation_scope=config.simulation_scope,
        memory_model=config.memory_model,
        simulator_backend=config.simulator_backend,
    )


def evaluate_unit(advisor, unit: WorkUnit) -> dict:
    """One unit's Table 3 outcome, derived from two ``advise`` calls.

    Identical numbers to :func:`repro.pipeline.batch.evaluate_case_outcome`
    (the baseline report carries the same profile the profile stage would
    return), but expressed against the :class:`~repro.api.advisor.Advisor`
    protocol so it runs equally over an inline session or a service client.
    Raises :class:`CaseFailure` when either variant's advising failed.
    """
    from repro.evaluation.metrics import relative_error
    from repro.workloads.registry import case_by_name

    case = case_by_name(unit.case_id)
    baseline = advisor.advise(unit_request(unit, "baseline"))
    if not baseline.ok:
        raise CaseFailure(baseline.error or "baseline advising failed")
    optimized = advisor.advise(unit_request(unit, "optimized"))
    if not optimized.ok:
        raise CaseFailure(optimized.error or "optimized advising failed")

    baseline_report = baseline.report
    baseline_cycles = baseline_report.profile.statistics.kernel_cycles
    optimized_cycles = optimized.report.profile.statistics.kernel_cycles
    achieved = baseline_cycles / optimized_cycles if optimized_cycles else 1.0

    advice = baseline_report.advice_for(case.optimizer_name)
    estimated = advice.estimated_speedup if advice is not None else 1.0
    applicable = [
        item.optimizer for item in baseline_report.advice if item.applicable
    ]
    rank = (
        applicable.index(case.optimizer_name) + 1
        if case.optimizer_name in applicable
        else None
    )
    return {
        "case_id": case.case_id,
        "baseline_cycles": baseline_cycles,
        "optimized_cycles": optimized_cycles,
        "achieved_speedup": achieved,
        "estimated_speedup": estimated,
        "error": relative_error(estimated, achieved),
        "optimizer_rank": rank,
        "total_samples": baseline_report.profile.total_samples,
    }


@dataclass
class ShardRunSummary:
    """What one :meth:`ShardRunner.run` call did."""

    shard: int
    total: int
    #: Units skipped because the checkpoint already held their outcome.
    skipped: int = 0
    #: Units executed (successes and case failures) in this invocation.
    executed: int = 0
    #: Case ids of the units whose evaluation failed, across the whole
    #: checkpoint (resumed failures included).
    failed: List[str] = field(default_factory=list)
    #: True when ``stop_after`` preempted the run before the shard was done.
    interrupted: bool = False
    #: Why an on-disk checkpoint was ignored, if one was ("" otherwise).
    resume_note: str = ""
    checkpoint: Optional[ShardCheckpoint] = None

    @property
    def complete(self) -> bool:
        return not self.interrupted and (self.skipped + self.executed) == self.total


class ShardRunner:
    """Runs one shard of a plan, checkpointing after every unit.

    ``advisor`` is anything satisfying the :class:`~repro.api.advisor
    .Advisor` protocol (default: a fresh inline session built on first
    use); ``execute`` overrides the per-unit computation (tests inject
    fakes here).  ``stop_after`` stops after that many *newly executed*
    units — cooperative preemption for smoke tests — while ``kill_after``
    delivers a real ``SIGKILL`` to this very process after that many
    units, which is the fault injection the resume contract is proven
    against.
    """

    def __init__(
        self,
        plan: EvaluationPlan,
        shard: int,
        checkpoint_dir: Union[str, Path],
        advisor=None,
        execute: Optional[Callable[[WorkUnit], dict]] = None,
        cache_dir: Optional[str] = None,
        stop_after: Optional[int] = None,
        kill_after: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ):
        if not 0 <= shard < plan.num_shards:
            raise FleetError(
                f"shard {shard} out of range for a {plan.num_shards}-shard plan"
            )
        if stop_after is not None and stop_after < 1:
            raise FleetError(f"stop_after must be >= 1, got {stop_after}")
        if kill_after is not None and kill_after < 1:
            raise FleetError(f"kill_after must be >= 1, got {kill_after}")
        self.plan = plan
        self.shard = shard
        self.checkpoint_dir = Path(checkpoint_dir)
        self._advisor = advisor
        self._execute = execute
        self.cache_dir = cache_dir
        self.stop_after = stop_after
        self.kill_after = kill_after
        self.progress = progress or (lambda event: None)

    # ------------------------------------------------------------------
    def _resolve_execute(self) -> Callable[[WorkUnit], dict]:
        if self._execute is not None:
            return self._execute
        advisor = self._advisor
        if advisor is None:
            # Built lazily so planning/merging never pays for a session.
            from repro.api.session import AdvisingSession

            advisor = AdvisingSession(cache=self.cache_dir)
            self._advisor = advisor
        return lambda unit: evaluate_unit(advisor, unit)

    # ------------------------------------------------------------------
    def run(self) -> ShardRunSummary:
        """Execute every unit of the shard not already checkpointed."""
        units = self.plan.shard_units(self.shard)
        checkpoint, resume_note = load_checkpoint(
            self.checkpoint_dir, self.plan.plan_id, self.shard
        )
        summary = ShardRunSummary(
            shard=self.shard,
            total=len(units),
            resume_note=resume_note,
            checkpoint=checkpoint,
        )
        # Write the (possibly empty) checkpoint up front: an empty shard
        # still leaves a file behind, so CI artifact uploads never miss.
        store_checkpoint(self.checkpoint_dir, checkpoint)

        pending = [
            unit for unit in units if unit.fingerprint not in checkpoint.entries
        ]
        summary.skipped = len(units) - len(pending)
        execute = self._resolve_execute() if pending else None
        total = len(units)
        for offset, unit in enumerate(pending):
            if self.stop_after is not None and summary.executed >= self.stop_after:
                summary.interrupted = True
                break
            index = summary.skipped + offset
            label = f"{unit.case_id} [{unit.config.key}]"
            self.progress(ProgressEvent(label, index, total, "start"))
            started = time.perf_counter()
            record = UnitRecord(
                fingerprint=unit.fingerprint,
                case_id=unit.case_id,
                config_key=unit.config.key,
            )
            try:
                record.outcome = execute(unit)
            except CaseFailure as failure:
                record.error = failure.error
            record.duration = time.perf_counter() - started
            checkpoint.record(record)
            store_checkpoint(self.checkpoint_dir, checkpoint)
            summary.executed += 1
            status = "done" if record.ok else "error"
            self.progress(
                ProgressEvent(label, index, total, status, record.duration, record.error)
            )
            if self.kill_after is not None and summary.executed >= self.kill_after:
                # Fault injection: die the hard way, mid-shard, exactly as a
                # preempted CI runner would.  The checkpoint just written is
                # what the next invocation resumes from.
                os.kill(os.getpid(), signal.SIGKILL)

        summary.failed = sorted(
            record.case_id
            for unit in units
            if (record := checkpoint.entries.get(unit.fingerprint)) is not None
            and not record.ok
        )
        return summary


__all__ = [
    "CaseFailure",
    "ShardRunSummary",
    "ShardRunner",
    "evaluate_unit",
    "unit_request",
]
