"""The declarative fleet-evaluation plan.

An :class:`EvaluationPlan` enumerates the full evaluation surface — every
benchmark case crossed with every :class:`SweepConfiguration` (simulation
scope, memory model, architecture, sample period, simulator backend) — as
:class:`WorkUnit` objects and partitions them into deterministic shards.

Determinism is the whole point: a unit's **fingerprint** digests the case
label and every knob, its shard is the fingerprint reduced modulo the shard
count, and the plan's **plan id** digests the normalized inputs.  The same
cases and configurations therefore always produce the same plan id, the
same fingerprints and the same partition — on any machine, in any input
order — which is what lets a killed sweep resume against checkpoints
written by an earlier process (and lets a CI matrix leg trust that "shard
3" means the same units it meant in the previous attempt).

The partition is a disjoint cover by construction (every unit lands in
exactly one shard) and unit fingerprints are independent of the shard
count, so re-planning the same surface at a different width never changes
what any unit *is* — only where it runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sampling.memory import check_memory_model
from repro.sampling.profiler import check_simulation_scope
from repro.sampling.vector import check_simulator_backend

#: Version of the plan wire form.  Bumped when the JSON layout changes.
PLAN_SCHEMA_VERSION = 1

#: Version of the unit-fingerprint digest.  Bumped when the digest's inputs
#: change shape; checkpoints keyed under another version never match, so a
#: resume against them re-runs from scratch instead of mispairing units.
FLEET_FINGERPRINT_VERSION = 1

#: Hex digits kept from the sha256 digests (80 bits; collisions across a
#: few hundred units are beyond negligible, and short ids keep checkpoints
#: and artifact diffs readable).
_DIGEST_CHARS = 20


class FleetError(Exception):
    """An infrastructure-shaped fleet failure (bad plan, bad checkpoint)."""


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_DIGEST_CHARS]


@dataclass(frozen=True)
class SweepConfiguration:
    """One point of the evaluation knob space, validated at construction."""

    simulation_scope: str = "single_wave"
    memory_model: str = "flat"
    arch_flag: str = "sm_70"
    sample_period: int = 8
    simulator_backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_simulation_scope(self.simulation_scope)
        check_memory_model(self.memory_model)
        if self.simulator_backend is not None:
            check_simulator_backend(self.simulator_backend)
        if self.sample_period <= 0:
            raise FleetError(
                f"sample_period must be positive, got {self.sample_period}"
            )
        if not self.arch_flag:
            raise FleetError("arch_flag must be non-empty")

    @property
    def key(self) -> str:
        """A stable human-readable identity, used for grouping and display."""
        parts = [
            self.simulation_scope,
            self.memory_model,
            self.arch_flag,
            f"p{self.sample_period}",
        ]
        if self.simulator_backend is not None:
            parts.append(self.simulator_backend)
        return "+".join(parts)

    def to_dict(self) -> dict:
        return {
            "simulation_scope": self.simulation_scope,
            "memory_model": self.memory_model,
            "arch_flag": self.arch_flag,
            "sample_period": self.sample_period,
            "simulator_backend": self.simulator_backend,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepConfiguration":
        if not isinstance(payload, dict):
            raise FleetError(
                f"expected a configuration dict, got {type(payload).__name__}"
            )
        try:
            return cls(
                simulation_scope=payload.get("simulation_scope", "single_wave"),
                memory_model=payload.get("memory_model", "flat"),
                arch_flag=payload.get("arch_flag", "sm_70"),
                sample_period=payload.get("sample_period", 8),
                simulator_backend=payload.get("simulator_backend"),
            )
        except (ValueError, TypeError) as exc:
            raise FleetError(f"bad sweep configuration: {exc}") from exc


@dataclass(frozen=True)
class WorkUnit:
    """One (case, configuration) evaluation: the atom of the fleet sweep."""

    case_id: str
    config: SweepConfiguration

    @cached_property
    def fingerprint(self) -> str:
        """Stable digest of the case label plus every knob.

        Checkpoint entries are keyed by this, so a resumed shard recognizes
        completed units across processes and machines.  Deliberately
        independent of the plan's shard count and of every other unit.
        """
        return _digest(
            {
                "fleet_fingerprint_version": FLEET_FINGERPRINT_VERSION,
                "case": self.case_id,
                "config": self.config.to_dict(),
            }
        )


@dataclass(frozen=True)
class EvaluationPlan:
    """The case x configuration matrix, partitioned into deterministic shards.

    Inputs are normalized at construction — cases and configurations are
    deduplicated and sorted — so two plans built from the same surface in
    any order are equal, share a plan id, and partition identically.
    """

    case_ids: Tuple[str, ...]
    configurations: Tuple[SweepConfiguration, ...]
    num_shards: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise FleetError(f"num_shards must be >= 1, got {self.num_shards}")
        if not self.case_ids:
            raise FleetError("a plan needs at least one case")
        if not self.configurations:
            raise FleetError("a plan needs at least one configuration")
        object.__setattr__(
            self, "case_ids", tuple(sorted(set(self.case_ids)))
        )
        configs = {config.key: config for config in self.configurations}
        if len(configs) != len(self.configurations):
            raise FleetError("duplicate configurations in plan")
        object.__setattr__(
            self,
            "configurations",
            tuple(configs[key] for key in sorted(configs)),
        )

    # ------------------------------------------------------------------
    @cached_property
    def plan_id(self) -> str:
        """Digest of the normalized inputs: same surface, same id."""
        return _digest(
            {
                "plan_schema_version": PLAN_SCHEMA_VERSION,
                "fleet_fingerprint_version": FLEET_FINGERPRINT_VERSION,
                "cases": list(self.case_ids),
                "configurations": [
                    config.to_dict() for config in self.configurations
                ],
                "num_shards": self.num_shards,
            }
        )

    @cached_property
    def _units(self) -> Tuple[WorkUnit, ...]:
        return tuple(
            WorkUnit(case_id=case_id, config=config)
            for case_id in self.case_ids
            for config in self.configurations
        )

    def units(self) -> List[WorkUnit]:
        """Every unit of the plan, in (case, configuration-key) order."""
        return list(self._units)

    def shard_of(self, unit: WorkUnit) -> int:
        """The one shard ``unit`` belongs to (fingerprint mod shard count)."""
        return int(unit.fingerprint, 16) % self.num_shards

    def shard_units(self, shard: int) -> List[WorkUnit]:
        """The units of one shard, in plan order."""
        if not 0 <= shard < self.num_shards:
            raise FleetError(
                f"shard {shard} out of range for a {self.num_shards}-shard plan"
            )
        return [unit for unit in self._units if self.shard_of(unit) == shard]

    def unit_by_fingerprint(self) -> Dict[str, WorkUnit]:
        return {unit.fingerprint: unit for unit in self._units}

    # ------------------------------------------------------------------
    def matrix_include(self) -> List[dict]:
        """The GitHub Actions matrix include-list: one leg per loaded shard.

        Shards that received no units (possible when the shard count
        exceeds the unit count) are omitted — an empty leg would spend a
        runner proving nothing.
        """
        include = []
        for shard in range(self.num_shards):
            units = self.shard_units(shard)
            if units:
                include.append(
                    {
                        "shard": shard,
                        "name": f"shard-{shard}",
                        "units": len(units),
                    }
                )
        return include

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The plan's wire form.  The ``shards`` section is derived (and
        re-derived on load); it is written out so humans and CI scripts can
        read the partition without running Python."""
        return {
            "kind": "fleet_plan",
            "schema_version": PLAN_SCHEMA_VERSION,
            "fingerprint_version": FLEET_FINGERPRINT_VERSION,
            "plan_id": self.plan_id,
            "num_shards": self.num_shards,
            "cases": list(self.case_ids),
            "configurations": [config.to_dict() for config in self.configurations],
            "shards": [
                {
                    "shard": shard,
                    "units": [
                        {
                            "case": unit.case_id,
                            "config": unit.config.key,
                            "fingerprint": unit.fingerprint,
                        }
                        for unit in self.shard_units(shard)
                    ],
                }
                for shard in range(self.num_shards)
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EvaluationPlan":
        """Reload a dumped plan, verifying identity end to end.

        The stated ``plan_id`` must match the one recomputed from the
        reloaded inputs — a hand-edited plan (or one written by a different
        fingerprint version) is rejected instead of silently mispairing
        against existing checkpoints.
        """
        if not isinstance(payload, dict):
            raise FleetError(
                f"expected a serialized plan dict, got {type(payload).__name__}"
            )
        if payload.get("kind") != "fleet_plan":
            raise FleetError(
                f"expected a fleet_plan payload, got kind {payload.get('kind')!r}"
            )
        if payload.get("schema_version") != PLAN_SCHEMA_VERSION:
            raise FleetError(
                f"cannot load plan: schema version "
                f"{payload.get('schema_version')!r} (this build speaks "
                f"{PLAN_SCHEMA_VERSION})"
            )
        if payload.get("fingerprint_version") != FLEET_FINGERPRINT_VERSION:
            raise FleetError(
                f"cannot load plan: fingerprint version "
                f"{payload.get('fingerprint_version')!r} (this build digests "
                f"version {FLEET_FINGERPRINT_VERSION})"
            )
        try:
            plan = cls(
                case_ids=tuple(payload["cases"]),
                configurations=tuple(
                    SweepConfiguration.from_dict(entry)
                    for entry in payload["configurations"]
                ),
                num_shards=payload["num_shards"],
            )
        except KeyError as exc:
            raise FleetError(f"serialized plan is missing {exc}") from exc
        stated = payload.get("plan_id")
        if stated != plan.plan_id:
            raise FleetError(
                f"plan id mismatch: file states {stated!r} but the inputs "
                f"digest to {plan.plan_id!r} (edited by hand?)"
            )
        return plan

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def build_plan(
    case_ids: Optional[Sequence[str]] = None,
    configurations: Optional[Sequence[SweepConfiguration]] = None,
    num_shards: int = 1,
    limit: Optional[int] = None,
) -> EvaluationPlan:
    """Build a plan over registry cases (default: all of them).

    ``limit`` truncates the registry's case list *before* planning (the
    mini-matrix knob of the CI smoke); explicit ``case_ids`` are validated
    against the registry so a typo fails at plan time, not mid-sweep.
    """
    # Imported lazily: the registry constructs every workload module.
    from repro.workloads.registry import case_by_name, case_names

    if case_ids is None:
        ids: List[str] = case_names()
    else:
        ids = list(case_ids)
        for case_id in ids:
            try:
                case_by_name(case_id)
            except KeyError as exc:
                raise FleetError(f"unknown benchmark case {case_id!r}") from exc
    if limit is not None:
        if limit < 1:
            raise FleetError(f"limit must be >= 1, got {limit}")
        ids = ids[:limit]
    if configurations is None:
        configurations = [SweepConfiguration()]
    return EvaluationPlan(
        case_ids=tuple(ids),
        configurations=tuple(configurations),
        num_shards=num_shards,
    )


__all__ = [
    "FLEET_FINGERPRINT_VERSION",
    "PLAN_SCHEMA_VERSION",
    "EvaluationPlan",
    "FleetError",
    "SweepConfiguration",
    "WorkUnit",
    "build_plan",
]
