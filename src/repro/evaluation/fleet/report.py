"""The static HTML trend dashboard (stdlib only).

:func:`render_report` turns a history of merged sweep artifacts plus the
benchmark trajectory (``BENCH_history.jsonl`` appended by the regression
gate, with the committed ``BENCH_simulator.json`` as a single-point
fallback) into one self-contained HTML page: stat tiles for the latest
sweep, an error-geomean trend line per configuration, a simulator
throughput trajectory per pinned benchmark block, the latest sweep's
per-configuration table, and the failure ledger.

Design notes (deliberate, please keep):

* **No dependencies, no network.**  The page is a CI artifact viewed from
  a file:// URL; everything — styles, SVG charts, data tables — is inline.
* Charts follow the house data-viz method: series hues come from a fixed,
  CVD-validated categorical order and are assigned by sorted series key
  (never cycled, never re-assigned when a series disappears); lines are
  2px with >=8px markers ringed in the surface color; gridlines are
  1px hairlines; text never wears a series color.  Past eight series the
  rest fold into the data table rather than inventing hues.
* Every chart has a data-table twin directly below it, so the page stays
  readable colorblind, grayscale-printed, or through a screen reader.
* Dark mode is a real second palette (stepped for the dark surface), not
  a CSS filter, and follows ``prefers-color-scheme``.
"""

from __future__ import annotations

import html
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Categorical slots (light, dark) in their validated fixed order.
_SERIES = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
)
_MAX_SERIES = len(_SERIES)

_CHART_WIDTH = 720
_CHART_HEIGHT = 260
_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 16
_MARGIN_BOTTOM = 36


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _nice_ticks(top: float, count: int = 4) -> List[float]:
    """Clean round tick values covering [0, top]."""
    if top <= 0:
        return [0.0, 1.0]
    raw = top / count
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = magnitude * 10
    for multiplier in (1, 2, 2.5, 5, 10):
        if magnitude * multiplier >= raw:
            step = magnitude * multiplier
            break
    ticks = [0.0]
    while ticks[-1] < top:
        ticks.append(round(ticks[-1] + step, 10))
    return ticks


def _fmt(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1000:.0f}k"
    if value >= 1000:
        return f"{value / 1000:.1f}k"
    if value >= 10:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3g}"


def _line_chart(
    title: str,
    series: Dict[str, List[Optional[float]]],
    x_labels: Sequence[str],
    unit: str,
    chart_id: str,
) -> str:
    """One SVG line chart + legend + its data-table twin.

    ``series`` maps series key -> one value per x position (None = gap).
    Series are drawn in sorted-key order, which is also the fixed color
    assignment; at most eight get a hue, the rest live in the table.
    """
    keys = sorted(series)
    plotted = keys[:_MAX_SERIES]
    folded = keys[_MAX_SERIES:]
    points = len(x_labels)
    inner_w = _CHART_WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    inner_h = _CHART_HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    top = max(
        (v for key in plotted for v in series[key] if v is not None),
        default=1.0,
    )
    ticks = _nice_ticks(top * 1.05 if top > 0 else 1.0)
    y_top = ticks[-1]

    def x_of(index: int) -> float:
        if points <= 1:
            return _MARGIN_LEFT + inner_w / 2
        return _MARGIN_LEFT + inner_w * index / (points - 1)

    def y_of(value: float) -> float:
        return _MARGIN_TOP + inner_h * (1 - value / y_top)

    grid = []
    for tick in ticks:
        y = y_of(tick)
        grid.append(
            f'<line class="grid" x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{_CHART_WIDTH - _MARGIN_RIGHT}" y2="{y:.1f}"/>'
            f'<text class="tick" x="{_MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_esc(_fmt(tick))}</text>'
        )

    x_axis = []
    shown = range(points) if points <= 8 else range(0, points, max(1, points // 8))
    for index in shown:
        x = x_of(index)
        x_axis.append(
            f'<text class="tick" x="{x:.1f}" y="{_CHART_HEIGHT - 10}" '
            f'text-anchor="middle">{_esc(x_labels[index])}</text>'
        )

    marks = []
    for slot, key in enumerate(plotted):
        values = series[key]
        coords = [
            (x_of(i), y_of(v)) for i, v in enumerate(values) if v is not None
        ]
        if not coords:
            continue
        if len(coords) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            marks.append(
                f'<polyline class="line s{slot}" points="{path}"/>'
            )
        for (x, y), (index, value) in zip(
            coords, ((i, v) for i, v in enumerate(values) if v is not None)
        ):
            marks.append(
                f'<circle class="dot s{slot}" cx="{x:.1f}" cy="{y:.1f}" r="4">'
                f"<title>{_esc(key)} — {_esc(x_labels[index])}: "
                f"{_esc(_fmt(value))} {_esc(unit)}</title></circle>"
            )

    legend = ""
    if len(plotted) > 1:
        items = "".join(
            f'<span class="key"><span class="swatch s{slot}"></span>'
            f"{_esc(key)}</span>"
            for slot, key in enumerate(plotted)
        )
        legend = f'<div class="legend">{items}</div>'

    folded_note = ""
    if folded:
        folded_note = (
            f'<p class="note">{len(folded)} more series exceed the fixed '
            f"palette and appear only in the table below.</p>"
        )

    header = "".join(f"<th>{_esc(label)}</th>" for label in x_labels)
    body = []
    for key in keys:
        cells = "".join(
            f'<td>{_esc(_fmt(v)) if v is not None else "–"}</td>'
            for v in series[key]
        )
        body.append(f"<tr><th scope=\"row\">{_esc(key)}</th>{cells}</tr>")
    table = (
        f'<details class="data"><summary>Data table ({_esc(unit)})</summary>'
        f'<table><thead><tr><th>series</th>{header}</tr></thead>'
        f'<tbody>{"".join(body)}</tbody></table></details>'
    )

    empty = not any(v is not None for key in plotted for v in series[key])
    if empty:
        return (
            f'<section class="chart" id="{_esc(chart_id)}">'
            f"<h2>{_esc(title)}</h2>"
            f'<p class="note">No data points yet.</p></section>'
        )
    return (
        f'<section class="chart" id="{_esc(chart_id)}">'
        f"<h2>{_esc(title)}</h2>{legend}"
        f'<svg viewBox="0 0 {_CHART_WIDTH} {_CHART_HEIGHT}" '
        f'role="img" aria-label="{_esc(title)}">'
        f'{"".join(grid)}{"".join(x_axis)}{"".join(marks)}</svg>'
        f"{folded_note}{table}</section>"
    )


# ----------------------------------------------------------------------
# Input shaping
# ----------------------------------------------------------------------
def sweep_error_series(
    sweeps: Sequence[Tuple[str, dict]],
) -> Tuple[Dict[str, List[Optional[float]]], List[str]]:
    """Per-configuration geomean-error-% series over the sweep history."""
    labels = [label for label, _ in sweeps]
    keys = sorted(
        {
            config["key"]
            for _, artifact in sweeps
            for config in artifact.get("configurations", [])
        }
    )
    series: Dict[str, List[Optional[float]]] = {key: [] for key in keys}
    for _, artifact in sweeps:
        by_key = {
            config["key"]: config
            for config in artifact.get("configurations", [])
        }
        for key in keys:
            config = by_key.get(key)
            value = None
            if config is not None and config.get("cases_ok"):
                value = config["geomean_error"] * 100.0
            series[key].append(value)
    return series, labels


def bench_throughput_series(
    history: Sequence[dict],
) -> Tuple[Dict[str, List[Optional[float]]], List[str]]:
    """Per-pinned-block cycles/s series over the benchmark history."""
    labels = []
    rows = []
    for index, entry in enumerate(history):
        stamp = entry.get("recorded") or f"run {index}"
        labels.append(str(stamp)[:10])
        blocks = {}
        for block in entry.get("blocks", []):
            key = (
                f"{block.get('simulation_scope', 'single_wave')}"
                f"+{block.get('memory_model', 'flat')}"
                f" {block.get('simulator_backend', 'object')}"
            )
            blocks[key] = block.get("cycles_per_second")
        rows.append(blocks)
    keys = sorted({key for row in rows for key in row})
    series = {key: [row.get(key) for row in rows] for key in keys}
    return series, labels


def load_bench_history(path: Union[str, Path]) -> List[dict]:
    """Parse a ``BENCH_history.jsonl``; corrupt lines are skipped."""
    entries = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict) and entry.get("blocks"):
            entries.append(entry)
    return entries


def bench_reference_entry(reference: dict) -> Optional[dict]:
    """A single history-shaped entry from a committed BENCH_*.json."""
    if reference.get("benchmark") != "simulator_smoke":
        return None
    blocks = reference.get("measurements")
    if not isinstance(blocks, list):
        blocks = [reference]
    return {
        "recorded": "pinned",
        "blocks": [
            {
                "simulation_scope": block.get("simulation_scope", "single_wave"),
                "memory_model": block.get("memory_model", "flat"),
                "simulator_backend": block.get("simulator_backend", "object"),
                "cycles_per_second": block.get("cycles_per_second"),
            }
            for block in blocks
        ],
    }


# ----------------------------------------------------------------------
# Page assembly
# ----------------------------------------------------------------------
def _style() -> str:
    slots_light = "".join(
        f".s{i} {{ --series: {light}; }}\n" for i, (light, _) in enumerate(_SERIES)
    )
    slots_dark = "".join(
        f"  .s{i} {{ --series: {dark}; }}\n" for i, (_, dark) in enumerate(_SERIES)
    )
    return f"""
:root {{
  color-scheme: light dark;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --critical: #d03b3b;
}}
{slots_light}
@media (prefers-color-scheme: dark) {{
  :root {{
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --critical: #e66767;
  }}
{slots_dark}}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
main {{ max-width: 880px; margin: 0 auto; }}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
h2 {{ font-size: 15px; margin: 0 0 8px; color: var(--ink); }}
.sub {{ color: var(--ink-2); margin: 0 0 20px; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 20px; }}
.tile {{
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px; flex: 1;
}}
.tile .label {{ color: var(--ink-2); font-size: 12px; }}
.tile .value {{ font-size: 26px; font-weight: 600; }}
.tile .value.bad {{ color: var(--critical); }}
.tile .hint {{ color: var(--muted); font-size: 11px; }}
section.chart, section.table {{
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 0 0 20px;
}}
svg {{ width: 100%; height: auto; display: block; }}
svg .grid {{ stroke: var(--grid); stroke-width: 1; }}
svg .tick {{ fill: var(--muted); font-size: 11px;
             font-variant-numeric: tabular-nums; }}
svg .line {{ fill: none; stroke: var(--series); stroke-width: 2;
             stroke-linejoin: round; stroke-linecap: round; }}
svg .dot {{ fill: var(--series); stroke: var(--surface); stroke-width: 2; }}
.legend {{ display: flex; flex-wrap: wrap; gap: 6px 16px; margin: 0 0 8px;
           color: var(--ink-2); font-size: 12px; }}
.legend .key {{ display: inline-flex; align-items: center; gap: 6px; }}
.legend .swatch {{ width: 10px; height: 10px; border-radius: 50%;
                   background: var(--series); display: inline-block; }}
.note {{ color: var(--muted); font-size: 12px; }}
details.data {{ margin-top: 8px; }}
details.data summary {{ color: var(--ink-2); font-size: 12px; cursor: pointer; }}
table {{ border-collapse: collapse; width: 100%; margin-top: 8px;
         font-size: 12px; }}
th, td {{ text-align: right; padding: 4px 8px;
          border-bottom: 1px solid var(--grid);
          font-variant-numeric: tabular-nums; }}
th[scope="row"], thead th:first-child {{ text-align: left; }}
thead th {{ color: var(--ink-2); font-weight: 600; }}
.failures li {{ color: var(--ink-2); }}
.failures code {{ color: var(--critical); }}
footer {{ color: var(--muted); font-size: 11px; margin-top: 24px; }}
"""


def _stat_tiles(latest: Optional[dict], sweeps: int) -> str:
    if latest is None:
        return ""
    configs = latest.get("configurations", [])
    worst = max(
        (c["geomean_error"] for c in configs if c.get("cases_ok")),
        default=None,
    )
    failures = latest.get("failures_total", 0)
    tiles = [
        ("Sweeps on record", str(sweeps), ""),
        ("Units in latest sweep", str(latest.get("units", 0)), ""),
        (
            "Worst config geomean error",
            f"{worst * 100:.1f}%" if worst is not None else "–",
            "geometric mean of per-case estimate error",
        ),
        (
            "Failed cases",
            str(failures),
            "across every configuration",
        ),
    ]
    rendered = []
    for label, value, hint in tiles:
        bad = ' bad' if label == "Failed cases" and failures else ""
        hint_html = f'<div class="hint">{_esc(hint)}</div>' if hint else ""
        rendered.append(
            f'<div class="tile"><div class="label">{_esc(label)}</div>'
            f'<div class="value{bad}">{_esc(value)}</div>{hint_html}</div>'
        )
    if not latest.get("complete", True):
        rendered.append(
            '<div class="tile"><div class="label">Coverage</div>'
            '<div class="value bad">incomplete</div>'
            f'<div class="hint">{len(latest.get("missing", []))} unit(s) '
            "missing from checkpoints</div></div>"
        )
    return f'<div class="tiles">{"".join(rendered)}</div>'


def _latest_table(latest: Optional[dict]) -> str:
    if latest is None:
        return ""
    rows = []
    for config in latest.get("configurations", []):
        rows.append(
            "<tr>"
            f'<th scope="row">{_esc(config["key"])}</th>'
            f"<td>{config.get('cases_ok', 0)}</td>"
            f"<td>{config.get('cases_failed', 0)}</td>"
            f"<td>{config.get('geomean_achieved', 0):.2f}x</td>"
            f"<td>{config.get('geomean_estimated', 0):.2f}x</td>"
            f"<td>{config.get('geomean_error', 0) * 100:.1f}%</td>"
            f"<td>{_esc(_fmt(config.get('total_samples', 0)))}</td>"
            "</tr>"
        )
    return (
        '<section class="table"><h2>Latest sweep by configuration</h2>'
        "<table><thead><tr><th>configuration</th><th>ok</th><th>failed</th>"
        "<th>geomean achieved</th><th>geomean estimated</th>"
        "<th>geomean error</th><th>samples</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table></section>'
    )


def _failure_ledger(latest: Optional[dict]) -> str:
    if latest is None:
        return ""
    items = []
    for config in latest.get("configurations", []):
        for failure in config.get("failures", []):
            items.append(
                f"<li><code>{_esc(failure['case'])}</code> "
                f"[{_esc(config['key'])}] — {_esc(failure['error'])}</li>"
            )
    for missing in latest.get("missing", []):
        items.append(
            f"<li><code>{_esc(missing['case'])}</code> "
            f"[{_esc(missing['config'])}] — missing from checkpoints</li>"
        )
    if not items:
        return ""
    return (
        '<section class="table failures"><h2>Failure ledger (latest sweep)'
        f'</h2><ul>{"".join(items)}</ul></section>'
    )


def render_report(
    sweeps: Sequence[Tuple[str, dict]],
    bench_history: Sequence[dict] = (),
    generated: str = "",
) -> str:
    """The full dashboard page.  ``sweeps`` is (label, artifact), oldest
    first; ``bench_history`` is parsed ``BENCH_history.jsonl`` entries."""
    latest = sweeps[-1][1] if sweeps else None
    error_series, error_labels = sweep_error_series(sweeps)
    bench_series, bench_labels = bench_throughput_series(bench_history)

    charts = []
    if sweeps:
        charts.append(
            _line_chart(
                "Estimate-error geomean by configuration",
                error_series,
                error_labels,
                "% error",
                "errors",
            )
        )
    if bench_history:
        charts.append(
            _line_chart(
                "Simulator throughput trajectory (pinned benchmark blocks)",
                bench_series,
                bench_labels,
                "cycles/s",
                "throughput",
            )
        )

    stamp = f" · generated {_esc(generated)}" if generated else ""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        "<title>Fleet evaluation dashboard</title>"
        f"<style>{_style()}</style></head><body><main>"
        "<h1>Fleet evaluation dashboard</h1>"
        '<p class="sub">Error geomeans per configuration across sweep '
        "history, simulator throughput trajectory, and the latest failure "
        f"ledger{stamp}.</p>"
        f"{_stat_tiles(latest, len(sweeps))}"
        f'{"".join(charts)}'
        f"{_latest_table(latest)}"
        f"{_failure_ledger(latest)}"
        "<footer>Static artifact of the fleet evaluation pipeline "
        "(python -m repro.evaluation.fleet report); stdlib-generated, "
        "no external assets.</footer>"
        "</main></body></html>\n"
    )


__all__ = [
    "bench_reference_entry",
    "bench_throughput_series",
    "load_bench_history",
    "render_report",
    "sweep_error_series",
]
