"""Folding shard checkpoints into the canonical sweep artifact.

The merge step is a pure function of (plan, checkpoint entries): it
gathers every unit's record, groups them per configuration, and emits one
deterministic JSON document — per-configuration rows, error geomeans
(mirroring :class:`~repro.evaluation.table3.Table3Result`), deterministic
throughput surrogates (simulated samples and kernel cycles; wall-clock
numbers live in the checkpoints and the CI logs, never here) and the
failure ledger.

Three properties are load-bearing and tested:

* **order independence** — checkpoints may be supplied in any order;
* **fixed point** — merging the same inputs twice yields identical bytes
  (:func:`artifact_json` is canonical: sorted keys, fixed indentation,
  trailing newline);
* **shard independence** — the artifact states nothing about how the sweep
  was partitioned (no plan id, no shard count, no durations), so a 2-shard
  sweep, an unsharded sweep, and a killed-and-resumed sweep of the same
  surface all produce byte-identical artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.evaluation.fleet.checkpoint import (
    ShardCheckpoint,
    UnitRecord,
    load_checkpoint,
)
from repro.evaluation.fleet.plan import EvaluationPlan, FleetError
from repro.evaluation.metrics import geometric_mean
from repro.pipeline.batch import error_summary

#: Version of the sweep-artifact wire form.
SWEEP_SCHEMA_VERSION = 1

#: The per-case outcome fields copied into artifact rows, in order.  All
#: deterministic; anything timing-shaped stays out by design.
_ROW_FIELDS = (
    "baseline_cycles",
    "optimized_cycles",
    "achieved_speedup",
    "estimated_speedup",
    "error",
    "optimizer_rank",
    "total_samples",
)


@dataclass
class MergeOutcome:
    """The folded artifact plus everything the CLI needs for its verdict."""

    artifact: dict
    #: (case_id, config_key) pairs the checkpoints did not cover.
    missing: List[Tuple[str, str]] = field(default_factory=list)
    #: Total case failures across every configuration.
    failures: int = 0
    #: Reasons checkpoints were ignored while collecting (unusable files).
    notes: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missing


def collect_checkpoints(
    directory: Union[str, Path], plan: EvaluationPlan
) -> Tuple[List[ShardCheckpoint], List[str]]:
    """Load every shard's checkpoint for ``plan`` from ``directory``.

    Unusable files surface as notes (and their shard contributes nothing);
    completeness is judged later, per unit, by :func:`merge_checkpoints`.
    """
    checkpoints: List[ShardCheckpoint] = []
    notes: List[str] = []
    for shard in range(plan.num_shards):
        checkpoint, reason = load_checkpoint(directory, plan.plan_id, shard)
        if reason:
            notes.append(reason)
        checkpoints.append(checkpoint)
    return checkpoints, notes


def merge_checkpoints(
    plan: EvaluationPlan,
    checkpoints: Sequence[ShardCheckpoint],
    notes: Sequence[str] = (),
) -> MergeOutcome:
    """Fold shard checkpoints into the canonical sweep artifact.

    Checkpoints written for a different plan are rejected outright (an
    infrastructure error: the caller mixed sweeps).  Entries for units the
    plan does not contain are dropped silently — they can only appear when
    a checkpoint file was hand-copied around, and keeping them would make
    the artifact depend on junk.
    """
    for checkpoint in checkpoints:
        if checkpoint.plan_id != plan.plan_id:
            raise FleetError(
                f"checkpoint for shard {checkpoint.shard} belongs to plan "
                f"{checkpoint.plan_id!r}, not {plan.plan_id!r}"
            )

    units = plan.unit_by_fingerprint()
    # Sorted by shard, so duplicate fingerprints (impossible via the
    # runner, possible via copied files) resolve identically regardless of
    # the order the caller supplied the checkpoints in.
    entries: Dict[str, UnitRecord] = {}
    for checkpoint in sorted(checkpoints, key=lambda item: item.shard):
        for fingerprint, record in checkpoint.entries.items():
            if fingerprint in units and fingerprint not in entries:
                entries[fingerprint] = record

    outcome = MergeOutcome(artifact={}, notes=list(notes))
    unit_index = {
        (unit.case_id, unit.config.key): unit for unit in plan.units()
    }
    configurations = []
    for config in plan.configurations:
        rows = []
        failures = []
        for case_id in plan.case_ids:
            unit = unit_index[(case_id, config.key)]
            record = entries.get(unit.fingerprint)
            if record is None:
                outcome.missing.append((case_id, config.key))
                continue
            if record.ok:
                row = {"case": case_id}
                row.update(
                    {name: (record.outcome or {}).get(name) for name in _ROW_FIELDS}
                )
                rows.append(row)
            else:
                failures.append(
                    {"case": case_id, "error": error_summary(record.error)}
                )
        errors = [row["error"] for row in rows]
        configurations.append(
            {
                "config": config.to_dict(),
                "key": config.key,
                "rows": rows,
                "failures": failures,
                "cases_ok": len(rows),
                "cases_failed": len(failures),
                "geomean_achieved": geometric_mean(
                    row["achieved_speedup"] for row in rows
                ),
                "geomean_estimated": geometric_mean(
                    row["estimated_speedup"] for row in rows
                ),
                # Same floor Table3Result applies: a perfect estimate must
                # not zero out the geomean.
                "geomean_error": geometric_mean(
                    max(error, 1e-4) for error in errors
                ),
                "mean_error": (sum(errors) / len(errors)) if errors else 0.0,
                "total_samples": sum(row["total_samples"] or 0 for row in rows),
                "total_baseline_cycles": sum(
                    row["baseline_cycles"] or 0.0 for row in rows
                ),
            }
        )
        outcome.failures += len(configurations[-1]["failures"])

    outcome.artifact = {
        "kind": "fleet_sweep",
        "schema_version": SWEEP_SCHEMA_VERSION,
        "cases": list(plan.case_ids),
        "units": len(units),
        "complete": not outcome.missing,
        "missing": [
            {"case": case_id, "config": config_key}
            for case_id, config_key in sorted(outcome.missing)
        ],
        "failures_total": outcome.failures,
        "configurations": configurations,
    }
    return outcome


def artifact_json(artifact: dict) -> str:
    """The artifact's canonical bytes (sorted keys, 2-indent, newline)."""
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


def load_artifact(path: Union[str, Path]) -> dict:
    """Reload a sweep artifact, validating its envelope."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise FleetError(f"cannot read sweep artifact {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != "fleet_sweep":
        raise FleetError(f"{path} is not a fleet_sweep artifact")
    if payload.get("schema_version") != SWEEP_SCHEMA_VERSION:
        raise FleetError(
            f"{path} has sweep schema {payload.get('schema_version')!r} "
            f"(this build speaks {SWEEP_SCHEMA_VERSION})"
        )
    return payload


__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "MergeOutcome",
    "artifact_json",
    "collect_checkpoints",
    "load_artifact",
    "merge_checkpoints",
]
