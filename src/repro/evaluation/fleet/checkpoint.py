"""Atomic, resumable per-shard checkpoints.

A :class:`ShardCheckpoint` records the outcome of every unit a shard has
finished — success outcomes and captured case failures alike — keyed by
the unit's plan-independent fingerprint.  The file on disk is rewritten
after **every** completed unit via write-to-temp + :func:`os.replace`, so
a shard killed at any instant (including SIGKILL mid-write) leaves either
the previous complete checkpoint or the new complete checkpoint, never a
torn one.

Loading is deliberately forgiving: a missing, truncated, corrupt,
wrong-schema, wrong-plan or wrong-shard file is treated as **absent** (the
shard restarts from zero) rather than an error — a damaged checkpoint must
never be able to wedge a sweep that could simply re-run.  The reason the
file was ignored is surfaced so the operator can see *that* a resume
restarted, and why.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.evaluation.fleet.plan import FleetError

#: Version of the checkpoint wire form.  A bump orphans old checkpoints
#: (they load as absent), which is exactly the safe behaviour: re-run.
CHECKPOINT_SCHEMA_VERSION = 1


@dataclass
class UnitRecord:
    """What happened to one completed unit: an outcome or a case failure."""

    fingerprint: str
    case_id: str
    config_key: str
    #: The Table 3 outcome dict (plain JSON types) when the case evaluated.
    outcome: Optional[dict] = None
    #: The captured traceback when the case failed evaluation.
    error: Optional[str] = None
    #: Wall-clock seconds this unit took.  Informational only — the merge
    #: step must ignore it, so an interrupted-and-resumed sweep folds to
    #: the same bytes as an uninterrupted one.
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "case": self.case_id,
            "config": self.config_key,
            "outcome": self.outcome,
            "error": self.error,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "UnitRecord":
        if not isinstance(payload, dict):
            raise FleetError(
                f"expected a unit record dict, got {type(payload).__name__}"
            )
        try:
            return cls(
                fingerprint=payload["fingerprint"],
                case_id=payload["case"],
                config_key=payload["config"],
                outcome=payload.get("outcome"),
                error=payload.get("error"),
                duration=payload.get("duration", 0.0),
            )
        except KeyError as exc:
            raise FleetError(f"unit record is missing {exc}") from exc


@dataclass
class ShardCheckpoint:
    """Every completed unit of one shard, keyed by unit fingerprint."""

    plan_id: str
    shard: int
    entries: Dict[str, UnitRecord] = field(default_factory=dict)

    def record(self, record: UnitRecord) -> None:
        self.entries[record.fingerprint] = record

    def to_dict(self) -> dict:
        return {
            "kind": "fleet_checkpoint",
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "plan_id": self.plan_id,
            "shard": self.shard,
            "entries": {
                fingerprint: record.to_dict()
                for fingerprint, record in sorted(self.entries.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardCheckpoint":
        if not isinstance(payload, dict):
            raise FleetError(
                f"expected a checkpoint dict, got {type(payload).__name__}"
            )
        if payload.get("kind") != "fleet_checkpoint":
            raise FleetError(
                f"expected a fleet_checkpoint payload, got kind "
                f"{payload.get('kind')!r}"
            )
        if payload.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            raise FleetError(
                f"checkpoint schema version {payload.get('schema_version')!r} "
                f"(this build speaks {CHECKPOINT_SCHEMA_VERSION})"
            )
        entries_payload = payload.get("entries")
        if not isinstance(entries_payload, dict):
            raise FleetError("checkpoint has no entries mapping")
        entries = {}
        for fingerprint, record_payload in entries_payload.items():
            record = UnitRecord.from_dict(record_payload)
            if record.fingerprint != fingerprint:
                raise FleetError(
                    f"checkpoint entry keyed {fingerprint!r} states "
                    f"fingerprint {record.fingerprint!r}"
                )
            entries[fingerprint] = record
        try:
            return cls(
                plan_id=payload["plan_id"],
                shard=payload["shard"],
                entries=entries,
            )
        except KeyError as exc:
            raise FleetError(f"checkpoint is missing {exc}") from exc


def checkpoint_path(directory: Union[str, Path], shard: int) -> Path:
    return Path(directory) / f"shard-{shard:04d}.checkpoint.json"


def store_checkpoint(directory: Union[str, Path], checkpoint: ShardCheckpoint) -> Path:
    """Atomically (re)write a shard's checkpoint file.

    The temp file lives in the target directory so :func:`os.replace` is a
    same-filesystem rename; the payload is flushed and fsynced first, so a
    crash immediately after the replace cannot surface a half-written file.
    """
    path = checkpoint_path(directory, checkpoint.shard)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    payload = json.dumps(checkpoint.to_dict(), indent=2, sort_keys=True) + "\n"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(
    directory: Union[str, Path], plan_id: str, shard: int
) -> Tuple[ShardCheckpoint, str]:
    """Load a shard's checkpoint, treating anything unusable as absent.

    Returns ``(checkpoint, reason)``: a fresh empty checkpoint and a
    human-readable reason whenever the on-disk file was missing, corrupt,
    or written for a different plan/shard/schema — the resume then simply
    re-runs everything, which is always safe.
    """
    path = checkpoint_path(directory, shard)
    fresh = ShardCheckpoint(plan_id=plan_id, shard=shard)
    if not path.exists():
        return fresh, ""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        checkpoint = ShardCheckpoint.from_dict(payload)
    except (OSError, ValueError, FleetError) as exc:
        return fresh, f"ignoring unusable checkpoint {path.name}: {exc}"
    if checkpoint.plan_id != plan_id:
        return fresh, (
            f"ignoring checkpoint {path.name}: written for plan "
            f"{checkpoint.plan_id!r}, this sweep is plan {plan_id!r}"
        )
    if checkpoint.shard != shard:
        return fresh, (
            f"ignoring checkpoint {path.name}: records shard "
            f"{checkpoint.shard}, expected {shard}"
        )
    return checkpoint, ""


__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "ShardCheckpoint",
    "UnitRecord",
    "checkpoint_path",
    "load_checkpoint",
    "store_checkpoint",
]
