"""``python -m repro.evaluation.fleet`` — the fleet-evaluation CLI.

Four subcommands, one per pipeline stage::

    plan    enumerate the case x configuration matrix into shards
    run     execute one shard, checkpointing after every unit (resumable)
    merge   fold shard checkpoints into the canonical sweep artifact
    report  render the static HTML trend dashboard

Exit codes follow :mod:`repro.evaluation.exitcodes`: 0 green, 1 for
infrastructure errors (retry the leg), 2 for bad usage, 3 when cases
failed evaluation (a red *result*), 4 when a run or merge stopped short of
full coverage (resume to finish).
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path
from typing import List, Optional, Sequence

from repro.evaluation.exitcodes import (
    EXIT_CASES_FAILED,
    EXIT_INCOMPLETE,
    EXIT_INFRA,
    EXIT_OK,
)
from repro.evaluation.fleet.merge import (
    artifact_json,
    collect_checkpoints,
    load_artifact,
    merge_checkpoints,
)
from repro.evaluation.fleet.plan import (
    EvaluationPlan,
    FleetError,
    SweepConfiguration,
    build_plan,
)
from repro.evaluation.fleet.report import (
    bench_reference_entry,
    load_bench_history,
    render_report,
)
from repro.evaluation.fleet.runner import ShardRunner

PROG = "python -m repro.evaluation.fleet"


def _load_plan(path: str) -> EvaluationPlan:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise FleetError(f"cannot read plan {path}: {exc}") from exc
    return EvaluationPlan.from_dict(payload)


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------
def _cmd_plan(args: argparse.Namespace) -> int:
    configurations = [
        SweepConfiguration(
            simulation_scope=scope,
            memory_model=memory_model,
            arch_flag=args.arch_flag,
            sample_period=args.sample_period,
            simulator_backend=args.simulator_backend,
        )
        for scope in args.scopes
        for memory_model in args.memory_models
    ]
    plan = build_plan(
        case_ids=args.cases or None,
        configurations=configurations,
        num_shards=args.shards,
        limit=args.limit,
    )
    Path(args.out).write_text(plan.to_json(), encoding="utf-8")
    matrix = {"include": plan.matrix_include()}
    if args.matrix is not None:
        text = json.dumps(matrix, separators=(",", ":")) + "\n"
        if args.matrix == "-":
            sys.stdout.write(text)
        else:
            Path(args.matrix).write_text(text, encoding="utf-8")
    loaded = [leg["shard"] for leg in matrix["include"]]
    print(
        f"plan {plan.plan_id}: {len(plan.units())} units "
        f"({len(plan.case_ids)} cases x {len(plan.configurations)} configs) "
        f"across {len(loaded)} of {plan.num_shards} shards -> {args.out}",
        file=sys.stderr,
    )
    return EXIT_OK


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    plan = _load_plan(args.plan)
    advisor = None
    if args.via_service:
        from repro.service import ServiceClient

        advisor = ServiceClient(
            args.via_service, timeout=args.service_timeout, token=args.token
        )

    def progress(event) -> None:
        if event.status == "start":
            return
        status = "ok" if event.status == "done" else "FAILED"
        print(
            f"  [{event.index + 1}/{event.total}] {event.step:60s} "
            f"{status} ({event.duration:.2f}s)",
            file=sys.stderr,
            flush=True,
        )

    runner = ShardRunner(
        plan,
        args.shard,
        args.checkpoint_dir,
        advisor=advisor,
        cache_dir=args.cache_dir,
        stop_after=args.stop_after,
        kill_after=args.kill_after,
        progress=progress,
    )
    summary = runner.run()
    if summary.resume_note:
        print(summary.resume_note, file=sys.stderr)
    if summary.skipped:
        print(
            f"resuming: {summary.skipped} of {summary.total} unit(s) already "
            f"checkpointed",
            file=sys.stderr,
        )
    print(
        f"shard {args.shard}/{plan.num_shards}: {summary.total} unit(s), "
        f"skipped {summary.skipped}, executed {summary.executed}, "
        f"failed {len(summary.failed)}"
        + (" [interrupted]" if summary.interrupted else ""),
        file=sys.stderr,
    )
    if summary.interrupted:
        return EXIT_INCOMPLETE
    if summary.failed:
        print(
            f"{len(summary.failed)} case(s) failed: "
            + ", ".join(summary.failed),
            file=sys.stderr,
        )
        return EXIT_CASES_FAILED
    return EXIT_OK


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
def _cmd_merge(args: argparse.Namespace) -> int:
    plan = _load_plan(args.plan)
    checkpoints, notes = collect_checkpoints(args.checkpoint_dir, plan)
    outcome = merge_checkpoints(plan, checkpoints, notes=notes)
    for note in outcome.notes:
        print(note, file=sys.stderr)
    if not outcome.complete and not args.allow_incomplete:
        print(
            f"merge incomplete: {len(outcome.missing)} of "
            f"{len(plan.units())} unit(s) have no checkpoint entry "
            f"(first missing: {outcome.missing[0]}); resume the shards or "
            f"pass --allow-incomplete",
            file=sys.stderr,
        )
        return EXIT_INCOMPLETE
    Path(args.out).write_text(artifact_json(outcome.artifact), encoding="utf-8")
    for config in outcome.artifact["configurations"]:
        print(
            f"  {config['key']:40s} ok={config['cases_ok']:3d} "
            f"failed={config['cases_failed']:2d} "
            f"geomean_error={config['geomean_error'] * 100:6.1f}%",
            file=sys.stderr,
        )
    print(
        f"merged {len(plan.units()) - len(outcome.missing)} of "
        f"{len(plan.units())} unit(s) -> {args.out}",
        file=sys.stderr,
    )
    if outcome.failures:
        print(f"{outcome.failures} case(s) failed", file=sys.stderr)
        return EXIT_CASES_FAILED
    if not outcome.complete:
        return EXIT_INCOMPLETE
    return EXIT_OK


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def _cmd_report(args: argparse.Namespace) -> int:
    paths: List[Path] = [Path(path) for path in args.artifacts]
    if args.sweep_dir:
        paths.extend(sorted(Path(args.sweep_dir).glob("*.json")))
    sweeps = []
    for path in paths:
        try:
            artifact = load_artifact(path)
        except FleetError as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        sweeps.append((path.stem, artifact))

    history = []
    if args.bench_history:
        history = load_bench_history(args.bench_history)
    if not history and args.bench:
        try:
            reference = json.loads(Path(args.bench).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"skipping bench reference {args.bench}: {exc}", file=sys.stderr)
        else:
            entry = bench_reference_entry(reference)
            if entry is not None:
                history = [entry]

    page = render_report(sweeps, history, generated=args.generated)
    Path(args.out).write_text(page, encoding="utf-8")
    print(
        f"dashboard: {len(sweeps)} sweep(s), {len(history)} benchmark "
        f"point(s) -> {args.out}",
        file=sys.stderr,
    )
    return EXIT_OK


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from repro.sampling.memory import MEMORY_MODELS
    from repro.sampling.profiler import SIMULATION_SCOPES
    from repro.sampling.vector import SIMULATOR_BACKENDS

    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Sharded, resumable fleet evaluation of the benchmark registry.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser(
        "plan", help="enumerate the case x configuration matrix into shards"
    )
    plan.add_argument("--shards", type=int, default=1, metavar="N",
                      help="number of shards to partition into (default 1)")
    plan.add_argument("--case", dest="cases", action="append", default=[],
                      metavar="CASE", help="registry case id (repeatable; "
                      "default: the whole registry)")
    plan.add_argument("--limit", type=int, default=None, metavar="N",
                      help="only plan the first N cases")
    plan.add_argument("--scope", dest="scopes", action="append",
                      choices=SIMULATION_SCOPES, default=None, metavar="SCOPE",
                      help="simulation scope axis (repeatable; default single_wave)")
    plan.add_argument("--memory-model", dest="memory_models", action="append",
                      choices=MEMORY_MODELS, default=None, metavar="MODEL",
                      help="memory model axis (repeatable; default flat)")
    plan.add_argument("--arch", dest="arch_flag", default="sm_70",
                      help="architecture model (default sm_70)")
    plan.add_argument("--sample-period", type=int, default=8)
    plan.add_argument("--simulator-backend", default=None,
                      choices=SIMULATOR_BACKENDS, metavar="BACKEND")
    plan.add_argument("--out", default="fleet-plan.json", metavar="PATH",
                      help="where to write the plan (default fleet-plan.json)")
    plan.add_argument("--matrix", default=None, metavar="PATH",
                      help="also emit the GitHub Actions matrix include-list "
                      "('-' = stdout)")
    plan.set_defaults(func=_cmd_plan)

    run = commands.add_parser(
        "run", help="execute one shard, checkpointing after every unit"
    )
    run.add_argument("--plan", required=True, metavar="PATH")
    run.add_argument("--shard", type=int, required=True, metavar="N")
    run.add_argument("--checkpoint-dir", required=True, metavar="DIR")
    run.add_argument("--cache-dir", default=None, metavar="PATH",
                     help="profile cache for the inline session")
    run.add_argument("--via-service", default=None, metavar="URL",
                     help="run through an advising daemon instead of inline")
    run.add_argument("--token", default=None, metavar="TOKEN",
                     help="bearer token for --via-service")
    run.add_argument("--service-timeout", type=float, default=600.0,
                     metavar="SECONDS")
    run.add_argument("--stop-after", type=int, default=None, metavar="N",
                     help="stop (exit 4) after N newly executed units")
    run.add_argument("--kill-after", type=int, default=None, metavar="N",
                     help="fault injection: SIGKILL this process after N "
                     "newly executed units (tests the resume contract)")
    run.set_defaults(func=_cmd_run)

    merge = commands.add_parser(
        "merge", help="fold shard checkpoints into the canonical sweep artifact"
    )
    merge.add_argument("--plan", required=True, metavar="PATH")
    merge.add_argument("--checkpoint-dir", required=True, metavar="DIR")
    merge.add_argument("--out", default="fleet-sweep.json", metavar="PATH")
    merge.add_argument("--allow-incomplete", action="store_true",
                       help="fold whatever coverage exists instead of "
                       "requiring every unit (artifact records the gaps)")
    merge.set_defaults(func=_cmd_merge)

    report = commands.add_parser(
        "report", help="render the static HTML trend dashboard"
    )
    report.add_argument("--artifact", dest="artifacts", action="append",
                        default=[], metavar="PATH",
                        help="sweep artifact (repeatable, oldest first)")
    report.add_argument("--sweep-dir", default=None, metavar="DIR",
                        help="directory of sweep artifacts, read in name order")
    report.add_argument("--bench", default=None, metavar="PATH",
                        help="committed BENCH_simulator.json (single-point "
                        "fallback when no history exists)")
    report.add_argument("--bench-history", default=None, metavar="PATH",
                        help="BENCH_history.jsonl appended by the regression gate")
    report.add_argument("--generated", default="", metavar="STAMP",
                        help="free-form timestamp shown in the page header")
    report.add_argument("--out", default="fleet-report.html", metavar="PATH")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "plan":
        if args.shards < 1:
            parser.error("--shards must be at least 1")
        if args.sample_period <= 0:
            parser.error("--sample-period must be positive")
        if args.limit is not None and args.limit < 1:
            parser.error("--limit must be at least 1")
        args.scopes = args.scopes or ["single_wave"]
        args.memory_models = args.memory_models or ["flat"]
    if args.command == "run":
        if args.stop_after is not None and args.stop_after < 1:
            parser.error("--stop-after must be at least 1")
        if args.kill_after is not None and args.kill_after < 1:
            parser.error("--kill-after must be at least 1")
        if args.token is not None and not args.via_service:
            parser.error("--token requires --via-service")
    if args.command == "report" and not args.artifacts and not args.sweep_dir:
        parser.error("report needs --artifact and/or --sweep-dir")
    try:
        return args.func(args)
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INFRA
    except Exception:
        traceback.print_exc()
        return EXIT_INFRA


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
