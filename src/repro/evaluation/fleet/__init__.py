"""Sharded, resumable fleet evaluation of the benchmark registry.

The fleet subsystem scales the Table 3 sweep from one serial CI job to a
checkpointed shard matrix:

* :mod:`repro.evaluation.fleet.plan` — :class:`EvaluationPlan` enumerates
  the case x configuration matrix into deterministic shards (stable unit
  fingerprints digesting case label + knobs);
* :mod:`repro.evaluation.fleet.runner` — :class:`ShardRunner` executes one
  shard through anything satisfying the :class:`~repro.api.advisor
  .Advisor` protocol (inline session or service client), writing an atomic
  per-unit checkpoint so a killed sweep resumes instead of restarting;
* :mod:`repro.evaluation.fleet.merge` — folds shard checkpoints into one
  canonical sweep artifact (per-configuration error geomeans, failure
  ledger) that is byte-identical however the sweep was partitioned or
  interrupted;
* :mod:`repro.evaluation.fleet.report` — renders the artifact history and
  the benchmark trajectory into a static, stdlib-only HTML dashboard.

CLI: ``python -m repro.evaluation.fleet plan|run|merge|report`` (see
``docs/EVALUATION.md``).
"""

from repro.evaluation.fleet.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    ShardCheckpoint,
    UnitRecord,
    checkpoint_path,
    load_checkpoint,
    store_checkpoint,
)
from repro.evaluation.fleet.merge import (
    SWEEP_SCHEMA_VERSION,
    MergeOutcome,
    artifact_json,
    collect_checkpoints,
    load_artifact,
    merge_checkpoints,
)
from repro.evaluation.fleet.plan import (
    FLEET_FINGERPRINT_VERSION,
    PLAN_SCHEMA_VERSION,
    EvaluationPlan,
    FleetError,
    SweepConfiguration,
    WorkUnit,
    build_plan,
)
from repro.evaluation.fleet.report import render_report
from repro.evaluation.fleet.runner import (
    CaseFailure,
    ShardRunner,
    ShardRunSummary,
    evaluate_unit,
    unit_request,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "FLEET_FINGERPRINT_VERSION",
    "PLAN_SCHEMA_VERSION",
    "SWEEP_SCHEMA_VERSION",
    "CaseFailure",
    "EvaluationPlan",
    "FleetError",
    "MergeOutcome",
    "ShardCheckpoint",
    "ShardRunSummary",
    "ShardRunner",
    "SweepConfiguration",
    "UnitRecord",
    "WorkUnit",
    "artifact_json",
    "build_plan",
    "checkpoint_path",
    "collect_checkpoints",
    "evaluate_unit",
    "load_artifact",
    "load_checkpoint",
    "merge_checkpoints",
    "render_report",
    "store_checkpoint",
    "unit_request",
]
