"""Exit codes shared by the evaluation CLIs.

A scheduled sweep needs to distinguish *why* a leg went red: a case that
failed evaluation is a result (re-running the leg reproduces it; the sweep
is complete but not green), while an infrastructure error — a dead daemon,
an unreadable plan, a lost checkpoint directory — is retryable.  The fleet
shard matrix keys its retry policy off these codes, so they are defined
once and used by both ``python -m repro.evaluation.table3`` and
``python -m repro.evaluation.fleet``.

``EXIT_USAGE`` matches :mod:`argparse`'s own convention for bad command
lines; the other codes are disjoint from it by construction.
"""

#: Everything ran and every case passed.
EXIT_OK = 0
#: An infrastructure error: the harness itself failed before or between
#: cases (bad plan file, unreachable service, checkpoint I/O).  Retryable.
EXIT_INFRA = 1
#: Bad command line (argparse's convention).
EXIT_USAGE = 2
#: The sweep itself completed, but one or more cases failed evaluation and
#: are recorded in the failure ledger.  Re-running will not change this.
EXIT_CASES_FAILED = 3
#: The run stopped before covering every planned unit (``--stop-after``
#: preemption, or a merge over incomplete checkpoints).  Resume to finish.
EXIT_INCOMPLETE = 4

__all__ = [
    "EXIT_OK",
    "EXIT_INFRA",
    "EXIT_USAGE",
    "EXIT_CASES_FAILED",
    "EXIT_INCOMPLETE",
]
