"""repro — a reproduction of *GPA: A GPU Performance Advisor Based on
Instruction Sampling* (Zhou, Meng, Sai, Mellor-Crummey — CGO 2021).

The package is organised as the paper's Figure 2:

* :mod:`repro.isa`, :mod:`repro.cubin`, :mod:`repro.cfg`,
  :mod:`repro.structure`, :mod:`repro.arch` — the static side: a SASS-like
  ISA, CUBIN-like binaries, control flow / loop analysis, program structure
  and architectural features;
* :mod:`repro.sampling` — the CUPTI/V100 substitute: an SM-level execution
  simulator that produces PC samples and launch statistics;
* :mod:`repro.blame`, :mod:`repro.optimizers`, :mod:`repro.estimators` — the
  dynamic analyzer: the instruction blamer, the Table 2 optimizers and the
  Equation 2-10 estimators;
* :mod:`repro.advisor` — the GPA facade, report generator and CLI;
* :mod:`repro.pipeline` — the staged advising pipeline: explicit
  profile/analyze stages, the on-disk profile cache, the process-parallel
  :class:`~repro.pipeline.batch.BatchAdvisor` and the plan/execute runner
  that every sweep (CLI ``--all``, Table 3, Figure 7) drives;
* :mod:`repro.workloads`, :mod:`repro.evaluation` — the synthetic Rodinia /
  application kernels and the harness that regenerates Table 3 and Figures
  1 and 7.

* :mod:`repro.api` — the versioned service-layer API: declarative
  :class:`~repro.api.request.AdvisingRequest` objects, the
  :class:`~repro.api.session.AdvisingSession` that executes them (inline,
  ordered batch, or streamed from a process pool), and lossless
  request/result serialization under an explicit schema version;
* :mod:`repro.service` — the persistent advising daemon: a bounded job
  queue with backpressure, a TTL-evicting job store, a versioned
  JSON-over-HTTP protocol (``gpa-advise serve``) and the
  :class:`~repro.service.client.ServiceClient` whose results are
  bit-identical to inline advising.

Quickstart::

    from repro import AdvisingRequest, AdvisingSession, render_report

    session = AdvisingSession(sample_period=8)
    request = AdvisingRequest.builder().case("rodinia/hotspot:strength_reduction").build()
    print(render_report(session.report_for(request)))

Batch sweeps (with caching and process parallelism) stream through the same
session::

    session = AdvisingSession(jobs=4, cache=".gpa-cache")
    requests = [AdvisingRequest.builder().case(name).build()
                for name in ("rodinia/bfs:loop_unrolling", "rodinia/nw:block_increase")]
    for result in session.stream(requests):   # typed results, completion order
        print(result.label, result.ok, f"{result.duration:.2f}s")
"""

from repro.advisor.advisor import GPA
from repro.advisor.report import AdviceReport, render_report
from repro.api.advisor import Advisor
from repro.api.request import AdvisingRequest, RequestBuilder, request_for_case
from repro.api.result import AdvisingResult
from repro.api.schema import API_SCHEMA_VERSION
from repro.api.session import AdvisingSession
from repro.arch.machine import GpuArchitecture, VoltaV100, get_architecture
from repro.pipeline.batch import BatchAdvisor, BatchConfig, BatchResult
from repro.pipeline.cache import ProfileCache, profile_cache_key
from repro.pipeline.stages import AnalyzeStage, ProfileRequest, ProfileStage
from repro.blame.attribution import BlameResult, InstructionBlamer
from repro.cubin.binary import Cubin, Function, FunctionVisibility
from repro.cubin.builder import CubinBuilder, KernelBuilder
from repro.optimizers.base import OptimizationAdvice, Optimizer, OptimizerCategory
from repro.optimizers.registry import OptimizerRegistry, default_optimizers
from repro.sampling.gpu import GpuSimulationResult, GpuSimulator
from repro.sampling.memory import MEMORY_MODELS, MemoryStatistics
from repro.sampling.profiler import SIMULATION_SCOPES, ProfiledKernel, Profiler
from repro.sampling.sample import KernelProfile, LaunchConfig, LaunchStatistics
from repro.sampling.stall_reasons import DetailedStallReason, StallReason
from repro.sampling.workload import WorkloadSpec
from repro.service.auth import AuthPolicy, TokenBucket
from repro.service.client import ServiceClient
from repro.service.daemon import AdvisingDaemon, ServiceConfig
from repro.service.repository import JobRepository
from repro.staticcheck.engine import StaticChecker
from repro.staticcheck.report import StaticDiagnostic, StaticReport, render_static_report
from repro.structure.program import ProgramStructure, build_program_structure

__version__ = "1.7.0"

__all__ = [
    "API_SCHEMA_VERSION",
    "AdviceReport",
    "Advisor",
    "AdvisingDaemon",
    "AdvisingRequest",
    "AdvisingResult",
    "AdvisingSession",
    "AnalyzeStage",
    "AuthPolicy",
    "BatchAdvisor",
    "BatchConfig",
    "BatchResult",
    "BlameResult",
    "Cubin",
    "CubinBuilder",
    "DetailedStallReason",
    "Function",
    "FunctionVisibility",
    "GPA",
    "GpuArchitecture",
    "GpuSimulationResult",
    "GpuSimulator",
    "InstructionBlamer",
    "JobRepository",
    "KernelBuilder",
    "KernelProfile",
    "LaunchConfig",
    "LaunchStatistics",
    "OptimizationAdvice",
    "Optimizer",
    "OptimizerCategory",
    "OptimizerRegistry",
    "ProfileCache",
    "ProfileRequest",
    "ProfileStage",
    "ProfiledKernel",
    "Profiler",
    "ProgramStructure",
    "RequestBuilder",
    "ServiceClient",
    "ServiceConfig",
    "MEMORY_MODELS",
    "MemoryStatistics",
    "SIMULATION_SCOPES",
    "profile_cache_key",
    "request_for_case",
    "StallReason",
    "StaticChecker",
    "TokenBucket",
    "StaticDiagnostic",
    "StaticReport",
    "VoltaV100",
    "WorkloadSpec",
    "build_program_structure",
    "default_optimizers",
    "get_architecture",
    "render_report",
    "render_static_report",
    "__version__",
]
