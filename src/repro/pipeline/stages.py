"""The profile → analyze stage decomposition.

``GPA.advise`` is a two-stage pipeline; these classes make the stages
explicit, typed units:

* :class:`ProfileStage` turns a :class:`ProfileRequest` (binary, kernel,
  launch config, workload) into a
  :class:`~repro.sampling.profiler.ProfiledKernel`, consulting an optional
  :class:`~repro.pipeline.cache.ProfileCache` first — a hit rebuilds the
  program structure from the binary and recomputes occupancy (both cheap
  and deterministic) without invoking the simulator at all;
* :class:`AnalyzeStage` turns an :class:`AnalyzeRequest` (profile +
  structure) into an :class:`~repro.advisor.report.AdviceReport`.

The stages carry no per-run state, so one instance can serve a whole sweep,
and each stage can be run on its own (offline analysis of dumped profiles is
just :class:`AnalyzeStage` without :class:`ProfileStage`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Union

from repro.advisor.dynamic_analyzer import DynamicAnalyzer
from repro.advisor.report import AdviceReport
from repro.arch.machine import GpuArchitecture, get_architecture
from repro.cubin.binary import Cubin
from repro.optimizers.base import Optimizer
from repro.pipeline.cache import ProfileCache, coerce_cache, profile_cache_key
from repro.sampling.profiler import ProfiledKernel, Profiler
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import ProgramStructure, build_program_structure


@dataclass(frozen=True)
class ProfileRequest:
    """Typed input of :class:`ProfileStage`: one kernel launch to profile."""

    cubin: Cubin
    kernel: str
    config: LaunchConfig
    workload: Optional[WorkloadSpec] = None


@dataclass(frozen=True)
class AnalyzeRequest:
    """Typed input of :class:`AnalyzeStage`: a profile and its structure."""

    profile: KernelProfile
    structure: ProgramStructure


def retarget(cubin: Cubin, arch_flag: str) -> Cubin:
    """``cubin`` re-labelled for ``arch_flag`` ("recompile" for another GPU).

    The simulator picks its machine model from the binary's architecture
    flag, so sweeping the same synthetic kernels on a different registered
    architecture is just a flag rewrite (functions are shared, not copied).
    Raises :class:`~repro.arch.machine.ArchitectureError` for unknown flags.
    """
    if cubin.arch_flag == arch_flag:
        return cubin
    get_architecture(arch_flag)
    return replace(cubin, arch_flag=arch_flag, functions=dict(cubin.functions))


class ProfileStage:
    """The profiling stage: simulate a launch, or replay it from the cache."""

    name = "profile"

    def __init__(
        self,
        architecture: Optional[GpuArchitecture] = None,
        sample_period: int = 32,
        cache: Union[None, str, ProfileCache] = None,
        profiler: Optional[Profiler] = None,
        simulation_scope: str = "single_wave",
        memory_model: str = "flat",
        simulator_backend: Optional[str] = None,
    ):
        self.profiler = profiler or Profiler(
            architecture, sample_period=sample_period,
            simulation_scope=simulation_scope, memory_model=memory_model,
            simulator_backend=simulator_backend,
        )
        self.cache = coerce_cache(cache)

    @property
    def architecture(self) -> GpuArchitecture:
        return self.profiler.architecture

    @property
    def sample_period(self) -> int:
        return self.profiler.sample_period

    @property
    def simulation_scope(self) -> str:
        return self.profiler.simulation_scope

    @property
    def memory_model(self) -> str:
        return self.profiler.memory_model

    @property
    def simulator_backend(self) -> str:
        return self.profiler.simulator_backend

    # ------------------------------------------------------------------
    def cache_key(self, request: ProfileRequest) -> str:
        """The cache key this stage uses for ``request``."""
        return profile_cache_key(
            request.cubin,
            request.kernel,
            request.config,
            request.workload or WorkloadSpec(),
            self.profiler._architecture_for(request.cubin),
            self.profiler.sample_period,
            max_cycles=self.profiler.max_cycles,
            simulation_scope=self.profiler.simulation_scope,
            memory_model=self.profiler.memory_model,
            simulator_backend=self.profiler.simulator_backend,
        )

    def run(self, request: ProfileRequest) -> ProfiledKernel:
        """Profile the requested launch, consulting the cache first.

        A profiler configured with ``keep_samples=True`` wants the raw
        per-cycle samples, which only the simulator produces — replays carry
        ``simulation=None`` — so such a stage never reads the cache (it still
        writes, since the aggregated profile is identical either way).
        """
        key = None
        store = False
        if self.cache is not None:
            key = self.cache_key(request)
            if self.profiler.keep_samples:
                # Still simulate every time, but don't rewrite an identical
                # entry on every run of a sample-keeping sweep.
                store = key not in self.cache
            else:
                cached = self.cache.get(key)
                if cached is not None:
                    return self._replay(request, cached)
                store = True

        profiled = self.profiler.profile(
            request.cubin, request.kernel, request.config, request.workload
        )
        if store:
            self.cache.put(key, profiled.profile)
        return profiled

    def _replay(self, request: ProfileRequest, profile: KernelProfile) -> ProfiledKernel:
        """Rebuild a :class:`ProfiledKernel` around a cached profile.

        Structure recovery and the occupancy calculation are deterministic
        static analyses; only the simulation itself is skipped (and its raw
        :class:`~repro.sampling.simulator.SimulationResult` is absent).
        """
        workload = request.workload or WorkloadSpec()
        structure = build_program_structure(request.cubin)
        occupancy = self.profiler.occupancy_for(request.cubin, request.kernel, request.config)
        return ProfiledKernel(
            kernel=request.kernel,
            profile=profile,
            structure=structure,
            cubin=request.cubin,
            config=request.config,
            workload=workload,
            occupancy=occupancy,
            simulation=None,
        )


class AnalyzeStage:
    """The analysis stage: blame, match optimizers, estimate, rank."""

    name = "analyze"

    def __init__(
        self,
        architecture: Optional[GpuArchitecture] = None,
        optimizers: Optional[Iterable[Optimizer]] = None,
        analyzer: Optional[DynamicAnalyzer] = None,
    ):
        self.analyzer = analyzer or DynamicAnalyzer(architecture, optimizers)

    @property
    def architecture(self) -> GpuArchitecture:
        return self.analyzer.architecture

    def run(self, request: AnalyzeRequest) -> AdviceReport:
        return self.analyzer.analyze(request.profile, request.structure)
