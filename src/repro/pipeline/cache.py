"""On-disk profile cache.

Profiling is by far the expensive half of the pipeline (the simulator walks
per-warp traces cycle by cycle), yet every harness re-simulates launches it
has seen before: Table 3 profiles each case twice, Figure 7 profiles the same
baselines again, and a second run of either starts from zero.  The cache
stores each :class:`~repro.sampling.sample.KernelProfile` as JSON under a key
that digests *everything the simulation depends on*:

* the binary (encoded code sections, line tables, inline info, resources),
* the kernel symbol and the launch configuration,
* the workload specification — including callable trip counts, which are
  digested through their code objects so two different lambdas never share
  a key,
* the architecture model (all hardware limits and latency overrides), and
* the PC sampling period.

Changing any of these misses; repeating a run hits and skips the simulator.
Writes go through a temporary file and :func:`os.replace` so concurrent
worker processes never observe a torn entry.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import types
from dataclasses import fields
from pathlib import Path
from typing import Optional, Union

from repro.arch.machine import GpuArchitecture
from repro.cubin.binary import Cubin
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.workload import WorkloadSpec

#: Bump when the digest scheme or the profile JSON schema changes shape.
CACHE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Stable value descriptions (the digest input)
# ----------------------------------------------------------------------
def _describe(value) -> str:
    """A deterministic, recursive textual description of ``value``.

    Callables (workload trip counts may be lambdas) are described by
    everything their behaviour depends on — bytecode, constants (including
    nested code objects), closure values and argument defaults — so
    behaviourally different callables digest differently while reloading
    the same module digests identically.  ``repr`` is never used on objects
    whose repr embeds a memory address, which would break cache hits across
    interpreter runs.
    """
    if isinstance(value, types.CodeType):
        consts = ",".join(_describe(const) for const in value.co_consts)
        return f"code:{value.co_name}:{value.co_code.hex()}:[{consts}]"
    if isinstance(value, functools.partial):
        return (
            f"partial:{_describe(value.func)}"
            f":{_describe(tuple(value.args))}:{_describe(dict(value.keywords))}"
        )
    if callable(value):
        code = getattr(value, "__code__", None)
        if code is None:
            return f"callable:{value!r}"
        closure = getattr(value, "__closure__", None) or ()
        cells = ",".join(_describe(cell.cell_contents) for cell in closure)
        defaults = _describe(tuple(getattr(value, "__defaults__", None) or ()))
        kwdefaults = _describe(dict(getattr(value, "__kwdefaults__", None) or {}))
        return (
            f"callable:{getattr(value, '__qualname__', '?')}"
            f":{_describe(code)}:[{cells}]:{defaults}:{kwdefaults}"
        )
    if isinstance(value, dict):
        items = ",".join(
            f"{_describe(key)}={_describe(value[key])}"
            for key in sorted(value, key=repr)
        )
        return "{" + items + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_describe(item) for item in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_describe(item) for item in value) + "]"
    return repr(value)


def _describe_workload(workload: WorkloadSpec) -> str:
    parts = [
        f"{field.name}={_describe(getattr(workload, field.name))}"
        for field in sorted(fields(workload), key=lambda field: field.name)
    ]
    return "workload(" + ";".join(parts) + ")"


def _describe_architecture(architecture: GpuArchitecture) -> str:
    parts = [
        f"{field.name}={_describe(getattr(architecture, field.name))}"
        for field in sorted(fields(architecture), key=lambda field: field.name)
    ]
    return "arch(" + ";".join(parts) + ")"


def profile_cache_key(
    cubin: Cubin,
    kernel_name: str,
    config: LaunchConfig,
    workload: WorkloadSpec,
    architecture: GpuArchitecture,
    sample_period: int,
) -> str:
    """The cache key of one simulated kernel launch."""
    hasher = hashlib.sha256()
    for token in (
        f"v{CACHE_SCHEMA_VERSION}",
        json.dumps(cubin.to_dict(), sort_keys=True),
        kernel_name,
        f"grid={config.grid_blocks};tpb={config.threads_per_block};"
        f"smem={config.shared_memory_bytes}",
        _describe_workload(workload),
        _describe_architecture(architecture),
        f"period={sample_period}",
    ):
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class ProfileCache:
    """A directory of cached kernel profiles, one JSON file per key."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.profile.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> Optional[KernelProfile]:
        """The cached profile for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            profile = KernelProfile.from_json(text)
        except (ValueError, KeyError):
            # A torn or stale entry: treat as a miss and let the writer
            # replace it.
            self.misses += 1
            return None
        self.hits += 1
        return profile

    def put(self, key: str, profile: KernelProfile) -> Path:
        """Store ``profile`` under ``key`` (atomic, last writer wins)."""
        path = self.path_for(key)
        handle, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(profile.to_json())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.profile.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.profile.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProfileCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def coerce_cache(cache: Union[None, str, Path, ProfileCache]) -> Optional[ProfileCache]:
    """Accept a cache instance or a directory path (or ``None``)."""
    if cache is None or isinstance(cache, ProfileCache):
        return cache
    return ProfileCache(cache)
