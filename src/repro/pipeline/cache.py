"""On-disk profile cache.

Profiling is by far the expensive half of the pipeline (the simulator walks
per-warp traces cycle by cycle), yet every harness re-simulates launches it
has seen before: Table 3 profiles each case twice, Figure 7 profiles the same
baselines again, and a second run of either starts from zero.  The cache
stores each :class:`~repro.sampling.sample.KernelProfile` as JSON under a key
that digests *everything the simulation depends on*:

* the binary (encoded code sections, line tables, inline info, resources),
* the kernel symbol and the launch configuration,
* the workload specification — including callable trip counts, which are
  digested through their code objects (bytecode, referenced names, constants,
  closures, defaults) so behaviourally different lambdas digest differently,
* the architecture model (all hardware limits and latency overrides),
* the PC sampling period,
* the simulation cycle bound (``max_cycles``), so a truncated simulation is
  never replayed as a full one, and
* the simulation scope, so a cached single-wave profile never replays as a
  whole-GPU one (or vice versa), and
* the resolved simulator backend (object vs. vector core), so every cached
  profile witnesses the core implementation that produced it.

Changing any of these misses; repeating a run hits and skips the simulator.
Writes go through a temporary file and :func:`os.replace` so concurrent
worker processes never observe a torn entry, and every *mutation* (store,
invalidate, clear) additionally holds a :class:`CacheLock` — an advisory
``flock`` on ``<dir>/.cache.lock`` — so one cache directory is safe to
share between multiple daemons on a host, not just between the worker
processes of one daemon.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import threading
import types
from dataclasses import fields
from pathlib import Path
from typing import Optional, Union

try:  # pragma: no cover - present on every POSIX build we target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.arch.machine import GpuArchitecture
from repro.cubin.binary import Cubin
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.simulator import DEFAULT_MAX_CYCLES
from repro.sampling.workload import WorkloadSpec

#: Bump when the digest scheme or the profile JSON schema changes shape.
#: Version 4: profiles record the memory model (flat vs hierarchy) and its
#: statistics, and the key digests the memory model, so hierarchy-on/off
#: profiles never collide.
#: Version 5: the key digests the *resolved* simulator backend ("object" or
#: "vector").  The two cores are bit-identical by contract, but a cached
#: entry must witness the core that produced it so an equivalence regression
#: can never hide behind a replay.
CACHE_SCHEMA_VERSION = 5


# ----------------------------------------------------------------------
# Stable value descriptions (the digest input)
# ----------------------------------------------------------------------
def _describe_type(cls: type, seen: frozenset) -> str:
    """Digest of the behaviour a class contributes to its instances.

    Covers every attribute defined across the MRO (most-derived definition
    winning, ``object`` excluded): methods by their code, properties by their
    accessors, plain class attributes by value — so an instance used as a
    workload callable misses the cache when a helper method its ``__call__``
    delegates to is edited, not only when ``__call__`` itself changes.
    """
    ignored = {
        "__dict__",
        "__weakref__",
        "__doc__",
        "__module__",
        "__qualname__",
        "__annotations__",
        "__firstlineno__",
        "__static_attributes__",
        # copyreg caches this on the class as a side effect of pickling an
        # instance, so its presence depends on digest history, not behaviour.
        "__slotnames__",
        # Field reprs embed the memory address of dataclasses.MISSING; the
        # generated __init__/__eq__ (already in vars) carry the behaviour.
        "__dataclass_fields__",
    }
    members = {}
    for klass in cls.__mro__:
        if klass is object:
            continue
        for name, attr in vars(klass).items():
            if name not in ignored and name not in members:
                members[name] = attr
    parts = []
    for name in sorted(members):
        attr = members[name]
        if isinstance(attr, (staticmethod, classmethod)):
            attr = attr.__func__
        if isinstance(attr, property):
            described = ":".join(
                _describe(getattr(attr, slot), seen)
                for slot in ("fget", "fset", "fdel")
                if getattr(attr, slot) is not None
            )
        else:
            described = _describe(attr, seen)
        parts.append(f"{name}={described}")
    return f"type:{cls.__module__}.{cls.__qualname__}(" + ";".join(parts) + ")"


def _describe_state(value, seen: frozenset) -> str:
    """A description of the state a callable's receiver contributes.

    Builtin containers and scalars (a bound ``{...}.get``, for instance) are
    described structurally — their contents *are* their state.  Other objects
    are captured through ``__reduce_ex__`` when possible, because only the
    reduce protocol sees state held at C level (``random.Random``'s seed
    state lives in the ``_random.Random`` base, invisible to ``__dict__`` and
    slots).  Objects that cannot reduce contribute their ``__dict__`` merged
    with every slot across the MRO (a class may define both, and base-class
    slots must not be dropped); objects with no visible state at all digest
    by identity — a guaranteed miss across runs, never a wrong replay.
    """
    if isinstance(value, types.ModuleType):
        # Builtin functions are "bound" to their module; its name suffices.
        return f"module:{value.__name__}"
    if value is None or isinstance(
        value, (dict, list, tuple, set, frozenset, str, bytes, bytearray,
                int, float, complex)
    ):
        return _describe(value, seen)
    try:
        reduced = value.__reduce_ex__(4)
    except Exception:
        reduced = None
    if reduced is not None:
        # __reduce_ex__ exposes state held at C level (random.Random's seed
        # lives in the _random.Random base, invisible to __dict__ and
        # slots).  Describing the reduction structurally — instead of
        # hashing raw pickle bytes — keeps sets and dicts canonical across
        # interpreter runs regardless of hash seed.
        return f"reduce:{_describe(reduced, seen)}"
    instance_dict = getattr(value, "__dict__", None)
    state = dict(instance_dict or {})
    slotted = False
    for klass in type(value).__mro__:
        slots = klass.__dict__.get("__slots__", ()) or ()
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            slotted = True
            if name not in ("__dict__", "__weakref__") and name not in state:
                state[name] = getattr(value, name, None)
    if instance_dict is None and not slotted:
        # No pickle, no __dict__, no slots: any state is held at C level
        # where we cannot see it — digest by identity, so such receivers
        # can only ever miss, never wrongly hit.
        return f"opaque:{value!r}"
    return _describe(state, seen)


def _describe(value, _seen: frozenset = frozenset()) -> str:
    """A deterministic, recursive textual description of ``value``.

    Callables (workload trip counts may be lambdas) are described by
    everything their behaviour depends on — bytecode, the names it loads
    (globals, attributes, locals, free variables), constants (including
    nested code objects), closure values and argument defaults — so
    behaviourally different callables digest differently while reloading
    the same module digests identically.  Instances defining ``__call__``
    (and bound-method receivers) are digested through their class's full
    method suite plus the instance state, so editing a helper method the
    callable delegates to also misses; C-level callables by their qualified
    name.  ``repr`` is only the last resort for
    exotic callables with none of the above — those digest by identity and
    so never hit across interpreter runs (a wasted re-simulation, never a
    wrong replay).

    One deliberate gap: the *values* of module globals a callable reads are
    not digested (they may be modules or arbitrarily large objects).  If a
    workload callable's behaviour changes because a referenced global was
    rebound, bump :data:`CACHE_SCHEMA_VERSION` or clear the cache directory.
    """
    if id(value) in _seen:
        # A self-referential structure (e.g. a recursive closure whose cell
        # holds its own function): mark the back-edge instead of recursing
        # forever.  The marker is deterministic, so equal cyclic structures
        # still digest identically.
        return "<cycle>"
    seen = _seen | {id(value)}
    if isinstance(value, type):
        # A class used as a callable (or referenced from instance state):
        # its behaviour is the full method suite, not just its name.
        return f"class:{_describe_type(value, seen)}"
    if isinstance(value, types.CodeType):
        consts = ",".join(_describe(const, seen) for const in value.co_consts)
        names = ",".join(
            value.co_names + value.co_varnames + value.co_freevars + value.co_cellvars
        )
        return (
            f"code:{value.co_name}:{value.co_flags}:{value.co_code.hex()}"
            f":({names}):[{consts}]"
        )
    if isinstance(value, functools.partial):
        return (
            f"partial:{_describe(value.func, seen)}"
            f":{_describe(tuple(value.args), seen)}"
            f":{_describe(dict(value.keywords), seen)}"
        )
    if callable(value):
        code = getattr(value, "__code__", None)
        if code is not None:
            closure = getattr(value, "__closure__", None) or ()
            cells = ",".join(_describe(cell.cell_contents, seen) for cell in closure)
            defaults = _describe(tuple(getattr(value, "__defaults__", None) or ()), seen)
            kwdefaults = _describe(
                dict(getattr(value, "__kwdefaults__", None) or {}), seen
            )
            # Bound methods forward __code__ from their function; the
            # receiver's state and class (sibling methods the code may call)
            # are part of their behaviour too.
            owner = getattr(value, "__self__", None)
            receiver = (
                ""
                if owner is None
                else f":{_describe_state(owner, seen)}"
                f":{_describe_type(type(owner), seen)}"
            )
            return (
                f"callable:{getattr(value, '__qualname__', '?')}"
                f":{_describe(code, seen)}:[{cells}]:{defaults}:{kwdefaults}{receiver}"
            )
        wrapped = getattr(value, "__wrapped__", None)
        if wrapped is not None and wrapped is not value:
            # A C-level wrapper around a Python callable (functools.lru_cache
            # and friends): the wrapped function's behaviour is the
            # wrapper's behaviour.
            return (
                f"wrapped:{getattr(value, '__qualname__', '?')}"
                f":{_describe(wrapped, seen)}"
            )
        call = getattr(type(value), "__call__", None)
        if getattr(call, "__code__", None) is not None:
            # An instance defining __call__ in Python: behaviour is the full
            # method suite of its class (the __call__ may delegate to helper
            # methods) plus whatever instance state it reads.
            return (
                f"instance:{_describe_type(type(value), seen)}"
                f":{_describe_state(value, seen)}"
            )
        name = getattr(value, "__qualname__", None) or getattr(value, "__name__", None)
        if name is not None:
            # A C-level callable (builtin function or bound C method): the
            # qualified name is stable across interpreter runs; bound C
            # methods additionally digest their receiver's state.
            owner = getattr(value, "__self__", None)
            receiver = (
                "" if owner is None else f":{_describe_state(owner, seen)}"
            )
            return f"builtin:{getattr(value, '__module__', '?')}.{name}{receiver}"
        return f"callable:{value!r}"
    if isinstance(value, dict):
        # Order by the described key, not repr: plain-object keys digest
        # addresslessly, but their reprs would order by memory address.
        items = sorted(
            f"{_describe(key, seen)}={_describe(value[key], seen)}" for key in value
        )
        return "{" + ",".join(items) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_describe(item, seen) for item in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_describe(item, seen) for item in value) + "]"
    if type(value).__repr__ is object.__repr__:
        # A plain instance with the default (address-bearing) repr — e.g. a
        # config object a trip-count lambda closes over: digest its class
        # behaviour and attribute state instead, as the bound-method
        # receiver path already does, so equal objects hit across runs.
        return (
            f"object:{_describe_type(type(value), seen)}"
            f":{_describe_state(value, seen)}"
        )
    return repr(value)


def _describe_workload(workload: WorkloadSpec) -> str:
    parts = [
        f"{field.name}={_describe(getattr(workload, field.name))}"
        for field in sorted(fields(workload), key=lambda field: field.name)
    ]
    return "workload(" + ";".join(parts) + ")"


def _describe_architecture(architecture: GpuArchitecture) -> str:
    parts = [
        f"{field.name}={_describe(getattr(architecture, field.name))}"
        for field in sorted(fields(architecture), key=lambda field: field.name)
    ]
    return "arch(" + ";".join(parts) + ")"


def profile_cache_key(
    cubin: Cubin,
    kernel_name: str,
    config: LaunchConfig,
    workload: WorkloadSpec,
    architecture: GpuArchitecture,
    sample_period: int,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    simulation_scope: str = "single_wave",
    memory_model: str = "flat",
    simulator_backend: Optional[str] = None,
) -> str:
    """The cache key of one simulated kernel launch.

    ``max_cycles`` bounds the simulation loop and therefore the recorded
    counts, so a truncated simulation must never be replayed as a full one;
    ``simulation_scope`` selects the engine (single-wave extrapolation vs.
    measured whole-GPU), so profiles from one scope must never replay as the
    other; ``memory_model`` selects the memory system (flat latency vs. the
    L1/L2/DRAM hierarchy), whose profiles differ in both timing and recorded
    statistics; ``simulator_backend`` names the core that walked the traces
    (the resolved "object"/"vector" choice — ``None`` resolves here), which
    is digested so a profile always witnesses the implementation that
    produced it.  (``keep_samples`` is deliberately absent: it only controls
    whether raw samples are retained on the transient ``SimulationResult``,
    which is not cached — replays always return ``simulation=None``.)
    """
    from repro.sampling.vector import resolve_simulator_backend

    backend = resolve_simulator_backend(simulator_backend)
    hasher = hashlib.sha256()
    for token in (
        f"v{CACHE_SCHEMA_VERSION}",
        json.dumps(cubin.to_dict(), sort_keys=True),
        kernel_name,
        f"grid={config.grid_blocks};tpb={config.threads_per_block};"
        f"smem={config.shared_memory_bytes}",
        _describe_workload(workload),
        _describe_architecture(architecture),
        f"period={sample_period}",
        f"max_cycles={max_cycles}",
        f"scope={simulation_scope}",
        f"memory_model={memory_model}",
        f"backend={backend}",
    ):
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class CacheLock:
    """A reentrant cross-process mutex on a cache directory.

    Combines a thread :class:`~threading.RLock` (handler threads of one
    daemon) with an advisory ``flock`` on ``<dir>/.cache.lock``
    (daemons sharing the directory).  The OS drops the flock automatically
    if the holder dies, so a SIGKILL'd daemon can never wedge its
    neighbours.  On platforms without :mod:`fcntl` the file lock degrades
    to the thread lock alone — single-process safety is preserved.
    """

    def __init__(self, directory: Union[str, Path]):
        self.path = Path(directory) / ".cache.lock"
        self._thread_lock = threading.RLock()
        self._depth = 0
        self._handle = None

    def __enter__(self) -> "CacheLock":
        self._thread_lock.acquire()
        self._depth += 1
        if self._depth == 1 and fcntl is not None:
            try:
                handle = open(self.path, "a+b")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                self._handle = handle
            except OSError:  # pragma: no cover - exotic filesystems
                # A filesystem that refuses flock (some network mounts):
                # fall back to thread-level locking rather than failing
                # every cache write.
                self._handle = None
        return self

    def __exit__(self, *exc_info) -> None:
        if self._depth == 1 and self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            finally:
                self._handle.close()
                self._handle = None
        self._depth -= 1
        self._thread_lock.release()

    @property
    def held(self) -> bool:
        """Whether this process currently holds the lock (for tests)."""
        return self._depth > 0


class ProfileCache:
    """A directory of cached kernel profiles, one JSON file per key."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.lock = CacheLock(self.directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.profile.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> Optional[KernelProfile]:
        """The cached profile for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            profile = KernelProfile.from_json(text)
        except (ValueError, KeyError, TypeError, IndexError, AttributeError):
            # A torn or stale entry — including valid JSON of the wrong
            # shape: treat as a miss and let the writer replace it.
            self.misses += 1
            return None
        self.hits += 1
        return profile

    def put(self, key: str, profile: KernelProfile) -> Path:
        """Store ``profile`` under ``key`` (atomic, last writer wins).

        Held under :attr:`lock`, so daemons sharing the directory
        serialize their writes; readers never need the lock because
        :func:`os.replace` publishes entries atomically.
        """
        path = self.path_for(key)
        with self.lock:
            handle, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(handle, "w") as stream:
                    stream.write(profile.to_json())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stores += 1
        return path

    def invalidate(self, key: str) -> bool:
        """Drop the entry for ``key`` (the API's ``refresh`` cache policy).

        Returns whether an entry existed; racing with another process's
        removal counts as "did not exist".
        """
        with self.lock:
            try:
                self.path_for(key).unlink()
            except FileNotFoundError:
                return False
        return True

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed.

        Race-safe like :meth:`put`/:meth:`get`: an entry another process
        removes between the listing and the unlink is simply skipped.
        """
        removed = 0
        with self.lock:
            for path in self.directory.glob("*.profile.json"):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.profile.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProfileCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def coerce_cache(cache: Union[None, str, Path, ProfileCache]) -> Optional[ProfileCache]:
    """Accept a cache instance or a directory path (or ``None``)."""
    if cache is None or isinstance(cache, ProfileCache):
        return cache
    return ProfileCache(cache)
