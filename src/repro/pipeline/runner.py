"""A small plan/execute driver with progress callbacks.

The sequential paths of the pipeline (single-process batch sweeps, the CLI
without ``--jobs``) all need the same bookkeeping: run named steps in order,
time each one, capture per-step failures without aborting the plan, and tell
an observer what is happening.  :class:`PipelineRunner` centralises that so
:class:`~repro.pipeline.batch.BatchAdvisor` and the harnesses emit identical
progress events whether work runs inline or in a process pool.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence


@dataclass(frozen=True)
class ProgressEvent:
    """One observation of pipeline progress."""

    step: str
    index: int
    total: int
    #: ``"start"``, ``"done"`` or ``"error"``.
    status: str
    duration: float = 0.0
    error: Optional[str] = None


#: Observer signature: called synchronously; exceptions are the caller's.
ProgressCallback = Callable[[ProgressEvent], None]


@dataclass(frozen=True)
class PipelineStep:
    """One named unit of work in a plan."""

    name: str
    action: Callable[[], Any]


@dataclass
class StepOutcome:
    """What happened to one step: its value or its captured traceback."""

    name: str
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class PipelineRunner:
    """Executes a plan of steps in order, capturing failures per step."""

    def __init__(self, progress: Optional[ProgressCallback] = None):
        self.progress = progress

    def _emit(self, event: ProgressEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    def execute(self, plan: Sequence[PipelineStep]) -> List[StepOutcome]:
        """Run every step; a failing step never aborts the rest of the plan."""
        total = len(plan)
        outcomes: List[StepOutcome] = []
        for index, step in enumerate(plan):
            self._emit(ProgressEvent(step.name, index, total, "start"))
            started = time.perf_counter()
            try:
                value = step.action()
            except Exception:
                duration = time.perf_counter() - started
                error = traceback.format_exc()
                outcomes.append(
                    StepOutcome(name=step.name, error=error, duration=duration)
                )
                self._emit(
                    ProgressEvent(step.name, index, total, "error", duration, error)
                )
            else:
                duration = time.perf_counter() - started
                outcomes.append(
                    StepOutcome(name=step.name, value=value, duration=duration)
                )
                self._emit(ProgressEvent(step.name, index, total, "done", duration))
        return outcomes
