"""The staged advising pipeline.

``GPA.advise`` is conceptually two stages — *profile* (simulate a kernel
launch and collect PC samples) and *analyze* (blame, match, estimate) — but
the seed code ran them as one opaque call.  This package makes the stages
explicit so they can be cached, skipped, or fanned out independently:

* :mod:`repro.pipeline.stages` — :class:`ProfileStage` and
  :class:`AnalyzeStage`, the typed units every harness composes;
* :mod:`repro.pipeline.cache` — an on-disk profile cache keyed by a digest
  of (binary, kernel, launch config, workload, architecture, sample
  period), so re-running a sweep skips simulation entirely;
* :mod:`repro.pipeline.batch` — :class:`BatchAdvisor`, the process-parallel
  driver that sweeps benchmark cases with deterministic result ordering and
  per-case error capture;
* :mod:`repro.pipeline.runner` — the small plan/execute driver with
  progress callbacks that the sequential paths share.
"""

from repro.pipeline.cache import ProfileCache, profile_cache_key
from repro.pipeline.stages import (
    AnalyzeRequest,
    AnalyzeStage,
    ProfileRequest,
    ProfileStage,
    retarget,
)
from repro.pipeline.batch import BatchAdvisor, BatchConfig, BatchResult
from repro.pipeline.runner import PipelineRunner, PipelineStep, ProgressEvent, StepOutcome

__all__ = [
    "AnalyzeRequest",
    "AnalyzeStage",
    "BatchAdvisor",
    "BatchConfig",
    "BatchResult",
    "PipelineRunner",
    "PipelineStep",
    "ProfileCache",
    "ProfileRequest",
    "ProfileStage",
    "ProgressEvent",
    "StepOutcome",
    "profile_cache_key",
    "retarget",
]
