"""Process-parallel batch sweeps over benchmark cases.

The paper's evaluation runs 17 benchmark/optimizer pairs, each profiled
twice; the seed code swept them in a sequential Python loop.
:class:`BatchAdvisor` fans a list of cases out across
:class:`~concurrent.futures.ProcessPoolExecutor` workers with

* **deterministic ordering** — results come back in submission order no
  matter which worker finishes first, so a parallel sweep is row-for-row
  identical to a sequential one;
* **per-case error capture** — a failing case records its traceback in its
  :class:`BatchResult` instead of killing the sweep;
* **registry-based job descriptions** — cases cross the process boundary as
  their registry ``case_id`` (setups hold lambdas and are not picklable);
  case objects that are not in the registry automatically fall back to the
  inline sequential path.

Workers rebuild their own :class:`~repro.api.session.AdvisingSession` from a
:class:`BatchConfig` of primitives (architecture flag, sample period, cache
directory), so every process shares the on-disk profile cache.

Since the service-layer API landed, :meth:`BatchAdvisor.advise` is a
deprecated adapter over :meth:`AdvisingSession.advise_many
<repro.api.session.AdvisingSession.advise_many>`; the generic
``run``/``run_cases`` fan-out remains the driver for custom per-case
computations (Table 3 outcomes, Figure 7 coverage rows).
"""

from __future__ import annotations

import functools
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Union

from repro.arch.machine import GpuArchitecture, get_architecture
from repro.pipeline.runner import (
    PipelineRunner,
    PipelineStep,
    ProgressCallback,
    ProgressEvent,
)
if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import BenchmarkCase

# repro.workloads is imported lazily inside the functions that need it:
# touching any of its modules constructs the whole 20+-module benchmark
# registry, which `import repro` (and every spawned pool worker) should
# not pay for unless a sweep actually runs.


@dataclass(frozen=True)
class BatchConfig:
    """Everything a worker process needs to rebuild the advising pipeline."""

    arch_flag: str = "sm_70"
    sample_period: int = 8
    cache_dir: Optional[str] = None
    jobs: int = 1
    simulation_scope: str = "single_wave"
    memory_model: str = "flat"
    simulator_backend: Optional[str] = None

    @property
    def architecture(self) -> GpuArchitecture:
        return get_architecture(self.arch_flag)

    def build_session(self):
        """The :class:`~repro.api.session.AdvisingSession` this config describes."""
        from repro.api.session import AdvisingSession

        return AdvisingSession(
            architecture=self.architecture,
            sample_period=self.sample_period,
            cache=self.cache_dir,
            jobs=self.jobs,
            simulation_scope=self.simulation_scope,
            memory_model=self.memory_model,
            simulator_backend=self.simulator_backend,
        )

    def build_gpa(self):
        """Deprecated: use :meth:`build_session`."""
        warnings.warn(
            "BatchConfig.build_gpa is deprecated; use BatchConfig.build_session "
            "(see docs/MIGRATION.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.advisor.advisor import GPA

        return GPA(
            architecture=self.architecture,
            sample_period=self.sample_period,
            cache=self.cache_dir,
        )


@dataclass
class BatchResult:
    """The outcome of one case in a sweep: a value or a captured traceback."""

    index: int
    case_id: str
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def error_summary(error: Optional[str]) -> str:
    """The last non-empty line of a captured traceback, for one-line display."""
    lines = (error or "").strip().splitlines()
    return lines[-1] if lines else "unknown error"


#: Worker signature: ``worker(config, case_or_id) -> picklable value``.
CaseWorker = Callable[[BatchConfig, Union[str, "BenchmarkCase"]], Any]


def resolve_case(case_or_id: Union[str, "BenchmarkCase"]) -> "BenchmarkCase":
    """Accept a registry ``case_id`` or a :class:`BenchmarkCase` object."""
    from repro.workloads.registry import case_by_name

    if isinstance(case_or_id, str):
        return case_by_name(case_or_id)
    return case_or_id


def _is_registry_case(case: "BenchmarkCase") -> bool:
    from repro.workloads.registry import case_by_name

    try:
        return case_by_name(case.case_id) is case
    except KeyError:
        return False


# ----------------------------------------------------------------------
# Shared case computations (used by the sequential harnesses too, so the
# parallel and sequential paths cannot drift apart)
# ----------------------------------------------------------------------
def evaluate_case_outcome(
    case: BenchmarkCase, session, arch_flag: Optional[str] = None
) -> dict:
    """The Table 3 computation for one case, as a picklable plain dict.

    Profiles the baseline, runs the analyzer on it, profiles the
    hand-optimized variant, and derives the achieved/estimated speedups,
    the estimate error and the matched optimizer's rank.  ``session`` is an
    :class:`~repro.api.session.AdvisingSession`; a legacy ``GPA`` facade is
    accepted and unwrapped.
    """
    # Imported here: the evaluation package's __init__ pulls in the table3
    # harness, which itself builds on this module.
    from repro.api.request import request_for_case
    from repro.evaluation.metrics import relative_error

    session = getattr(session, "session", session)
    profiled_baseline = session.profile(
        request_for_case(case, "baseline", arch_flag=arch_flag)
    )
    report = session.advise_profiled(profiled_baseline)
    profiled_optimized = session.profile(
        request_for_case(case, "optimized", arch_flag=arch_flag)
    )

    baseline_cycles = profiled_baseline.kernel_cycles
    optimized_cycles = profiled_optimized.kernel_cycles
    achieved = baseline_cycles / optimized_cycles if optimized_cycles else 1.0

    advice = report.advice_for(case.optimizer_name)
    estimated = advice.estimated_speedup if advice is not None else 1.0
    applicable = [item.optimizer for item in report.advice if item.applicable]
    rank = (
        applicable.index(case.optimizer_name) + 1
        if case.optimizer_name in applicable
        else None
    )

    return {
        "case_id": case.case_id,
        "baseline_cycles": baseline_cycles,
        "optimized_cycles": optimized_cycles,
        "achieved_speedup": achieved,
        "estimated_speedup": estimated,
        "error": relative_error(estimated, achieved),
        "optimizer_rank": rank,
        "total_samples": profiled_baseline.profile.total_samples,
    }


def advise_case_report(config: BatchConfig, case_or_id, optimized: bool = False):
    """Profile + analyze one case variant; returns (case, report).

    The one resolve → retarget → advise sequence shared by the batch
    workers and the CLI's single-case path, now expressed as an advising
    request against the config's session.
    """
    from repro.api.request import request_for_case

    case = resolve_case(case_or_id)
    session = config.build_session()
    request = request_for_case(
        case, "optimized" if optimized else "baseline", arch_flag=config.arch_flag
    )
    profiled = session.profile(request)
    return case, session.advise_profiled(profiled)


def advise_case(config: BatchConfig, payload) -> dict:
    """Worker: profile + analyze one case variant, returning the report dict."""
    case_or_id, optimized = payload
    case, report = advise_case_report(config, case_or_id, optimized)
    return {
        "case": case.case_id,
        "kernel": report.kernel,
        "variant": "optimized" if optimized else "baseline",
        "arch": config.arch_flag,
        "report": report.to_dict(),
    }


def table3_case_worker(config: BatchConfig, case_or_id) -> dict:
    """Worker: one Table 3 row outcome."""
    case = resolve_case(case_or_id)
    session = config.build_session()
    return evaluate_case_outcome(case, session, arch_flag=config.arch_flag)


def _pool_call(worker: CaseWorker, config: BatchConfig, payload):
    """Run one job in a worker process, capturing its traceback."""
    started = time.perf_counter()
    try:
        value = worker(config, payload)
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - started
    return value, None, time.perf_counter() - started


class BatchAdvisor:
    """Sweeps benchmark cases through the pipeline, optionally in parallel."""

    def __init__(self, config: Optional[BatchConfig] = None, **overrides):
        if config is None:
            config = BatchConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config

    # ------------------------------------------------------------------
    # Generic fan-out
    # ------------------------------------------------------------------
    def run(
        self,
        worker: CaseWorker,
        payloads: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[BatchResult]:
        """Run ``worker(config, payload)`` for every payload.

        ``worker`` must be a module-level function and the payloads picklable
        when ``config.jobs > 1``.  Results preserve payload order.
        """
        payloads = list(payloads)
        labels = list(labels) if labels is not None else [str(p) for p in payloads]
        if self.config.jobs > 1 and len(payloads) > 1:
            return self._run_pool(worker, payloads, labels, progress)
        return self._run_inline(worker, payloads, labels, progress)

    def run_cases(
        self,
        worker: CaseWorker,
        cases: Sequence[BenchmarkCase],
        progress: Optional[ProgressCallback] = None,
    ) -> List[BatchResult]:
        """Fan case objects out to ``worker``, in parallel when safe.

        Cases cross process boundaries by ``case_id``; any case not backed by
        the registry forces the inline path (its builders hold closures that
        cannot be pickled).
        """
        cases = list(cases)
        labels = [case.case_id for case in cases]
        parallel_ok = (
            self.config.jobs > 1
            and len(cases) > 1
            and all(_is_registry_case(case) for case in cases)
        )
        if parallel_ok:
            return self._run_pool(worker, labels, labels, progress)
        return self._run_inline(worker, cases, labels, progress)

    # ------------------------------------------------------------------
    # High-level sweeps
    # ------------------------------------------------------------------
    def advise(
        self,
        case_ids: Optional[Sequence[str]] = None,
        optimized: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> List[BatchResult]:
        """Advise every named case (default: the full registry).

        .. deprecated:: 1.1
           Build :class:`~repro.api.request.AdvisingRequest` objects and use
           :meth:`AdvisingSession.advise_many
           <repro.api.session.AdvisingSession.advise_many>` (ordered) or
           :meth:`~repro.api.session.AdvisingSession.stream` (results as
           they complete).  This shim adapts the session results back into
           the legacy ``BatchResult`` dict shape.
        """
        warnings.warn(
            "BatchAdvisor.advise is deprecated; use AdvisingSession.advise_many "
            "or AdvisingSession.stream (see docs/MIGRATION.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.request import request_for_case
        from repro.workloads.registry import case_names

        ids = list(case_ids) if case_ids is not None else case_names()
        variant = "optimized" if optimized else "baseline"
        session = self.config.build_session()
        requests = [
            request_for_case(case_id, variant, arch_flag=self.config.arch_flag)
            for case_id in ids
        ]
        results = session.advise_many(requests, progress=progress)
        batch: List[BatchResult] = []
        for result in results:
            value = None
            if result.ok:
                value = {
                    "case": ids[result.index],
                    "kernel": result.report.kernel,
                    "variant": variant,
                    "arch": self.config.arch_flag,
                    "report": result.report.to_dict(),
                }
            batch.append(
                BatchResult(
                    index=result.index,
                    case_id=ids[result.index],
                    value=value,
                    error=result.error,
                    duration=result.duration,
                )
            )
        return batch

    def evaluate_table3(
        self,
        cases: Sequence[BenchmarkCase],
        progress: Optional[ProgressCallback] = None,
    ) -> List[BatchResult]:
        """Table 3 outcomes (plain dicts) for ``cases``, in order."""
        return self.run_cases(table3_case_worker, cases, progress=progress)

    # ------------------------------------------------------------------
    def _run_inline(self, worker, payloads, labels, progress) -> List[BatchResult]:
        plan = [
            PipelineStep(label, functools.partial(worker, self.config, payload))
            for label, payload in zip(labels, payloads)
        ]
        outcomes = PipelineRunner(progress).execute(plan)
        return [
            BatchResult(
                index=index,
                case_id=outcome.name,
                value=outcome.value,
                error=outcome.error,
                duration=outcome.duration,
            )
            for index, outcome in enumerate(outcomes)
        ]

    def _run_pool(self, worker, payloads, labels, progress) -> List[BatchResult]:
        total = len(payloads)
        results: List[Optional[BatchResult]] = [None] * total
        workers = min(self.config.jobs, total)
        emit = progress if progress is not None else (lambda event: None)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for index, payload in enumerate(payloads):
                future = pool.submit(_pool_call, worker, self.config, payload)
                futures[future] = index
            for future in as_completed(futures):
                index = futures[future]
                # The worker ran in another process, so its "start" could not
                # be observed live; emit start/done as an adjacent pair at
                # collection time.  Unlike the inline PipelineRunner, pairs
                # arrive in completion order, not submission order — consumers
                # must not assume event.index is monotonic.
                emit(ProgressEvent(labels[index], index, total, "start"))
                try:
                    value, error, duration = future.result()
                except Exception:
                    # Pool-level failure (e.g. the payload could not be
                    # pickled or the worker process died).
                    value, error, duration = None, traceback.format_exc(), 0.0
                results[index] = BatchResult(
                    index=index,
                    case_id=labels[index],
                    value=value,
                    error=error,
                    duration=duration,
                )
                status = "done" if error is None else "error"
                emit(
                    ProgressEvent(labels[index], index, total, status, duration, error)
                )
        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            # Callers zip results against their input positionally; a silently
            # shortened list would misattribute every following row.
            raise RuntimeError(f"pool sweep lost results for indices {missing}")
        return results
