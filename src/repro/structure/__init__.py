"""Program structure recovery (the paper's "Program Structure" file).

The static analyzer recovers, per function: the function symbol and its
visibility, loop nests, inline stacks (from DWARF) and source-line mappings.
This package combines the CFG/loop analyses with the metadata carried by the
CUBIN container into :class:`~repro.structure.program.ProgramStructure`,
which the dynamic analyzer queries to aggregate stalls by line, loop and
function and to generate advice at those levels.
"""

from repro.structure.program import (
    FunctionStructure,
    ProgramStructure,
    SourceLocation,
    build_program_structure,
)

__all__ = [
    "FunctionStructure",
    "ProgramStructure",
    "SourceLocation",
    "build_program_structure",
]
