"""Program structure: functions, loops, inline stacks and line mappings."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.dominators import DominatorTree, compute_dominator_tree
from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.cfg.loops import Loop, LoopNestTree, find_loops
from repro.cubin.binary import Cubin, Function, FunctionVisibility
from repro.isa.instruction import Instruction


@dataclass(frozen=True)
class SourceLocation:
    """A fully-resolved source location for one instruction offset."""

    function: str
    offset: int
    file: Optional[str]
    line: Optional[int]
    #: Inline call stack, outermost first (empty when not inlined).
    inline_stack: Tuple[str, ...] = ()
    #: Innermost loop header line, if the instruction sits in a loop.
    loop_line: Optional[int] = None

    def describe(self) -> str:
        """Human-readable rendering used in advice reports (Figure 8 style)."""
        location = f"0x{self.offset:x}"
        if self.line is not None:
            location += f" at Line {self.line}"
        if self.loop_line is not None:
            location += f" in Loop at Line {self.loop_line}"
        if self.inline_stack:
            location += f" (inlined from {' <- '.join(self.inline_stack)})"
        return location

    def to_dict(self) -> dict:
        """A JSON-friendly description carrying every field."""
        return {
            "function": self.function,
            "offset": self.offset,
            "file": self.file,
            "line": self.line,
            "inline_stack": list(self.inline_stack),
            "loop_line": self.loop_line,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SourceLocation":
        return cls(
            function=payload["function"],
            offset=payload["offset"],
            file=payload.get("file"),
            line=payload.get("line"),
            inline_stack=tuple(payload.get("inline_stack") or ()),
            loop_line=payload.get("loop_line"),
        )


@dataclass
class FunctionStructure:
    """Structure of one function: CFG, dominators, loop nest, line maps."""

    function: Function
    cfg: ControlFlowGraph
    dominator_tree: DominatorTree
    loop_nest: LoopNestTree

    @property
    def name(self) -> str:
        return self.function.name

    @property
    def is_kernel(self) -> bool:
        return self.function.is_kernel

    def instruction_at(self, offset: int) -> Instruction:
        return self.cfg.instruction_at(offset)

    def location(self, offset: int) -> SourceLocation:
        """Full source location (line, loop, inline stack) of an offset."""
        instruction = self.cfg.instruction_at(offset)
        loop = self.loop_nest.innermost_loop_containing(offset)
        return SourceLocation(
            function=self.function.name,
            offset=offset,
            file=instruction.source_file or self.function.source_file,
            line=instruction.line,
            inline_stack=self.function.inline_stack_at(offset) or instruction.inline_stack,
            loop_line=loop.header_line if loop is not None else None,
        )

    def offsets_for_line(self, line: int) -> List[int]:
        """Instruction offsets mapped to a source line."""
        return [
            instruction.offset
            for instruction in self.cfg.instructions()
            if instruction.line == line
        ]

    def lines(self) -> List[int]:
        """All distinct source lines of the function, sorted."""
        lines = {
            instruction.line
            for instruction in self.cfg.instructions()
            if instruction.line is not None
        }
        return sorted(lines)

    def loops(self) -> List[Loop]:
        return list(self.loop_nest)

    def instruction_count(self) -> int:
        return len(self.function.instructions)


@dataclass
class ProgramStructure:
    """Structure of every function in a binary, plus the architecture flag."""

    arch_flag: str
    functions: Dict[str, FunctionStructure] = field(default_factory=dict)
    module_name: str = "module.cubin"

    def function(self, name: str) -> FunctionStructure:
        try:
            return self.functions[name]
        except KeyError as exc:
            raise KeyError(
                f"no function {name!r}; available: {sorted(self.functions)}"
            ) from exc

    def kernels(self) -> List[FunctionStructure]:
        return [f for f in self.functions.values() if f.is_kernel]

    def device_functions(self) -> List[FunctionStructure]:
        return [f for f in self.functions.values() if not f.is_kernel]

    def location(self, function_name: str, offset: int) -> SourceLocation:
        return self.function(function_name).location(offset)

    # ------------------------------------------------------------------
    # Serialization: the paper's static analyzer writes a "program structure
    # file" that the dynamic analyzer later ingests together with profiles.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {"arch_flag": self.arch_flag, "module_name": self.module_name, "functions": {}}
        for name, structure in self.functions.items():
            function = structure.function
            payload["functions"][name] = {
                "visibility": function.visibility.value,
                "registers_per_thread": function.registers_per_thread,
                "shared_memory_bytes": function.shared_memory_bytes,
                "source_file": function.source_file,
                "instruction_count": structure.instruction_count(),
                "lines": structure.lines(),
                "loops": [
                    {
                        "index": loop.index,
                        "header_line": loop.header_line,
                        "header_offset": loop.header_offset,
                        "parent": loop.parent,
                        "blocks": sorted(loop.blocks),
                    }
                    for loop in structure.loops()
                ],
                "inline_ranges": [
                    [r.start_offset, r.end_offset, r.callee, r.call_site_line]
                    for r in function.inline_ranges
                ],
            }
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __len__(self) -> int:
        return len(self.functions)


def build_function_structure(function: Function) -> FunctionStructure:
    """Analyze one function: CFG, dominators, loop nest."""
    cfg = build_cfg(function.instructions)
    dominator_tree = compute_dominator_tree(cfg)
    loop_nest = find_loops(cfg, dominator_tree)
    return FunctionStructure(
        function=function,
        cfg=cfg,
        dominator_tree=dominator_tree,
        loop_nest=loop_nest,
    )


def build_program_structure(cubin: Cubin) -> ProgramStructure:
    """Analyze every function in a binary (the static analyzer's main entry)."""
    structure = ProgramStructure(arch_flag=cubin.arch_flag, module_name=cubin.module_name)
    for name, function in cubin.functions.items():
        structure.functions[name] = build_function_structure(function)
    return structure
