"""The shared ``Advisor`` surface: inline session and remote client, one type.

:class:`Advisor` is the structural protocol both execution surfaces
implement:

* :class:`~repro.api.session.AdvisingSession` — runs requests in this
  process (optionally fanning batches across a process pool), and
* :class:`~repro.service.client.ServiceClient` — submits the same wire
  forms to a remote :class:`~repro.service.daemon.AdvisingDaemon`.

Because daemon results are bit-identical to inline ones by construction,
code written against ``Advisor`` moves between the two with a one-line
swap of the constructor::

    def audit(advisor: Advisor, requests: list[AdvisingRequest]) -> None:
        for result in advisor.stream(requests):
            ...

    audit(AdvisingSession(architecture="sm_70"), requests)     # inline
    audit(ServiceClient("http://127.0.0.1:8765"), requests)    # remote

The protocol pins the four verbs and their core shapes only; each
implementation keeps its own extra keyword knobs (``progress`` callbacks
inline, ``timeout``/``poll_interval`` remotely).  ``@runtime_checkable``
makes ``isinstance(surface, Advisor)`` usable in tests and plugin
registries — with the usual caveat that runtime checks verify method
*presence*, not signatures.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Iterator,
    List,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.api.request import AdvisingRequest
from repro.api.result import AdvisingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.report import StaticReport

__all__ = ["Advisor"]


@runtime_checkable
class Advisor(Protocol):
    """Anything that can advise: one request, an ordered batch, a stream,
    or a simulation-free static lint."""

    def advise(self, request: AdvisingRequest, /, *args, **kwargs) -> AdvisingResult:
        """Execute one request; advising failures land in ``result.error``."""
        ...

    def advise_many(
        self, requests: Sequence[AdvisingRequest], /, *args, **kwargs
    ) -> List[AdvisingResult]:
        """Execute a batch; results come back in submission order."""
        ...

    def stream(
        self, requests: Sequence[AdvisingRequest], /, *args, **kwargs
    ) -> Iterator[AdvisingResult]:
        """Yield results in completion order (``result.index`` keeps the
        submission position)."""
        ...

    def lint(
        self, request: AdvisingRequest, /, *args, **kwargs
    ) -> "StaticReport":
        """Run the static checker over the request's binary — no simulation."""
        ...
