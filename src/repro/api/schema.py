"""Schema plumbing of the versioned service-layer API.

Every payload the API emits (:class:`~repro.api.request.AdvisingRequest`,
:class:`~repro.api.result.AdvisingResult`,
:class:`~repro.advisor.report.AdviceReport`,
:class:`~repro.blame.attribution.BlameResult`) carries an explicit
``schema_version`` so that a result dumped by one process — a pool worker, a
service daemon, a remote runner — can be validated before it is reloaded by
another.  Loaders are strict: a payload whose version or kind does not match
raises :class:`ApiSchemaError` instead of silently misparsing.

This module is a leaf: it imports nothing from :mod:`repro`, so any layer
(blame, optimizers, advisor, pipeline) may use it without import cycles.
"""

from __future__ import annotations

import json
from typing import Any

#: Version of the request/result wire format.  Bump whenever a serialized
#: field changes meaning or shape; loaders reject payloads from other
#: versions.
#:
#: Version history:
#:
#: 1. Initial service-layer API.
#: 2. Requests and results carry ``simulation_scope`` (the whole-GPU
#:    simulation engine); launch statistics inside profiles record the scope
#:    that produced them.
#: 3. Requests and results carry ``memory_model`` (the L1/L2/DRAM memory
#:    hierarchy engine); launch statistics record the model that produced
#:    them plus the hierarchy's coalescing/hit-rate statistics; workload
#:    specs carry access-pattern fields (``working_set_bytes``,
#:    ``access_strides``, ``default_access_stride_bytes``).
#: 4. Requests carry ``simulator_backend`` (the object vs. vector simulator
#:    core selection).  Results deliberately do not: the two cores are
#:    bit-identical by contract, so the core that ran is an execution
#:    detail, not part of the answer.
#: 5. The static lint layer adds the ``static_report`` and
#:    ``static_diagnostic`` envelope kinds
#:    (:mod:`repro.staticcheck.report`).  Existing payload shapes are
#:    unchanged; the bump exists so a version-5 consumer can rely on the
#:    new kinds being understood end-to-end.
#: 6. Static reports carry an ``ingest`` field: the coverage ledger of the
#:    real-SASS frontend (:mod:`repro.sass`) when the linted binary was
#:    lowered from an ``nvdisasm``/``cuobjdump`` listing (``null`` for
#:    binaries built in-repo).  The ``unknown-opcode`` lint rule ships with
#:    it, and serialized CUBIN functions may carry a ``"sass"`` raw-listing
#:    section in place of ``"code"`` when their operands do not fit the
#:    fixed-width encoding.
#: 7. Requests carry a ``fingerprint``: the public content digest
#:    (:meth:`AdvisingRequest.fingerprint
#:    <repro.api.request.AdvisingRequest.fingerprint>`) the advising
#:    service coalesces identical submissions by.  Loaders are strict: a
#:    payload whose stated fingerprint does not match its recomputed one is
#:    rejected instead of silently re-keyed.
API_SCHEMA_VERSION = 7


class ApiError(Exception):
    """Base class of all service-layer API errors."""


class ApiValidationError(ApiError, ValueError):
    """A request (or builder state) failed validation."""


class ApiSchemaError(ApiError, ValueError):
    """A serialized payload has the wrong schema version or kind."""


class ApiSerializationError(ApiError, ValueError):
    """A value cannot be represented in the wire format (e.g. callables)."""


def envelope(kind: str, payload: dict) -> dict:
    """Wrap ``payload`` in the versioned envelope for ``kind``."""
    return {"schema_version": API_SCHEMA_VERSION, "kind": kind, **payload}


def check_envelope(payload: Any, kind: str) -> dict:
    """Validate the envelope of a loaded payload and return it.

    Raises :class:`ApiSchemaError` on a non-dict payload, a missing or
    mismatched ``schema_version``, or the wrong ``kind``.
    """
    if not isinstance(payload, dict):
        raise ApiSchemaError(
            f"expected a serialized {kind} dict, got {type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if version != API_SCHEMA_VERSION:
        raise ApiSchemaError(
            f"cannot load {kind}: schema version {version!r} "
            f"(this build speaks version {API_SCHEMA_VERSION})"
        )
    found = payload.get("kind")
    if found != kind:
        raise ApiSchemaError(f"expected a {kind!r} payload, got kind {found!r}")
    return payload


def canonical_json(value: Any, context: str = "value") -> Any:
    """``value`` normalized to plain JSON types (dicts/lists/str/num/bool).

    Serialization must be a fixed point of ``dump -> load -> dump``: a live
    object and its reloaded twin must produce identical dictionaries.  Free-
    form payloads (optimizer ``details``) may hold tuples or sets that JSON
    silently turns into lists, so they are canonicalized at dump time.
    Raises :class:`ApiSerializationError` for values JSON cannot express.
    """
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError) as exc:
        raise ApiSerializationError(f"{context} is not JSON-serializable: {exc}") from exc


def require_key(payload: dict, key: str, kind: str) -> Any:
    """``payload[key]`` or a uniform :class:`ApiSchemaError`."""
    try:
        return payload[key]
    except KeyError as exc:
        raise ApiSchemaError(f"serialized {kind} is missing the {key!r} field") from exc
