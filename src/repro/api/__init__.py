"""repro.api — the versioned service-layer API.

One declarative vocabulary for every way of running the advisor:

* :class:`~repro.api.request.AdvisingRequest` — a validated description of
  one advising job (a registry case, an inline binary, or an offline
  profile), plus the knobs that change its outcome (architecture, sample
  period, optimizer selection, cache policy).  Build one directly, or
  fluently through :meth:`AdvisingRequest.builder`.
* :class:`~repro.api.session.AdvisingSession` — owns the architecture, the
  optimizer set and the profile cache once, and executes requests inline
  (``advise``), as an ordered batch (``advise_many``) or as a stream of
  results yielded in completion order from a process pool (``stream``).
* :class:`~repro.api.result.AdvisingResult` — the typed outcome: the
  request, the :class:`~repro.advisor.report.AdviceReport` (or the captured
  traceback), and timing.  Requests and results serialize losslessly
  (``to_dict``/``from_dict`` under :data:`API_SCHEMA_VERSION`), which is
  also how they cross the process-pool boundary.

Submodules are loaded lazily so that low layers (``repro.blame``,
``repro.advisor``) can import :mod:`repro.api.schema` — a leaf — without
pulling the whole session machinery into every interpreter.
"""

from __future__ import annotations

from repro.api.schema import (
    API_SCHEMA_VERSION,
    ApiError,
    ApiSchemaError,
    ApiSerializationError,
    ApiValidationError,
)

__all__ = [
    "API_SCHEMA_VERSION",
    "AdvisingRequest",
    "AdvisingResult",
    "AdvisingSession",
    "Advisor",
    "ApiError",
    "ApiSchemaError",
    "ApiSerializationError",
    "ApiValidationError",
    "RequestBuilder",
    "request_for_case",
]

_LAZY = {
    "AdvisingRequest": ("repro.api.request", "AdvisingRequest"),
    "RequestBuilder": ("repro.api.request", "RequestBuilder"),
    "request_for_case": ("repro.api.request", "request_for_case"),
    "AdvisingResult": ("repro.api.result", "AdvisingResult"),
    "AdvisingSession": ("repro.api.session", "AdvisingSession"),
    "Advisor": ("repro.api.advisor", "Advisor"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
