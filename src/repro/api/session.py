"""The advising session: one configuration, every execution mode.

An :class:`AdvisingSession` owns the things that used to be re-specified at
every call site — the architecture model, the optimizer set, the sample
period, the profile cache, the worker count — and executes declarative
:class:`~repro.api.request.AdvisingRequest` objects against them:

* :meth:`AdvisingSession.advise` — run one request inline; failures are
  captured into the result, never raised;
* :meth:`AdvisingSession.advise_many` — run a batch, results in submission
  order;
* :meth:`AdvisingSession.stream` — an iterator yielding typed
  :class:`~repro.api.result.AdvisingResult` objects *as they complete*,
  fanned across a :class:`~concurrent.futures.ProcessPoolExecutor` when the
  session has ``jobs > 1`` and every request can be serialized.  Requests
  and results cross the pool boundary in their ``to_dict`` wire form — the
  same envelope a service daemon or a remote worker would speak.

The session is the seam every façade now stands on: ``GPA``,
``BatchAdvisor``, the CLI and the evaluation harnesses are thin adapters
over it.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.advisor.report import AdviceReport
from repro.api.request import AdvisingRequest
from repro.api.result import AdvisingResult
from repro.api.schema import ApiValidationError
from repro.arch.machine import ArchitectureError, GpuArchitecture, VoltaV100, get_architecture
from repro.optimizers.base import Optimizer
from repro.optimizers.registry import OptimizerRegistry
from repro.pipeline.cache import ProfileCache, coerce_cache
from repro.pipeline.runner import ProgressCallback, ProgressEvent
from repro.pipeline.stages import (
    AnalyzeRequest,
    AnalyzeStage,
    ProfileRequest,
    ProfileStage,
    retarget,
)
from repro.sampling.memory import check_memory_model
from repro.sampling.profiler import ProfiledKernel, Profiler, check_simulation_scope
from repro.sampling.vector import resolve_simulator_backend
from repro.sampling.sample import KernelProfile
from repro.structure.program import ProgramStructure, build_program_structure

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.staticcheck.report import StaticReport


class AdvisingSession:
    """Executes advising requests against one owned configuration."""

    def __init__(
        self,
        architecture: Union[None, str, GpuArchitecture] = None,
        optimizers: Optional[Iterable[Union[str, Optimizer]]] = None,
        sample_period: int = 8,
        cache: Union[None, str, ProfileCache] = None,
        jobs: int = 1,
        simulation_scope: str = "single_wave",
        memory_model: str = "flat",
        simulator_backend: Optional[str] = None,
    ):
        if sample_period <= 0:
            raise ApiValidationError(f"sample_period must be positive, got {sample_period}")
        if jobs < 1:
            raise ApiValidationError(f"jobs must be >= 1, got {jobs}")
        try:
            check_simulation_scope(simulation_scope)
        except ValueError as exc:
            raise ApiValidationError(str(exc)) from exc
        try:
            check_memory_model(memory_model)
        except ValueError as exc:
            raise ApiValidationError(str(exc)) from exc
        try:
            simulator_backend = resolve_simulator_backend(simulator_backend)
        except ValueError as exc:
            raise ApiValidationError(str(exc)) from exc
        if isinstance(architecture, str):
            architecture = get_architecture(architecture)
        self.architecture = architecture or VoltaV100
        self.sample_period = sample_period
        self.simulation_scope = simulation_scope
        self.memory_model = memory_model
        self.simulator_backend = simulator_backend
        self.cache = coerce_cache(cache)
        self.jobs = jobs

        self._optimizer_names, resolved, self._optimizers_poolable = (
            self._resolve_optimizers(optimizers)
        )
        self.optimizers: List[Optimizer] = resolved
        self.registry = OptimizerRegistry(resolved)

        # The default stage pair, shared with the `GPA` façade for
        # backward-compatible attribute access.
        self.profiler = Profiler(
            self.architecture, sample_period=sample_period,
            simulation_scope=simulation_scope, memory_model=memory_model,
            simulator_backend=simulator_backend,
        )
        self.profile_stage = ProfileStage(profiler=self.profiler, cache=self.cache)
        self.analyze_stage = AnalyzeStage(self.architecture, self.optimizers)
        self._profile_stages: Dict[Tuple[int, bool, str, str, str], ProfileStage] = {}
        self._analyze_stages: Dict[Tuple[str, Optional[Tuple[str, ...]]], AnalyzeStage] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_optimizers(
        optimizers: Optional[Iterable[Union[str, Optimizer]]],
    ) -> Tuple[Optional[Tuple[str, ...]], List[Optimizer], bool]:
        """(names, instances, poolable) for the ``optimizers`` argument.

        ``None`` keeps the default Table 2 set; a list of names selects from
        the defaults (still expressible as primitives, so pool dispatch
        stays available); custom :class:`Optimizer` instances are used as
        given but pin the session to inline execution.
        """
        from repro.optimizers.registry import default_optimizers

        if optimizers is None:
            return None, default_optimizers(), True
        items = list(optimizers)
        if not items:
            raise ApiValidationError(
                "optimizers must name at least one optimizer (or be None "
                "for the default Table 2 set)"
            )
        if all(isinstance(item, str) for item in items):
            defaults = OptimizerRegistry(default_optimizers())
            try:
                return tuple(items), [defaults.get(name) for name in items], True
            except KeyError as exc:
                raise ApiValidationError(str(exc)) from exc
        return None, items, False

    @property
    def arch_flag(self) -> str:
        return self.architecture.arch_flag

    # ------------------------------------------------------------------
    # Stage selection
    # ------------------------------------------------------------------
    def _profile_stage_for(self, request: AdvisingRequest) -> ProfileStage:
        period = request.sample_period or self.sample_period
        scope = request.simulation_scope or self.simulation_scope
        memory_model = request.memory_model or self.memory_model
        backend = resolve_simulator_backend(
            request.simulator_backend or self.simulator_backend
        )
        cached = request.cache_policy != "bypass"
        if (
            period == self.sample_period
            and scope == self.simulation_scope
            and memory_model == self.memory_model
            and backend == self.simulator_backend
            and cached
        ):
            return self.profile_stage
        key = (period, cached, scope, memory_model, backend)
        stage = self._profile_stages.get(key)
        if stage is None:
            stage = ProfileStage(
                architecture=self.architecture,
                sample_period=period,
                cache=self.cache if cached else None,
                simulation_scope=scope,
                memory_model=memory_model,
                simulator_backend=backend,
            )
            self._profile_stages[key] = stage
        return stage

    def _analyze_stage_for(self, request: AdvisingRequest) -> AnalyzeStage:
        arch_flag = request.arch_flag or self.arch_flag
        if arch_flag == self.arch_flag and request.optimizers is None:
            return self.analyze_stage
        key = (arch_flag, request.optimizers)
        stage = self._analyze_stages.get(key)
        if stage is None:
            architecture = (
                self.architecture if arch_flag == self.arch_flag
                else get_architecture(arch_flag)
            )
            if request.optimizers is None:
                selected = self.optimizers
            else:
                selected = [self.registry.get(name) for name in request.optimizers]
            stage = AnalyzeStage(architecture, selected)
            self._analyze_stages[key] = stage
        return stage

    # ------------------------------------------------------------------
    # Single-request execution
    # ------------------------------------------------------------------
    def profile(self, request: AdvisingRequest) -> ProfiledKernel:
        """Run the profiling stage of a case/binary request."""
        if request.source == "profile":
            raise ApiValidationError(
                "a profile-source request carries its profile already; "
                "nothing to simulate"
            )
        cubin, kernel, config, workload = self._resolve_setup(request)
        if request.arch_flag is not None:
            cubin = retarget(cubin, request.arch_flag)
        stage = self._profile_stage_for(request)
        profile_request = ProfileRequest(
            cubin=cubin, kernel=kernel, config=config, workload=workload
        )
        if request.cache_policy == "refresh" and stage.cache is not None:
            stage.cache.invalidate(stage.cache_key(profile_request))
        return stage.run(profile_request)

    def lint(
        self, request: AdvisingRequest, strict_architecture: bool = False
    ) -> "StaticReport":
        """Run the static lint over a case/binary request — no simulation.

        Resolves the request's binary exactly like :meth:`profile` does
        (registry case or inline CUBIN, ``arch_flag`` retargeting included)
        and hands it to :class:`repro.staticcheck.engine.StaticChecker`.
        Purely additive: nothing here touches the profile cache or the
        advising pipeline, so dynamic results are byte-identical whether or
        not a lint ever ran.
        """
        # Imported lazily: sessions that never lint shouldn't pay for the
        # static-analysis layer at import time.
        from repro.sass.lint import cubin_ingest_ledger
        from repro.staticcheck.engine import StaticChecker

        if request.source == "profile":
            raise ApiValidationError(
                "a profile-source request has no binary to lint; "
                "build the request from a case or a cubin"
            )
        cubin, kernel, config, workload = self._resolve_setup(request)
        if request.arch_flag is not None:
            cubin = retarget(cubin, request.arch_flag)
        checker = StaticChecker(
            architecture=self.architecture, strict_architecture=strict_architecture
        )
        case_id = request.case_id if request.source == "case" else None
        return checker.check(
            cubin,
            kernel=kernel,
            config=config,
            workload=workload,
            case_id=case_id,
            # Binaries ingested from real disassembly (``sass_listing()``
            # requests) carry their listings; reconstruct the coverage
            # ledger so session lints match ``lint_listing`` output.
            ingest=cubin_ingest_ledger(cubin),
        )

    def analyze(self, profile: KernelProfile, structure: ProgramStructure) -> AdviceReport:
        """Run the analysis stage on an existing profile."""
        return self.analyze_stage.run(AnalyzeRequest(profile=profile, structure=structure))

    def advise_profiled(self, profiled: ProfiledKernel) -> AdviceReport:
        """Analyze an already-profiled kernel launch."""
        return self.analyze(profiled.profile, profiled.structure)

    def advise(self, request: AdvisingRequest, index: int = 0) -> AdvisingResult:
        """Execute one request inline; failures land in ``result.error``."""
        label = request.describe()
        arch_flag = request.arch_flag or self.arch_flag
        period = request.sample_period or self.sample_period
        if request.source == "profile":
            # Nothing is simulated: report the scope and memory model the
            # loaded profile was actually collected with, not the session
            # defaults.
            scope = request.profile.statistics.simulation_scope
            memory_model = request.profile.statistics.memory_model
        else:
            scope = request.simulation_scope or self.simulation_scope
            memory_model = request.memory_model or self.memory_model
        started = time.perf_counter()
        try:
            if request.source == "profile":
                structure = build_program_structure(request.cubin)
                stage = self._analyze_stage_for(request)
                report = stage.run(
                    AnalyzeRequest(profile=request.profile, structure=structure)
                )
            else:
                profiled = self.profile(request)
                stage = self._analyze_stage_for(request)
                report = stage.run(
                    AnalyzeRequest(profile=profiled.profile, structure=profiled.structure)
                )
        except Exception:
            return AdvisingResult(
                request=request, index=index, label=label,
                arch_flag=arch_flag, sample_period=period,
                simulation_scope=scope, memory_model=memory_model,
                error=traceback.format_exc(),
                duration=time.perf_counter() - started,
            )
        return AdvisingResult(
            request=request, index=index, label=label,
            arch_flag=arch_flag, sample_period=period,
            simulation_scope=scope, memory_model=memory_model,
            report=report, duration=time.perf_counter() - started,
        )

    def report_for(self, request: AdvisingRequest) -> AdviceReport:
        """The report of one request, raising on failure."""
        return self.advise(request).require_report()

    @staticmethod
    def _resolve_setup(request: AdvisingRequest):
        if request.source == "binary":
            return request.cubin, request.kernel, request.config, request.workload
        # Imported lazily: resolving a case id constructs the full benchmark
        # registry, which sessions over inline binaries never need.
        from repro.pipeline.batch import resolve_case

        case = resolve_case(request.case_id)
        setup = (
            case.build_optimized()
            if request.variant == "optimized"
            else case.build_baseline()
        )
        return setup.cubin, setup.kernel, setup.config, setup.workload

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def advise_many(
        self,
        requests: Sequence[AdvisingRequest],
        progress: Optional[ProgressCallback] = None,
    ) -> List[AdvisingResult]:
        """Execute every request; results come back in submission order."""
        results = list(self.stream(requests, progress=progress))
        results.sort(key=lambda result: result.index)
        return results

    def stream(
        self,
        requests: Sequence[AdvisingRequest],
        progress: Optional[ProgressCallback] = None,
    ) -> Iterator[AdvisingResult]:
        """Yield results in *completion* order (``result.index`` keeps the
        submission position).

        With ``jobs > 1`` and serializable requests the batch fans out
        across a process pool and results are yielded as workers finish;
        otherwise requests run inline, in order.  Pool-mode progress emits
        each request's start/done events as an adjacent pair at collection
        time (a worker's start cannot be observed live).
        """
        requests = list(requests)
        if self.jobs > 1 and len(requests) > 1:
            config = self._pool_config()
            payloads = self._serialized(requests) if config is not None else None
            if payloads is not None:
                yield from self._stream_pool(config, payloads, requests, progress)
                return
        yield from self._stream_inline(requests, progress)

    # ------------------------------------------------------------------
    def _stream_inline(self, requests, progress) -> Iterator[AdvisingResult]:
        emit = progress if progress is not None else (lambda event: None)
        total = len(requests)
        for index, request in enumerate(requests):
            label = request.describe()
            emit(ProgressEvent(label, index, total, "start"))
            result = self.advise(request, index=index)
            status = "done" if result.ok else "error"
            emit(ProgressEvent(label, index, total, status, result.duration, result.error))
            yield result

    def _stream_pool(self, config, payloads, requests, progress) -> Iterator[AdvisingResult]:
        emit = progress if progress is not None else (lambda event: None)
        total = len(requests)
        workers = min(self.jobs, total)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_pool_advise, config, payload, index): index
                for index, payload in enumerate(payloads)
            }
            for future in as_completed(futures):
                index = futures[future]
                request = requests[index]
                label = request.describe()
                try:
                    result = AdvisingResult.from_dict(future.result())
                except Exception:
                    # Pool-level failure: the worker process died or the
                    # payload could not cross the boundary.
                    result = AdvisingResult(
                        request=request, index=index, label=label,
                        arch_flag=request.arch_flag or self.arch_flag,
                        sample_period=request.sample_period or self.sample_period,
                        error=traceback.format_exc(),
                    )
                emit(ProgressEvent(label, index, total, "start"))
                status = "done" if result.ok else "error"
                emit(
                    ProgressEvent(
                        label, index, total, status, result.duration, result.error
                    )
                )
                yield result

    # ------------------------------------------------------------------
    def _pool_config(self) -> Optional[dict]:
        """The session as primitives for worker processes, or ``None``.

        ``None`` means the session cannot be rebuilt from primitives (a
        custom optimizer instance, an unregistered architecture model, an
        in-memory cache) and the batch must run inline.
        """
        if not self._optimizers_poolable:
            return None
        try:
            if get_architecture(self.arch_flag) != self.architecture:
                return None
        except ArchitectureError:
            return None
        return {
            "arch_flag": self.arch_flag,
            "sample_period": self.sample_period,
            "simulation_scope": self.simulation_scope,
            "memory_model": self.memory_model,
            "simulator_backend": self.simulator_backend,
            "cache_dir": str(self.cache.directory) if self.cache is not None else None,
            "optimizer_names": (
                list(self._optimizer_names) if self._optimizer_names else None
            ),
        }

    @staticmethod
    def _serialized(requests: Sequence[AdvisingRequest]) -> Optional[List[dict]]:
        """Wire forms of all requests, or ``None`` if any cannot cross."""
        from repro.api.schema import ApiSerializationError

        payloads = []
        for request in requests:
            try:
                payloads.append(request.to_dict())
            except ApiSerializationError:
                return None
        return payloads


def _pool_advise(config: dict, payload: dict, index: int) -> dict:
    """Worker: rebuild the session from primitives and run one request."""
    session = AdvisingSession(
        architecture=config["arch_flag"],
        optimizers=config["optimizer_names"],
        sample_period=config["sample_period"],
        cache=config["cache_dir"],
        jobs=1,
        simulation_scope=config.get("simulation_scope", "single_wave"),
        memory_model=config.get("memory_model", "flat"),
        simulator_backend=config.get("simulator_backend"),
    )
    request = AdvisingRequest.from_dict(payload)
    return session.advise(request, index=index).to_dict()
