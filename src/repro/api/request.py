"""The declarative advising request.

An :class:`AdvisingRequest` describes one advising job completely and
declaratively — *what* to analyze (a registry benchmark case, an inline
binary + launch, or a previously dumped profile) and *how* (architecture,
sample period, optimizer selection, cache policy) — without saying anything
about execution.  The same request object drives every execution mode of
:class:`~repro.api.session.AdvisingSession`: inline, ordered batch, and the
process-pool stream, where requests cross the process boundary through
:meth:`AdvisingRequest.to_dict`.

Construct requests directly, through the fluent :class:`RequestBuilder`
(``AdvisingRequest.builder().case("rodinia/hotspot:strength_reduction")
.arch("sm_80").build()``), or from a benchmark case object with
:func:`request_for_case`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.api.schema import (
    ApiSchemaError,
    ApiSerializationError,
    ApiValidationError,
    check_envelope,
    envelope,
    require_key,
)
from repro.arch.machine import ArchitectureError, get_architecture
from repro.cubin.binary import Cubin
from repro.sampling.memory import check_memory_model
from repro.sampling.profiler import check_simulation_scope
from repro.sampling.vector import check_simulator_backend
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.workload import WorkloadSpec

#: The three ways a request can name its subject.
SOURCES = ("case", "binary", "profile")
#: Benchmark-case variants (Table 3 pairs a baseline with a hand-tuned twin).
VARIANTS = ("baseline", "optimized")
#: Per-request cache behaviour: use the session cache as configured, skip it
#: entirely, or drop the entry first so the launch is re-simulated (and the
#: fresh profile stored).
CACHE_POLICIES = ("default", "bypass", "refresh")

#: Version of the request-fingerprint digest.  Bumped when the digest's
#: inputs change shape; deliberately decoupled from
#: :data:`~repro.api.schema.API_SCHEMA_VERSION` so an additive schema bump
#: does not invalidate idempotency keys clients already hold.
FINGERPRINT_VERSION = 1

#: Request fields the fingerprint deliberately ignores: ``label`` is
#: display-only — relabelling a request must not defeat coalescing.
FINGERPRINT_EXCLUDED = ("label",)


@dataclass(frozen=True)
class AdvisingRequest:
    """One advising job, validated at construction.

    Exactly one source is populated:

    * ``source="case"`` — ``case_id`` names a registry benchmark case and
      ``variant`` picks its baseline or hand-optimized setup;
    * ``source="binary"`` — ``cubin``/``kernel``/``config`` (and optionally
      ``workload``) describe an inline kernel launch;
    * ``source="profile"`` — ``profile`` is an already-collected
      :class:`~repro.sampling.sample.KernelProfile` and ``cubin`` the binary
      it was collected from; only the analysis stage runs.

    ``arch_flag``/``sample_period``/``simulation_scope``/``optimizers``
    default to ``None``, meaning "whatever the session was configured with";
    ``arch_flag`` set explicitly retargets the binary onto that architecture
    model, ``simulation_scope`` picks the simulation engine ("single_wave"
    extrapolates one simulated wave, "whole_gpu" measures the full grid
    across every SM).
    """

    source: str
    case_id: Optional[str] = None
    variant: str = "baseline"
    cubin: Optional[Cubin] = None
    kernel: Optional[str] = None
    config: Optional[LaunchConfig] = None
    workload: Optional[WorkloadSpec] = None
    profile: Optional[KernelProfile] = None
    arch_flag: Optional[str] = None
    sample_period: Optional[int] = None
    simulation_scope: Optional[str] = None
    memory_model: Optional[str] = None
    simulator_backend: Optional[str] = None
    optimizers: Optional[Tuple[str, ...]] = None
    cache_policy: str = "default"
    label: Optional[str] = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`~repro.api.schema.ApiValidationError` on bad shape."""
        if self.source not in SOURCES:
            raise ApiValidationError(
                f"unknown request source {self.source!r}; expected one of {SOURCES}"
            )
        if self.variant not in VARIANTS:
            raise ApiValidationError(
                f"unknown case variant {self.variant!r}; expected one of {VARIANTS}"
            )
        if self.cache_policy not in CACHE_POLICIES:
            raise ApiValidationError(
                f"unknown cache policy {self.cache_policy!r}; "
                f"expected one of {CACHE_POLICIES}"
            )
        if self.source == "case":
            if not self.case_id:
                raise ApiValidationError("a case request needs a case_id")
            if self.cubin is not None or self.profile is not None:
                raise ApiValidationError(
                    "a case request must not also carry a cubin or profile"
                )
        elif self.source == "binary":
            missing = [
                name
                for name, value in (
                    ("cubin", self.cubin),
                    ("kernel", self.kernel),
                    ("config", self.config),
                )
                if value is None
            ]
            if missing:
                raise ApiValidationError(
                    f"a binary request needs cubin, kernel and config "
                    f"(missing: {', '.join(missing)})"
                )
            if self.case_id is not None or self.profile is not None:
                raise ApiValidationError(
                    "a binary request must not also carry a case_id or profile"
                )
        else:  # profile
            if self.profile is None or self.cubin is None:
                raise ApiValidationError(
                    "a profile request needs both the profile and the cubin "
                    "it was collected from"
                )
            if self.case_id is not None:
                raise ApiValidationError(
                    "a profile request must not also carry a case_id"
                )
        if self.sample_period is not None and self.sample_period <= 0:
            raise ApiValidationError(
                f"sample_period must be positive, got {self.sample_period}"
            )
        if self.simulation_scope is not None:
            try:
                check_simulation_scope(self.simulation_scope)
            except ValueError as exc:
                raise ApiValidationError(str(exc)) from exc
        if self.memory_model is not None:
            try:
                check_memory_model(self.memory_model)
            except ValueError as exc:
                raise ApiValidationError(str(exc)) from exc
        if self.simulator_backend is not None:
            try:
                check_simulator_backend(self.simulator_backend)
            except ValueError as exc:
                raise ApiValidationError(str(exc)) from exc
        if self.arch_flag is not None:
            try:
                get_architecture(self.arch_flag)
            except ArchitectureError as exc:
                raise ApiValidationError(str(exc)) from exc
        if self.optimizers is not None:
            if not isinstance(self.optimizers, tuple) or not all(
                isinstance(name, str) for name in self.optimizers
            ):
                raise ApiValidationError(
                    "optimizers must be a tuple of optimizer names"
                )
            if not self.optimizers:
                raise ApiValidationError(
                    "optimizers must name at least one optimizer (or be None "
                    "for the session's full set)"
                )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short display label (used for progress events and results)."""
        if self.label:
            return self.label
        if self.source == "case":
            suffix = "" if self.variant == "baseline" else f"@{self.variant}"
            return f"{self.case_id}{suffix}"
        if self.source == "binary":
            return str(self.kernel)
        return f"{self.profile.kernel if self.profile else '?'}@profile"

    @staticmethod
    def builder() -> "RequestBuilder":
        return RequestBuilder()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _wire_body(self) -> dict:
        """The envelope-free field dict both the wire form and the
        fingerprint are built from."""
        return {
            "source": self.source,
            "case_id": self.case_id,
            "variant": self.variant,
            "cubin": self.cubin.to_dict() if self.cubin is not None else None,
            "kernel": self.kernel,
            "config": self.config.to_dict() if self.config is not None else None,
            "workload": self.workload.to_dict() if self.workload is not None else None,
            "profile": self.profile.to_dict() if self.profile is not None else None,
            "arch_flag": self.arch_flag,
            "sample_period": self.sample_period,
            "simulation_scope": self.simulation_scope,
            "memory_model": self.memory_model,
            "simulator_backend": self.simulator_backend,
            "optimizers": list(self.optimizers) if self.optimizers is not None else None,
            "cache_policy": self.cache_policy,
            "label": self.label,
        }

    def fingerprint(self) -> str:
        """The public content digest of this request.

        Two requests share a fingerprint exactly when they describe the same
        job with the same knobs — the ``label`` is display-only and excluded.
        This is the key the advising service coalesces concurrent identical
        submissions under, and the idempotency key a client should attach to
        retried submissions (see :meth:`RequestBuilder.idempotency_key`).

        The digest covers the canonical wire form, so it is stable across
        processes and daemon restarts; it is salted with
        :data:`FINGERPRINT_VERSION`, not the API schema version, so additive
        schema bumps do not invalidate held keys.  Raises
        :class:`~repro.api.schema.ApiSerializationError` for requests that
        cannot be serialized (callable workload parameters) — such requests
        can only run inline, where coalescing never applies.
        """
        body = self._wire_body()
        for name in FINGERPRINT_EXCLUDED:
            del body[name]
        try:
            text = json.dumps(body, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise ApiSerializationError(
                f"request cannot be fingerprinted: {exc}"
            ) from exc
        hasher = hashlib.sha256()
        hasher.update(f"fp{FINGERPRINT_VERSION}\x00".encode("utf-8"))
        hasher.update(text.encode("utf-8"))
        return hasher.hexdigest()

    def to_dict(self) -> dict:
        """The lossless wire form (inverse: :meth:`from_dict`).

        Carries the request's :meth:`fingerprint` so services receiving the
        payload can content-address it without re-deriving anything.  Raises
        :class:`~repro.api.schema.ApiSerializationError` when the request
        embeds a workload with callable parameters — such requests can only
        run inline.
        """
        body = self._wire_body()
        body["fingerprint"] = self.fingerprint()
        return envelope("advising_request", body)

    @classmethod
    def from_dict(cls, payload: dict) -> "AdvisingRequest":
        payload = check_envelope(payload, "advising_request")
        cubin = payload.get("cubin")
        config = payload.get("config")
        workload = payload.get("workload")
        profile = payload.get("profile")
        optimizers = payload.get("optimizers")
        request = cls(
            source=require_key(payload, "source", "advising_request"),
            case_id=payload.get("case_id"),
            variant=payload.get("variant", "baseline"),
            cubin=Cubin.from_dict(cubin) if cubin is not None else None,
            kernel=payload.get("kernel"),
            config=LaunchConfig.from_dict(config) if config is not None else None,
            workload=WorkloadSpec.from_dict(workload) if workload is not None else None,
            profile=KernelProfile.from_dict(profile) if profile is not None else None,
            arch_flag=payload.get("arch_flag"),
            sample_period=payload.get("sample_period"),
            simulation_scope=payload.get("simulation_scope"),
            memory_model=payload.get("memory_model"),
            simulator_backend=payload.get("simulator_backend"),
            optimizers=tuple(optimizers) if optimizers is not None else None,
            cache_policy=payload.get("cache_policy", "default"),
            label=payload.get("label"),
        )
        stated = payload.get("fingerprint")
        if stated is not None and stated != request.fingerprint():
            # Strict: a mis-stated fingerprint means the payload was edited
            # after digesting (or forged for a coalescing collision); reject
            # it rather than silently re-keying.
            raise ApiSchemaError(
                f"advising_request fingerprint mismatch: payload states "
                f"{stated!r} but its content digests to "
                f"{request.fingerprint()!r}"
            )
        return request

    def is_serializable(self) -> bool:
        """Whether this request can cross a process/service boundary."""
        try:
            self.to_dict()
        except ApiSerializationError:
            return False
        return True


class RequestBuilder:
    """Fluent construction of :class:`AdvisingRequest` objects.

    Every method returns the builder, so requests read as one chain::

        request = (AdvisingRequest.builder()
                   .case("rodinia/hotspot:strength_reduction")
                   .arch("sm_80")
                   .sample_period(8)
                   .bypass_cache()
                   .build())

    Validation happens in :meth:`build` (which simply constructs the
    request, whose ``__post_init__`` validates).
    """

    def __init__(self) -> None:
        self._fields: dict = {}

    # -- sources -------------------------------------------------------
    def case(self, case_id: str, variant: str = "baseline") -> "RequestBuilder":
        self._set_source("case")
        self._fields["case_id"] = case_id
        self._fields["variant"] = variant
        return self

    def optimized(self) -> "RequestBuilder":
        """Select the hand-optimized variant of the chosen case."""
        self._fields["variant"] = "optimized"
        return self

    def binary(
        self,
        cubin: Cubin,
        kernel: str,
        config: LaunchConfig,
        workload: Optional[WorkloadSpec] = None,
    ) -> "RequestBuilder":
        self._set_source("binary")
        self._fields.update(cubin=cubin, kernel=kernel, config=config, workload=workload)
        return self

    def profile(self, profile: KernelProfile, cubin: Cubin) -> "RequestBuilder":
        self._set_source("profile")
        self._fields.update(profile=profile, cubin=cubin)
        return self

    def sass_listing(
        self,
        text: str,
        kernel: Optional[str] = None,
        config: Optional[LaunchConfig] = None,
        workload: Optional[WorkloadSpec] = None,
        source_name: str = "<sass>",
        default_arch: str = "sm_70",
    ) -> "RequestBuilder":
        """Describe the job from raw ``nvdisasm``/``cuobjdump`` disassembly.

        The listing is ingested through :mod:`repro.sass` into a ``binary``
        source; ``kernel`` defaults to the listing's only function (ambiguous
        listings must name one), ``config`` to a single 128-thread block —
        enough for linting, while advising runs usually pass a real launch.
        """
        # Imported lazily: `import repro.api` must not pull the SASS frontend.
        from repro.sass.frontend import ingest_listing

        cubin, _ingest = ingest_listing(
            text, source_name=source_name, default_arch=default_arch
        )
        if kernel is None:
            if len(cubin.functions) != 1:
                raise ApiValidationError(
                    f"listing {source_name!r} defines "
                    f"{sorted(cubin.functions)}; pass kernel= to pick one"
                )
            (kernel,) = cubin.functions
        return self.binary(
            cubin,
            kernel,
            config or LaunchConfig(grid_blocks=1, threads_per_block=128),
            workload,
        ).label(source_name)

    # -- knobs ---------------------------------------------------------
    def arch(self, arch_flag: str) -> "RequestBuilder":
        self._fields["arch_flag"] = arch_flag
        return self

    def sample_period(self, period: int) -> "RequestBuilder":
        self._fields["sample_period"] = period
        return self

    def simulation_scope(self, scope: str) -> "RequestBuilder":
        self._fields["simulation_scope"] = scope
        return self

    def whole_gpu(self) -> "RequestBuilder":
        """Simulate the full grid across every SM instead of extrapolating."""
        return self.simulation_scope("whole_gpu")

    def memory_model(self, model: str) -> "RequestBuilder":
        self._fields["memory_model"] = model
        return self

    def memory_hierarchy(self) -> "RequestBuilder":
        """Service memory through the detailed L1/L2/DRAM hierarchy model."""
        return self.memory_model("hierarchy")

    def simulator_backend(self, backend: str) -> "RequestBuilder":
        self._fields["simulator_backend"] = backend
        return self

    def object_backend(self) -> "RequestBuilder":
        """Walk traces on the reference object-model core."""
        return self.simulator_backend("object")

    def vector_backend(self) -> "RequestBuilder":
        """Walk traces on the array-based vector core (the default)."""
        return self.simulator_backend("vector")

    def optimizers(self, *names: str) -> "RequestBuilder":
        self._fields["optimizers"] = tuple(names)
        return self

    def cache_policy(self, policy: str) -> "RequestBuilder":
        self._fields["cache_policy"] = policy
        return self

    def bypass_cache(self) -> "RequestBuilder":
        return self.cache_policy("bypass")

    def refresh_cache(self) -> "RequestBuilder":
        return self.cache_policy("refresh")

    def label(self, label: str) -> "RequestBuilder":
        self._fields["label"] = label
        return self

    # ------------------------------------------------------------------
    def _set_source(self, source: str) -> None:
        existing = self._fields.get("source")
        if existing is not None and existing != source:
            raise ApiValidationError(
                f"request already has source {existing!r}; cannot also set {source!r}"
            )
        self._fields["source"] = source

    def build(self) -> AdvisingRequest:
        if "source" not in self._fields:
            raise ApiValidationError(
                "request needs a source: call .case(), .binary() or .profile()"
            )
        return AdvisingRequest(**self._fields)

    def idempotency_key(self) -> str:
        """The :meth:`AdvisingRequest.fingerprint` of the built request.

        Two builders that describe the same work — regardless of
        ``label`` — produce the same key, so callers can deduplicate
        submissions before ever talking to a service.  Validates the
        builder state exactly like :meth:`build`.
        """
        return self.build().fingerprint()


def request_for_case(
    case_or_id,
    variant: str = "baseline",
    arch_flag: Optional[str] = None,
    sample_period: Optional[int] = None,
    cache_policy: str = "default",
    optimizers: Optional[Tuple[str, ...]] = None,
    simulation_scope: Optional[str] = None,
    memory_model: Optional[str] = None,
    simulator_backend: Optional[str] = None,
) -> AdvisingRequest:
    """The request for one benchmark case (id, registry case, or ad-hoc case).

    Registry-backed cases become ``case``-source requests (cheap to
    serialize, so they fan out across process pools); an ad-hoc
    :class:`~repro.workloads.base.BenchmarkCase` not present in the registry
    is materialized into a ``binary``-source request built from its setup.
    """
    # Imported lazily: the registry pulls in every workload module, which
    # `import repro.api` must not pay for.
    from repro.pipeline.batch import _is_registry_case

    if isinstance(case_or_id, str):
        return AdvisingRequest(
            source="case", case_id=case_or_id, variant=variant,
            arch_flag=arch_flag, sample_period=sample_period,
            simulation_scope=simulation_scope, memory_model=memory_model,
            simulator_backend=simulator_backend,
            cache_policy=cache_policy, optimizers=optimizers,
            label=case_or_id,
        )
    case = case_or_id
    if _is_registry_case(case):
        return AdvisingRequest(
            source="case", case_id=case.case_id, variant=variant,
            arch_flag=arch_flag, sample_period=sample_period,
            simulation_scope=simulation_scope, memory_model=memory_model,
            simulator_backend=simulator_backend,
            cache_policy=cache_policy, optimizers=optimizers,
            label=case.case_id,
        )
    setup = case.build_optimized() if variant == "optimized" else case.build_baseline()
    return AdvisingRequest(
        source="binary", cubin=setup.cubin, kernel=setup.kernel,
        config=setup.config, workload=setup.workload,
        arch_flag=arch_flag, sample_period=sample_period,
        simulation_scope=simulation_scope, memory_model=memory_model,
        simulator_backend=simulator_backend,
        cache_policy=cache_policy, optimizers=optimizers,
        label=case.case_id,
    )
