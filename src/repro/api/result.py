"""The typed advising result.

An :class:`AdvisingResult` is the outcome of one :class:`~repro.api.request
.AdvisingRequest`: the ranked :class:`~repro.advisor.report.AdviceReport` on
success or the captured traceback on failure, plus the submission index, the
resolved architecture/sample period and the wall-clock duration.  Results
serialize losslessly (``to_dict``/``from_dict`` under
:data:`~repro.api.schema.API_SCHEMA_VERSION`): a result dumped by a pool
worker is byte-identical after reload, which is exactly how
:meth:`~repro.api.session.AdvisingSession.stream` moves results between
processes — and how a service daemon would move them between machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.advisor.report import AdviceReport
from repro.api.request import AdvisingRequest
from repro.api.schema import ApiError, check_envelope, envelope, require_key


class AdvisingError(ApiError, RuntimeError):
    """Raised when a caller demands the report of a failed result."""

    def __init__(self, result: "AdvisingResult"):
        self.result = result
        summary = (result.error or "").strip().splitlines()
        super().__init__(
            f"advising {result.label or result.request.describe()!r} failed: "
            f"{summary[-1] if summary else 'unknown error'}"
        )


@dataclass
class AdvisingResult:
    """What happened to one advising request."""

    request: AdvisingRequest
    #: Submission index within its batch (0 for single requests); streamed
    #: results arrive in completion order but keep their submission index.
    index: int = 0
    #: Display label (the request's ``describe()`` unless overridden).
    label: str = ""
    #: Architecture flag, sample period and simulation scope the job actually
    #: ran with (the request's knobs with session defaults filled in).
    arch_flag: str = ""
    sample_period: int = 0
    simulation_scope: str = "single_wave"
    memory_model: str = "flat"
    report: Optional[AdviceReport] = None
    error: Optional[str] = None
    duration: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    def require_report(self) -> AdviceReport:
        """The report, or :class:`AdvisingError` if the request failed."""
        if self.report is None:
            raise AdvisingError(self)
        return self.report

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from repro.api.schema import canonical_json

        return envelope(
            "advising_result",
            {
                "request": self.request.to_dict(),
                "index": self.index,
                "label": self.label,
                "arch_flag": self.arch_flag,
                "sample_period": self.sample_period,
                "simulation_scope": self.simulation_scope,
                "memory_model": self.memory_model,
                "report": self.report.to_dict() if self.report is not None else None,
                "error": self.error,
                "duration": self.duration,
                "extra": canonical_json(self.extra, context="result extra"),
            },
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "AdvisingResult":
        payload = check_envelope(payload, "advising_result")
        report = payload.get("report")
        return cls(
            request=AdvisingRequest.from_dict(
                require_key(payload, "request", "advising_result")
            ),
            index=payload.get("index", 0),
            label=payload.get("label", ""),
            arch_flag=payload.get("arch_flag", ""),
            sample_period=payload.get("sample_period", 0),
            simulation_scope=payload.get("simulation_scope", "single_wave"),
            memory_model=payload.get("memory_model", "flat"),
            report=AdviceReport.from_dict(report) if report is not None else None,
            error=payload.get("error"),
            duration=payload.get("duration", 0.0),
            extra=payload.get("extra") or {},
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AdvisingResult":
        return cls.from_dict(json.loads(text))


def dump_jsonl(results: Iterable[AdvisingResult]) -> Iterator[str]:
    """One compact JSON line per result (the CLI's ``--output jsonl``)."""
    for result in results:
        yield json.dumps(result.to_dict(), separators=(",", ":"))


def load_jsonl(lines: Iterable[str]) -> Iterator[AdvisingResult]:
    """Reload results dumped by :func:`dump_jsonl` (blank lines skipped)."""
    for line in lines:
        line = line.strip()
        if line:
            yield AdvisingResult.from_json(line)
