"""Opcode catalog for the SASS-like ISA.

Each opcode carries the metadata GPA needs:

* an :class:`InstructionClass` used by the opcode-based pruning rule and by
  the optimizers' matching rules (e.g. Strength Reduction matches *long
  latency arithmetic* instructions, Fast Math matches SFU-emulated math),
* a :class:`LatencyClass` distinguishing fixed-latency instructions (whose
  control code carries stall cycles) from variable-latency instructions
  (which communicate completion through barrier registers),
* nominal issue latency and completion latency for a Volta-class machine,
  following the microbenchmark numbers of Jia et al. (arXiv:1804.06826) at
  the granularity GPA needs (relative magnitudes for the latency-based
  pruning rule and for the execution simulator),
* the memory space touched by memory instructions, used by the Figure 5
  stall-reason classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.registers import MemorySpace


class InstructionClass(enum.Enum):
    """Coarse functional class of an opcode."""

    INTEGER = "integer"
    INTEGER_LONG = "integer_long"  # multi-cycle integer (IMAD.WIDE, emulated division)
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    CONVERSION = "conversion"
    SFU = "sfu"  # special function unit (MUFU.*): rcp, sqrt, sin, exp ...
    MEMORY_LOAD = "memory_load"
    MEMORY_STORE = "memory_store"
    SYNC = "sync"
    CONTROL = "control"
    MOVE = "move"
    PREDICATE_OP = "predicate_op"
    SPECIAL = "special"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (InstructionClass.MEMORY_LOAD, InstructionClass.MEMORY_STORE)

    @property
    def is_arithmetic(self) -> bool:
        return self in (
            InstructionClass.INTEGER,
            InstructionClass.INTEGER_LONG,
            InstructionClass.FLOAT32,
            InstructionClass.FLOAT64,
            InstructionClass.CONVERSION,
            InstructionClass.SFU,
        )


class LatencyClass(enum.Enum):
    """Whether completion time is known to the assembler.

    Fixed-latency instructions (most arithmetic) are handled by stall cycles
    in the control code; variable-latency instructions (memory, SFU,
    barriers) set write/read barriers and their consumers carry wait masks.
    """

    FIXED = "fixed"
    VARIABLE = "variable"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata for one opcode."""

    name: str
    klass: InstructionClass
    latency_class: LatencyClass
    #: Cycles until the result may be consumed (fixed-latency) or a typical
    #: completion latency used by the simulator (variable-latency).
    latency: int
    #: Upper-bound latency used by the instruction-latency pruning rule.  For
    #: fixed-latency instructions this equals ``latency``; for variable
    #: latency instructions it is a pessimistic bound (e.g. a TLB miss for
    #: global loads).
    latency_upper_bound: int
    #: Address space for memory instructions, ``None`` otherwise.
    memory_space: Optional[MemorySpace] = None
    #: Issue cycles occupied on the scheduler (dual-issue is not modelled).
    issue_cycles: int = 1
    #: Human-readable description (used in reports and documentation).
    description: str = ""

    @property
    def is_load(self) -> bool:
        return self.klass is InstructionClass.MEMORY_LOAD

    @property
    def is_store(self) -> bool:
        return self.klass is InstructionClass.MEMORY_STORE

    @property
    def is_memory(self) -> bool:
        return self.klass.is_memory

    @property
    def is_variable_latency(self) -> bool:
        return self.latency_class is LatencyClass.VARIABLE

    @property
    def is_synchronization(self) -> bool:
        return self.klass is InstructionClass.SYNC

    @property
    def is_control(self) -> bool:
        return self.klass is InstructionClass.CONTROL


def _op(
    name: str,
    klass: InstructionClass,
    latency_class: LatencyClass,
    latency: int,
    upper: Optional[int] = None,
    space: Optional[MemorySpace] = None,
    description: str = "",
) -> OpcodeInfo:
    return OpcodeInfo(
        name=name,
        klass=klass,
        latency_class=latency_class,
        latency=latency,
        latency_upper_bound=upper if upper is not None else latency,
        memory_space=space,
        description=description,
    )


_FIXED = LatencyClass.FIXED
_VAR = LatencyClass.VARIABLE

#: Latency upper bound used for global/local memory instructions: the paper
#: uses "the TLB miss latency as the upper bound latency of global memory
#: instructions" for the latency-based pruning rule.
GLOBAL_MEMORY_UPPER_BOUND = 1029
LOCAL_MEMORY_UPPER_BOUND = 1029
SHARED_MEMORY_UPPER_BOUND = 64
CONSTANT_MEMORY_UPPER_BOUND = 658


#: The opcode catalog.  Latencies follow Volta microbenchmarking results at
#: the fidelity GPA requires: 4-cycle core ALU, ~5-cycle IMAD, 8-cycle FP64,
#: mid-teens SFU/conversion, ~20-30 cycle shared memory, hundreds of cycles
#: for global/local memory.
OPCODES: Dict[str, OpcodeInfo] = {
    op.name: op
    for op in [
        # --- integer ALU -------------------------------------------------
        _op("IADD", InstructionClass.INTEGER, _FIXED, 4, description="32-bit integer add"),
        _op("IADD3", InstructionClass.INTEGER, _FIXED, 4, description="3-input integer add"),
        _op("ISUB", InstructionClass.INTEGER, _FIXED, 4, description="32-bit integer subtract"),
        _op("IMNMX", InstructionClass.INTEGER, _FIXED, 4, description="integer min/max"),
        _op("SHL", InstructionClass.INTEGER, _FIXED, 4, description="shift left"),
        _op("SHR", InstructionClass.INTEGER, _FIXED, 4, description="shift right"),
        _op("SHF", InstructionClass.INTEGER, _FIXED, 4, description="funnel shift"),
        _op("LOP", InstructionClass.INTEGER, _FIXED, 4, description="logic op"),
        _op("LOP3", InstructionClass.INTEGER, _FIXED, 4, description="3-input logic op"),
        _op("LEA", InstructionClass.INTEGER, _FIXED, 4, description="load effective address"),
        _op("XMAD", InstructionClass.INTEGER, _FIXED, 5, description="16x16+32 multiply-add"),
        _op("IMAD", InstructionClass.INTEGER_LONG, _FIXED, 5, description="integer multiply-add"),
        _op("IMUL", InstructionClass.INTEGER_LONG, _FIXED, 13, description="32-bit integer multiply"),
        _op("IMAD.WIDE", InstructionClass.INTEGER_LONG, _FIXED, 11, description="64-bit integer multiply-add"),
        _op("IDIV", InstructionClass.INTEGER_LONG, _FIXED, 130,
            description="emulated integer division (multi-instruction sequence on real HW)"),
        _op("IABS", InstructionClass.INTEGER, _FIXED, 4, description="integer absolute value"),
        _op("POPC", InstructionClass.INTEGER, _FIXED, 10, description="population count"),
        _op("FLO", InstructionClass.INTEGER, _FIXED, 10, description="find leading one"),
        _op("BFE", InstructionClass.INTEGER, _FIXED, 4, description="bit field extract"),
        _op("BFI", InstructionClass.INTEGER, _FIXED, 4, description="bit field insert"),
        _op("PRMT", InstructionClass.INTEGER, _FIXED, 4, description="byte permute"),
        _op("SGXT", InstructionClass.INTEGER, _FIXED, 4, description="sign extend bit field"),
        _op("BMSK", InstructionClass.INTEGER, _FIXED, 4, description="bit mask create"),
        _op("BREV", InstructionClass.INTEGER, _FIXED, 4, description="bit reverse"),
        _op("IADD32I", InstructionClass.INTEGER, _FIXED, 4, description="integer add 32-bit immediate"),
        _op("LOP32I", InstructionClass.INTEGER, _FIXED, 4, description="logic op with 32-bit immediate"),
        _op("ISCADD", InstructionClass.INTEGER, _FIXED, 4, description="scaled integer add"),
        # --- uniform datapath (Turing+) ------------------------------------
        _op("UMOV", InstructionClass.MOVE, _FIXED, 4, description="uniform register move"),
        _op("USEL", InstructionClass.MOVE, _FIXED, 4, description="uniform predicated select"),
        _op("UIADD3", InstructionClass.INTEGER, _FIXED, 4, description="uniform 3-input integer add"),
        _op("ULOP3", InstructionClass.INTEGER, _FIXED, 4, description="uniform 3-input logic op"),
        _op("ULEA", InstructionClass.INTEGER, _FIXED, 4, description="uniform load effective address"),
        _op("USHF", InstructionClass.INTEGER, _FIXED, 4, description="uniform funnel shift"),
        _op("UISETP", InstructionClass.PREDICATE_OP, _FIXED, 5, description="uniform integer compare to predicate"),
        _op("ULDC", InstructionClass.MEMORY_LOAD, _VAR, 30, CONSTANT_MEMORY_UPPER_BOUND,
            MemorySpace.CONSTANT, "uniform constant memory load"),
        _op("R2UR", InstructionClass.MOVE, _FIXED, 5, description="register to uniform register"),
        _op("VOTEU", InstructionClass.MOVE, _FIXED, 4, description="warp vote to uniform register"),
        # --- 32-bit floating point ---------------------------------------
        _op("FADD", InstructionClass.FLOAT32, _FIXED, 4, description="fp32 add"),
        _op("FMUL", InstructionClass.FLOAT32, _FIXED, 4, description="fp32 multiply"),
        _op("FFMA", InstructionClass.FLOAT32, _FIXED, 4, description="fp32 fused multiply-add"),
        _op("FMNMX", InstructionClass.FLOAT32, _FIXED, 4, description="fp32 min/max"),
        _op("FSET", InstructionClass.FLOAT32, _FIXED, 4, description="fp32 compare to register"),
        _op("FSEL", InstructionClass.FLOAT32, _FIXED, 4, description="fp32 predicated select"),
        _op("FCHK", InstructionClass.FLOAT32, _FIXED, 13, description="fp division range check"),
        # --- packed 16-bit floating point ---------------------------------
        _op("HADD2", InstructionClass.FLOAT32, _FIXED, 4, description="packed fp16 add"),
        _op("HMUL2", InstructionClass.FLOAT32, _FIXED, 4, description="packed fp16 multiply"),
        _op("HFMA2", InstructionClass.FLOAT32, _FIXED, 4, description="packed fp16 fused multiply-add"),
        _op("HSET2", InstructionClass.FLOAT32, _FIXED, 4, description="packed fp16 compare to register"),
        _op("HSETP2", InstructionClass.PREDICATE_OP, _FIXED, 5, description="packed fp16 compare to predicate"),
        # --- tensor core ---------------------------------------------------
        _op("HMMA", InstructionClass.FLOAT32, _FIXED, 16, description="tensor-core fp16 matrix multiply-accumulate"),
        _op("IMMA", InstructionClass.INTEGER_LONG, _FIXED, 16, description="tensor-core integer matrix multiply-accumulate"),
        _op("BMMA", InstructionClass.INTEGER_LONG, _FIXED, 16, description="tensor-core binary matrix multiply-accumulate"),
        # --- 64-bit floating point ---------------------------------------
        _op("DADD", InstructionClass.FLOAT64, _FIXED, 8, description="fp64 add"),
        _op("DMUL", InstructionClass.FLOAT64, _FIXED, 8, description="fp64 multiply"),
        _op("DFMA", InstructionClass.FLOAT64, _FIXED, 8, description="fp64 fused multiply-add"),
        _op("DSETP", InstructionClass.FLOAT64, _FIXED, 12, description="fp64 compare to predicate"),
        # --- conversions ---------------------------------------------------
        _op("F2F", InstructionClass.CONVERSION, _FIXED, 15,
            description="float-to-float conversion (e.g. fp32 <-> fp64 demotion/promotion)"),
        _op("F2I", InstructionClass.CONVERSION, _FIXED, 15, description="float-to-integer conversion"),
        _op("I2F", InstructionClass.CONVERSION, _FIXED, 15, description="integer-to-float conversion"),
        _op("I2I", InstructionClass.CONVERSION, _FIXED, 6, description="integer width conversion"),
        # --- special function unit ----------------------------------------
        _op("MUFU", InstructionClass.SFU, _VAR, 18, 32,
            description="multi-function unit op: RCP, RSQ, SQRT, SIN, COS, EX2, LG2"),
        _op("RRO", InstructionClass.SFU, _FIXED, 15, description="range reduction for MUFU"),
        # --- predicate / compare ------------------------------------------
        _op("ISETP", InstructionClass.PREDICATE_OP, _FIXED, 5, description="integer compare to predicate"),
        _op("FSETP", InstructionClass.PREDICATE_OP, _FIXED, 5, description="fp32 compare to predicate"),
        _op("PSETP", InstructionClass.PREDICATE_OP, _FIXED, 5, description="predicate logic op"),
        _op("PLOP3", InstructionClass.PREDICATE_OP, _FIXED, 5, description="3-input predicate logic op"),
        _op("P2R", InstructionClass.PREDICATE_OP, _FIXED, 4, description="predicates to register"),
        _op("R2P", InstructionClass.PREDICATE_OP, _FIXED, 4, description="register to predicates"),
        # --- data movement -------------------------------------------------
        _op("MOV", InstructionClass.MOVE, _FIXED, 4, description="register move"),
        _op("MOV32I", InstructionClass.MOVE, _FIXED, 4, description="move 32-bit immediate"),
        _op("SEL", InstructionClass.MOVE, _FIXED, 4, description="predicated select"),
        _op("SHFL", InstructionClass.MOVE, _VAR, 25, 35, description="warp shuffle"),
        _op("VOTE", InstructionClass.MOVE, _FIXED, 4, description="warp vote"),
        _op("S2R", InstructionClass.SPECIAL, _VAR, 12, 25,
            description="read special register (thread/block indices)"),
        _op("CS2R", InstructionClass.SPECIAL, _FIXED, 4, description="fast special register read"),
        # --- memory: global ------------------------------------------------
        _op("LDG", InstructionClass.MEMORY_LOAD, _VAR, 400, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GLOBAL, "global memory load"),
        _op("STG", InstructionClass.MEMORY_STORE, _VAR, 24, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GLOBAL, "global memory store"),
        _op("LD", InstructionClass.MEMORY_LOAD, _VAR, 400, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GENERIC, "generic load"),
        _op("ST", InstructionClass.MEMORY_STORE, _VAR, 24, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GENERIC, "generic store"),
        _op("RED", InstructionClass.MEMORY_STORE, _VAR, 30, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GLOBAL, "global reduction"),
        _op("ATOM", InstructionClass.MEMORY_LOAD, _VAR, 450, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GLOBAL, "global atomic"),
        _op("ATOMG", InstructionClass.MEMORY_LOAD, _VAR, 450, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GLOBAL, "global atomic"),
        # --- memory: local (register spills) --------------------------------
        _op("LDL", InstructionClass.MEMORY_LOAD, _VAR, 350, LOCAL_MEMORY_UPPER_BOUND,
            MemorySpace.LOCAL, "local memory load (register spill reload)"),
        _op("STL", InstructionClass.MEMORY_STORE, _VAR, 24, LOCAL_MEMORY_UPPER_BOUND,
            MemorySpace.LOCAL, "local memory store (register spill)"),
        # --- memory: shared --------------------------------------------------
        _op("LDS", InstructionClass.MEMORY_LOAD, _VAR, 25, SHARED_MEMORY_UPPER_BOUND,
            MemorySpace.SHARED, "shared memory load"),
        _op("LDSM", InstructionClass.MEMORY_LOAD, _VAR, 25, SHARED_MEMORY_UPPER_BOUND,
            MemorySpace.SHARED, "load matrix from shared memory (tensor-core feed)"),
        _op("LDGSTS", InstructionClass.MEMORY_LOAD, _VAR, 400, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.GLOBAL, "asynchronous global-to-shared copy (sm_80)"),
        _op("STS", InstructionClass.MEMORY_STORE, _VAR, 20, SHARED_MEMORY_UPPER_BOUND,
            MemorySpace.SHARED, "shared memory store"),
        _op("ATOMS", InstructionClass.MEMORY_LOAD, _VAR, 40, SHARED_MEMORY_UPPER_BOUND,
            MemorySpace.SHARED, "shared memory atomic"),
        # --- memory: constant -------------------------------------------------
        _op("LDC", InstructionClass.MEMORY_LOAD, _VAR, 30, CONSTANT_MEMORY_UPPER_BOUND,
            MemorySpace.CONSTANT, "constant memory load"),
        # --- memory: texture ---------------------------------------------------
        _op("TEX", InstructionClass.MEMORY_LOAD, _VAR, 440, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.TEXTURE, "texture fetch"),
        _op("TLD", InstructionClass.MEMORY_LOAD, _VAR, 440, GLOBAL_MEMORY_UPPER_BOUND,
            MemorySpace.TEXTURE, "texture load"),
        # --- synchronization -----------------------------------------------------
        _op("BAR", InstructionClass.SYNC, _VAR, 30, 2000, None,
            "block-wide barrier (__syncthreads)"),
        _op("MEMBAR", InstructionClass.SYNC, _VAR, 30, 600, None, "memory fence"),
        _op("DEPBAR", InstructionClass.SYNC, _VAR, 10, 200, None, "dependency barrier"),
        _op("WARPSYNC", InstructionClass.SYNC, _VAR, 20, 200, None, "warp-wide reconvergence sync"),
        # --- control flow ------------------------------------------------------
        _op("BRA", InstructionClass.CONTROL, _FIXED, 5, description="branch"),
        _op("BRX", InstructionClass.CONTROL, _FIXED, 5, description="indexed branch"),
        _op("JMP", InstructionClass.CONTROL, _FIXED, 5, description="jump"),
        _op("CAL", InstructionClass.CONTROL, _FIXED, 6, description="call device function"),
        _op("CALL", InstructionClass.CONTROL, _FIXED, 6, description="call device function"),
        _op("RET", InstructionClass.CONTROL, _FIXED, 6, description="return"),
        _op("EXIT", InstructionClass.CONTROL, _FIXED, 1, description="thread exit"),
        _op("BSSY", InstructionClass.CONTROL, _FIXED, 4, description="branch synchronization setup"),
        _op("BSYNC", InstructionClass.CONTROL, _FIXED, 4, description="branch reconvergence"),
        _op("SSY", InstructionClass.CONTROL, _FIXED, 4, description="set synchronization point"),
        _op("SYNC", InstructionClass.CONTROL, _FIXED, 4, description="reconverge"),
        _op("BMOV", InstructionClass.CONTROL, _FIXED, 4, description="convergence barrier state move"),
        _op("KILL", InstructionClass.CONTROL, _FIXED, 1, description="kill thread"),
        # --- nop ---------------------------------------------------------------
        _op("NOP", InstructionClass.NOP, _FIXED, 1, description="no operation"),
        _op("YIELD", InstructionClass.NOP, _FIXED, 1, description="yield to another warp"),
        _op("NANOSLEEP", InstructionClass.SPECIAL, _FIXED, 4, description="timed sleep hint"),
    ]
}


def lookup_opcode(name: str) -> OpcodeInfo:
    """Look up opcode metadata for ``name``.

    The base opcode of a mnemonic with modifiers (``LDG.E.32``) is the part
    before the first dot, except for multi-part opcodes explicitly present in
    the catalog (``IMAD.WIDE``).
    """
    if name in OPCODES:
        return OPCODES[name]
    base = name.split(".", 1)[0]
    if base in OPCODES:
        return OPCODES[base]
    raise KeyError(f"unknown opcode: {name!r}")


#: Conservative metadata substituted for opcodes absent from the catalog.
#: Real disassembly listings contain instructions we do not model (cache
#: control, surface ops, new-architecture additions); analyses must keep
#: working on the rest of the kernel, so unknown opcodes decode as a
#: variable-latency special op with a pessimistic latency bound and no
#: memory-space claim.
UNKNOWN_OPCODE_INFO = OpcodeInfo(
    name="<unknown>",
    klass=InstructionClass.SPECIAL,
    latency_class=LatencyClass.VARIABLE,
    latency=30,
    latency_upper_bound=GLOBAL_MEMORY_UPPER_BOUND,
    description="opcode absent from the catalog (conservative defaults)",
)


def opcode_is_known(name: str) -> bool:
    """Whether ``name`` (full mnemonic or base opcode) is in the catalog."""
    return name in OPCODES or name.split(".", 1)[0] in OPCODES


def lookup_opcode_tolerant(name: str) -> OpcodeInfo:
    """Like :func:`lookup_opcode`, but unknown opcodes get conservative
    :data:`UNKNOWN_OPCODE_INFO` instead of raising.  This is what
    :attr:`repro.isa.instruction.Instruction.info` uses, so instruction
    streams ingested from real disassembly never crash the analyses."""
    try:
        return lookup_opcode(name)
    except KeyError:
        return UNKNOWN_OPCODE_INFO


#: Opcodes whose results are produced through the special function unit and
#: correspond to CUDA math intrinsics; the Fast Math optimizer matches these.
SFU_MATH_OPCODES = frozenset({"MUFU", "RRO"})

#: Long-latency arithmetic opcodes matched by the Strength Reduction
#: optimizer (Table 2: "execution dependency stalls of long latency
#: arithmetic instructions").
LONG_LATENCY_ARITHMETIC_THRESHOLD = 8


def is_long_latency_arithmetic(info: OpcodeInfo) -> bool:
    """Whether an opcode counts as "long latency arithmetic" for matching."""
    return info.klass.is_arithmetic and info.latency >= LONG_LATENCY_ARITHMETIC_THRESHOLD
