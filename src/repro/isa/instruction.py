"""Instruction and control-code model.

A Volta instruction is one 128-bit word.  Besides the opcode, modifiers,
predicate and operands, every instruction carries a *control code* that
guides the warp scheduler (Section 2.2 of the paper):

* **stall cycles** — for fixed-latency producers, how long the scheduler
  must wait before issuing the *next* instruction of the warp;
* **yield flag** — whether the scheduler may switch to another warp;
* **write barrier** — barrier register index set by a variable-latency
  instruction that will *write* its destination later (cleared when the
  result arrives);
* **read barrier** — barrier register index set by a variable-latency
  instruction that still needs to *read* its source operands (cleared when
  the operands have been consumed; used to enforce WAR dependencies);
* **wait mask** — set of barrier indices this instruction must wait on
  before issuing.

The instruction blamer treats write/read barrier indices as *defs* of the
virtual barrier registers B0-B5 and wait-mask bits as *uses*, so control-code
dependencies flow through the same def-use analysis as register operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import FrozenSet, Optional, Tuple

from repro.isa.opcodes import OpcodeInfo, lookup_opcode_tolerant, opcode_is_known
from repro.isa.registers import (
    ALWAYS,
    BarrierRegister,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    SpecialRegister,
)

#: Size of one encoded instruction in bytes (128-bit words on Volta+).
INSTRUCTION_SIZE = 16

#: Maximum stall-cycle value encodable in a control code (4 bits).
MAX_STALL_CYCLES = 15


@dataclass(frozen=True)
class ControlCode:
    """The scheduler-control fields of an instruction."""

    stall_cycles: int = 1
    yield_flag: bool = True
    write_barrier: Optional[int] = None
    read_barrier: Optional[int] = None
    wait_mask: FrozenSet[int] = frozenset()
    reuse_flags: Tuple[bool, bool, bool, bool] = (False, False, False, False)

    def __post_init__(self) -> None:
        if not 0 <= self.stall_cycles <= MAX_STALL_CYCLES:
            raise ValueError(f"stall cycles out of range: {self.stall_cycles}")
        for name in ("write_barrier", "read_barrier"):
            value = getattr(self, name)
            if value is not None and not 0 <= value < 6:
                raise ValueError(f"{name} out of range: {value}")
        for bit in self.wait_mask:
            if not 0 <= bit < 6:
                raise ValueError(f"wait mask bit out of range: {bit}")

    @property
    def defined_barriers(self) -> FrozenSet[BarrierRegister]:
        """Barrier registers written (set) by this instruction."""
        barriers = set()
        if self.write_barrier is not None:
            barriers.add(BarrierRegister(self.write_barrier))
        if self.read_barrier is not None:
            barriers.add(BarrierRegister(self.read_barrier))
        return frozenset(barriers)

    @property
    def waited_barriers(self) -> FrozenSet[BarrierRegister]:
        """Barrier registers read (waited on) by this instruction."""
        return frozenset(BarrierRegister(i) for i in self.wait_mask)

    def render(self) -> str:
        """Render the control code in an nvdisasm-like bracket notation."""
        wait = "".join(str(i) for i in sorted(self.wait_mask)) or "-"
        wbar = str(self.write_barrier) if self.write_barrier is not None else "-"
        rbar = str(self.read_barrier) if self.read_barrier is not None else "-"
        yield_marker = "Y" if self.yield_flag else "-"
        return f"[B{wait}:W{wbar}:R{rbar}:S{self.stall_cycles}:{yield_marker}]"


@dataclass(frozen=True)
class Instruction:
    """A single decoded SASS-like instruction.

    ``offset`` is the byte offset of the instruction within its function
    (each instruction occupies 16 bytes).  ``line`` and ``inline_stack`` carry
    the source mapping recovered from line tables and DWARF-like inline
    information; they power GPA's line/loop/function level advice.
    """

    offset: int
    opcode: str
    modifiers: Tuple[str, ...] = ()
    predicate: Predicate = ALWAYS
    dests: Tuple[object, ...] = ()
    sources: Tuple[object, ...] = ()
    control: ControlCode = field(default_factory=ControlCode)
    #: Branch / call target offset for control-flow instructions.
    target: Optional[int] = None
    #: Source line number the instruction maps to, if line info is present.
    line: Optional[int] = None
    #: Source file the instruction maps to.
    source_file: Optional[str] = None
    #: Inline call stack (outermost first) of function names, if inlined.
    inline_stack: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Static metadata
    # ------------------------------------------------------------------
    @cached_property
    def info(self) -> OpcodeInfo:
        """Opcode metadata from the catalog.

        Opcodes absent from the catalog (possible when the instruction was
        ingested from a real disassembly listing) resolve to the
        conservative :data:`~repro.isa.opcodes.UNKNOWN_OPCODE_INFO` rather
        than raising; check :attr:`is_unknown_op` to distinguish them.
        """
        return lookup_opcode_tolerant(self.full_opcode)

    @cached_property
    def is_unknown_op(self) -> bool:
        """Whether the opcode is absent from the catalog (conservative op)."""
        return not opcode_is_known(self.full_opcode)

    @cached_property
    def full_opcode(self) -> str:
        """Opcode plus modifiers, e.g. ``LDG.E.32``."""
        if self.modifiers:
            return ".".join((self.opcode,) + self.modifiers)
        return self.opcode

    @property
    def is_predicated(self) -> bool:
        """Whether the instruction is guarded by a non-trivial predicate."""
        return not self.predicate.is_true_predicate

    @cached_property
    def is_memory(self) -> bool:
        return self.info.is_memory

    @cached_property
    def is_load(self) -> bool:
        return self.info.is_load

    @cached_property
    def is_store(self) -> bool:
        return self.info.is_store

    @cached_property
    def is_synchronization(self) -> bool:
        return self.info.is_synchronization

    @cached_property
    def is_control(self) -> bool:
        return self.info.is_control

    @property
    def is_branch(self) -> bool:
        return self.opcode in ("BRA", "BRX", "JMP")

    @property
    def is_call(self) -> bool:
        return self.opcode in ("CAL", "CALL")

    @property
    def is_exit(self) -> bool:
        return self.opcode in ("EXIT", "RET")

    @cached_property
    def memory_space(self) -> Optional[MemorySpace]:
        """Address space of the memory access, if this is a memory op."""
        for operand in self.sources + self.dests:
            if isinstance(operand, MemoryOperand):
                return operand.space
        return self.info.memory_space

    # ------------------------------------------------------------------
    # Def / use sets
    # ------------------------------------------------------------------
    @cached_property
    def defined_registers(self) -> FrozenSet[RegisterOperand]:
        """General-purpose registers written by this instruction.

        Wide destinations expand to consecutive registers: ``.64`` results
        (and fp64 arithmetic, ``IMAD.WIDE``) occupy a register pair, ``.128``
        vector loads occupy four registers.
        """
        regs = set()
        width = self._dest_width()
        for operand in self.dests:
            if isinstance(operand, RegisterOperand) and not operand.is_zero:
                regs.update(self._expand_register(operand, width))
            elif isinstance(operand, MemoryOperand):
                # A store destination is memory, not a register def.
                pass
        return frozenset(regs)

    @cached_property
    def used_registers(self) -> FrozenSet[RegisterOperand]:
        """General-purpose registers read by this instruction.

        A store's memory operand appears among the destinations for
        readability (``STG [R2], R0``), but its address registers are *reads*
        and are therefore included here.  Wide register sources expand like
        wide destinations: fp64 arithmetic reads register pairs, and the
        stored value of a ``.64``/``.128`` store spans two/four registers.
        """
        regs = set()
        width = self._source_width()
        for operand in self.sources:
            if isinstance(operand, RegisterOperand) and not operand.is_zero:
                regs.update(self._expand_register(operand, width))
            elif isinstance(operand, MemoryOperand):
                regs.update(operand.address_registers())
        for operand in self.dests:
            if isinstance(operand, MemoryOperand):
                regs.update(operand.address_registers())
        return frozenset(r for r in regs if not r.is_zero)

    @property
    def defined_predicates(self) -> FrozenSet[Predicate]:
        """Predicate registers written (as a plain, non-negated reference)."""
        preds = set()
        for operand in self.dests:
            if isinstance(operand, Predicate) and not operand.is_true_predicate:
                preds.add(Predicate(operand.index, False))
        return frozenset(preds)

    @property
    def used_predicates(self) -> FrozenSet[Predicate]:
        """Predicate registers read, including the guard predicate."""
        preds = set()
        if self.is_predicated:
            preds.add(Predicate(self.predicate.index, False))
        for operand in self.sources:
            if isinstance(operand, Predicate) and not operand.is_true_predicate:
                preds.add(Predicate(operand.index, False))
        return frozenset(preds)

    @property
    def defined_barriers(self) -> FrozenSet[BarrierRegister]:
        """Virtual barrier registers set by this instruction's control code."""
        return self.control.defined_barriers

    @property
    def waited_barriers(self) -> FrozenSet[BarrierRegister]:
        """Virtual barrier registers waited on by this instruction."""
        return self.control.waited_barriers

    @staticmethod
    def _expand_register(operand: RegisterOperand, width: int):
        """``operand`` plus the consecutive registers a ``width``-wide value
        occupies (stopping at the register file boundary)."""
        for step in range(width):
            index = operand.index + step
            if index >= 255:  # RZ and beyond: architectural discard
                break
            yield RegisterOperand(index)

    def _dest_width(self) -> int:
        """How many consecutive registers the destination occupies."""
        if "128" in self.modifiers:
            return 4
        if "64" in self.modifiers or self.opcode in ("DADD", "DMUL", "DFMA"):
            return 2
        if self.opcode == "IMAD" and "WIDE" in self.modifiers:
            return 2
        return 1

    def _source_width(self) -> int:
        """How many consecutive registers wide register *sources* span.

        fp64 arithmetic reads register pairs; the value operand of a wide
        store spans the store width.  ``IMAD.WIDE`` is excluded: it reads
        32-bit sources and only its destination is wide.
        """
        if self.opcode in ("DADD", "DMUL", "DFMA", "DSETP"):
            return 2
        if self.is_store:
            if "128" in self.modifiers:
                return 4
            if "64" in self.modifiers:
                return 2
        return 1

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_control(self, control: ControlCode) -> "Instruction":
        """Return a copy with a different control code."""
        return replace(self, control=control)

    def with_offset(self, offset: int) -> "Instruction":
        """Return a copy relocated to ``offset``."""
        return replace(self, offset=offset)

    def render(self, with_control: bool = False) -> str:
        """Render the instruction as assembly text."""
        parts = []
        if self.is_predicated:
            parts.append(f"@{self.predicate}")
        parts.append(self.full_opcode)
        operand_strs = [str(op) for op in self.dests] + [str(op) for op in self.sources]
        if self.target is not None and not operand_strs:
            operand_strs.append(f"{self.target:#x}")
        text = " ".join(parts)
        if operand_strs:
            text += " " + ", ".join(operand_strs)
        if with_control:
            text += f" {self.control.render()}"
        return text

    def __str__(self) -> str:
        return f"/*{self.offset:04x}*/ {self.render()}"
