"""SASS-like instruction set model for a Volta-class GPU.

This package models the pieces of NVIDIA's machine ISA that GPA's analyses
depend on (Table 1 of the paper):

* regular registers ``R0``-``R254`` plus the zero register ``RZ``,
* predicate registers ``P0``-``P6`` with true/false conditions and ``PT``,
* the six *virtual barrier registers* ``B0``-``B5`` encoded in every
  instruction's control code (wait mask, write barrier, read barrier),
* opcodes with modifiers, operand lists, latency classes and memory spaces,
* a fixed-width 128-bit instruction encoding (Volta and later use one
  128-bit word per instruction).

The model is intentionally *not* a full SASS ISA: it carries exactly the
information GPA's instruction blamer, optimizers and estimators consume, so
that backward slicing, dependency-graph pruning and stall attribution run on
the same inputs they would see on real hardware.
"""

from repro.isa.registers import (
    BarrierRegister,
    ConstantOperand,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    SpecialRegister,
    UniformPredicate,
    UniformRegister,
    ZERO_REGISTER_INDEX,
)
from repro.isa.opcodes import (
    InstructionClass,
    LatencyClass,
    OpcodeInfo,
    OPCODES,
    UNKNOWN_OPCODE_INFO,
    lookup_opcode,
    lookup_opcode_tolerant,
    opcode_is_known,
)
from repro.isa.instruction import ControlCode, Instruction
from repro.isa.parser import ParseError, parse_instruction, parse_program
from repro.isa.encoder import decode_instruction, encode_instruction, INSTRUCTION_BYTES

__all__ = [
    "BarrierRegister",
    "ConstantOperand",
    "ControlCode",
    "ImmediateOperand",
    "Instruction",
    "InstructionClass",
    "INSTRUCTION_BYTES",
    "LatencyClass",
    "MemoryOperand",
    "MemorySpace",
    "OpcodeInfo",
    "OPCODES",
    "ParseError",
    "Predicate",
    "RegisterOperand",
    "SpecialRegister",
    "UNKNOWN_OPCODE_INFO",
    "UniformPredicate",
    "UniformRegister",
    "ZERO_REGISTER_INDEX",
    "decode_instruction",
    "encode_instruction",
    "lookup_opcode",
    "lookup_opcode_tolerant",
    "opcode_is_known",
    "parse_instruction",
    "parse_program",
]
