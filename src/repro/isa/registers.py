"""Operand and register model for the SASS-like ISA.

GPA's backward slicing (Section 4 of the paper) tracks def-use chains over
three kinds of state:

* regular 32-bit registers ``R0``-``R254`` (``R255``/``RZ`` always reads 0),
* predicate registers ``P0``-``P6`` used as true (``@P0``) or false
  (``@!P0``) guards, and
* six *virtual barrier registers* ``B0``-``B5`` that model the write/read
  barrier indices and wait masks in each instruction's control code.

Memory operands are also modelled, annotated with their address space,
because the blamer classifies memory dependencies into local, constant and
global dependencies (Figure 5a) and the optimizers distinguish spaces (e.g.
the Register Reuse optimizer matches *local* memory stalls that indicate
register spilling).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Index of the architectural zero register ``RZ``.
ZERO_REGISTER_INDEX = 255

#: Number of general-purpose registers addressable per thread (R0-R254).
MAX_REGISTER_INDEX = 254

#: Number of predicate registers (P0-P6).  P7 is the constant-true ``PT``.
MAX_PREDICATE_INDEX = 6

#: Index used for the constant-true predicate ``PT``.
TRUE_PREDICATE_INDEX = 7

#: Number of virtual barrier registers (B0-B5).
NUM_BARRIERS = 6

#: Index of the uniform-datapath zero register ``URZ`` (Turing+).
UNIFORM_ZERO_REGISTER_INDEX = 63


class MemorySpace(enum.Enum):
    """Address spaces distinguished by the blamer and the optimizers."""

    GLOBAL = "global"
    LOCAL = "local"
    SHARED = "shared"
    CONSTANT = "constant"
    TEXTURE = "texture"
    GENERIC = "generic"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class RegisterOperand:
    """A general-purpose 32-bit register ``R<index>``.

    A 64-bit value (e.g. a global-memory address) occupies a register *pair*;
    the pair is represented as two consecutive :class:`RegisterOperand`
    instances, mirroring how ``LDG R0, [R2]`` consumes both ``R2`` and ``R3``
    in Table 1 of the paper.
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index <= ZERO_REGISTER_INDEX:
            raise ValueError(f"register index out of range: {self.index}")

    @property
    def is_zero(self) -> bool:
        """Whether this is the hard-wired zero register ``RZ``."""
        return self.index == ZERO_REGISTER_INDEX

    def pair(self) -> Tuple["RegisterOperand", "RegisterOperand"]:
        """Return the 64-bit register pair starting at this register."""
        if self.is_zero:
            return (self, self)
        return (self, RegisterOperand(self.index + 1))

    def __str__(self) -> str:
        return "RZ" if self.is_zero else f"R{self.index}"


@dataclass(frozen=True, order=True)
class Predicate:
    """A predicate register reference, possibly negated.

    ``Predicate(0, negated=False)`` renders as ``P0`` (a *true* condition)
    and ``Predicate(0, negated=True)`` renders as ``!P0`` (a *false*
    condition).  The constant-true predicate ``PT`` has index 7 and is never
    negated in practice.
    """

    index: int
    negated: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index <= TRUE_PREDICATE_INDEX:
            raise ValueError(f"predicate index out of range: {self.index}")

    @property
    def is_true_predicate(self) -> bool:
        """Whether this is the always-true predicate ``PT``."""
        return self.index == TRUE_PREDICATE_INDEX and not self.negated

    def complement(self) -> "Predicate":
        """The opposite condition on the same predicate register."""
        return Predicate(self.index, not self.negated)

    def __str__(self) -> str:
        name = "PT" if self.index == TRUE_PREDICATE_INDEX else f"P{self.index}"
        return f"!{name}" if self.negated else name


#: The always-true predicate used by unpredicated instructions.
ALWAYS = Predicate(TRUE_PREDICATE_INDEX, negated=False)


@dataclass(frozen=True, order=True)
class BarrierRegister:
    """One of the six virtual barrier registers ``B0``-``B5``.

    The paper (Section 4, "Virtual barrier registers") treats a write/read
    barrier index association as a *def* of a barrier register and a wait
    mask as a *use*, so that dependencies carried through control codes are
    discovered by the same def-use machinery as regular registers.
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_BARRIERS:
            raise ValueError(f"barrier index out of range: {self.index}")

    def __str__(self) -> str:
        return f"B{self.index}"


@dataclass(frozen=True, order=True)
class UniformRegister:
    """A uniform-datapath register ``UR<index>`` (Turing and later).

    Uniform registers hold warp-invariant values computed on the scalar
    datapath; ``UR63``/``URZ`` always reads 0.  They are disjoint from the
    per-thread general-purpose registers, so they do not participate in the
    GPR liveness/pressure analyses — the frontend carries them so real-SASS
    operands survive round trips, nothing more.
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index <= UNIFORM_ZERO_REGISTER_INDEX:
            raise ValueError(f"uniform register index out of range: {self.index}")

    @property
    def is_zero(self) -> bool:
        """Whether this is the hard-wired zero register ``URZ``."""
        return self.index == UNIFORM_ZERO_REGISTER_INDEX

    def __str__(self) -> str:
        return "URZ" if self.is_zero else f"UR{self.index}"


@dataclass(frozen=True, order=True)
class UniformPredicate:
    """A uniform predicate register ``UP<index>`` (Turing and later).

    ``UP7``/``UPT`` is the constant-true uniform predicate.  Like
    :class:`UniformRegister`, these are carried for fidelity only and are
    invisible to the per-thread predicate analyses.
    """

    index: int
    negated: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index <= TRUE_PREDICATE_INDEX:
            raise ValueError(f"uniform predicate index out of range: {self.index}")

    @property
    def is_true_predicate(self) -> bool:
        return self.index == TRUE_PREDICATE_INDEX and not self.negated

    def __str__(self) -> str:
        name = "UPT" if self.index == TRUE_PREDICATE_INDEX else f"UP{self.index}"
        return f"!{name}" if self.negated else name


@dataclass(frozen=True, order=True)
class ConstantOperand:
    """A constant-bank operand ``c[bank][offset]``.

    Real SASS reads kernel parameters and driver state through constant
    banks (``c[0x0][0x160]`` is typically the first kernel argument on
    Volta).  Constant reads contribute no general-purpose register uses.
    """

    bank: int
    offset: int

    def __str__(self) -> str:
        return f"c[{self.bank:#x}][{self.offset:#x}]"


@dataclass(frozen=True)
class ImmediateOperand:
    """A literal constant operand.

    ``is_double`` marks 64-bit floating point literals such as the ``2.0``
    constant in the hotspot example (Listing 1), which forces the compiler to
    emit F2F/F64 conversion instructions — the pattern the Strength Reduction
    optimizer looks for.
    """

    value: float
    is_double: bool = False

    def __str__(self) -> str:
        if isinstance(self.value, float) and not self.value.is_integer():
            return f"{self.value}"
        return f"{int(self.value):#x}" if abs(self.value) > 9 else f"{int(self.value)}"


@dataclass(frozen=True)
class SpecialRegister:
    """A read-only special register such as ``SR_TID.X`` or ``SR_CTAID.X``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MemoryOperand:
    """A memory reference ``[Rb + offset]`` in a particular address space.

    ``base`` is the first register of the address.  For 64-bit address spaces
    (global, local, generic) the address occupies the register pair
    ``(base, base + 1)``; shared and constant memory use 32-bit addresses.
    Turing+ SASS may add a uniform register to the address
    (``[R2.64+UR4+0x10]``); the uniform term is warp-invariant and does not
    contribute a per-thread register use.
    """

    base: RegisterOperand
    offset: int = 0
    space: MemorySpace = MemorySpace.GLOBAL
    uniform_base: Optional[UniformRegister] = None

    def address_registers(self) -> Tuple[RegisterOperand, ...]:
        """Registers read to form the address."""
        if self.base.is_zero:
            return ()
        if self.space in (MemorySpace.GLOBAL, MemorySpace.LOCAL, MemorySpace.GENERIC):
            return self.base.pair()
        return (self.base,)

    def __str__(self) -> str:
        inner = str(self.base)
        if self.uniform_base is not None:
            inner += f"+{self.uniform_base}"
        if self.offset:
            inner += f"+{self.offset:#x}"
        return f"[{inner}]"


Operand = object  # documented union: RegisterOperand | Predicate | ImmediateOperand | ...


def register(index: int) -> RegisterOperand:
    """Convenience constructor for ``R<index>``."""
    return RegisterOperand(index)


def predicate(index: int, negated: bool = False) -> Predicate:
    """Convenience constructor for ``P<index>`` / ``!P<index>``."""
    return Predicate(index, negated)


def barrier(index: int) -> BarrierRegister:
    """Convenience constructor for ``B<index>``."""
    return BarrierRegister(index)
