"""Fixed-width 128-bit instruction encoding.

Volta and later NVIDIA architectures encode each instruction in a single
128-bit word (Section 2.2 of the paper).  This module packs and unpacks our
SASS-like instructions into 16-byte words so the CUBIN container holds real
code sections and the disassembler has real bits to decode.

The fields are written sequentially from the least significant bit; operand
payloads and the immediate/target value are only present when used, which is
how everything fits in 128 bits (real encoders resolve the same pressure by
sharing fields between instruction formats):

====================  =========  ==============================================
field                 bits       contents
====================  =========  ==============================================
opcode id             7          index into the sorted opcode catalog
modifier ids          2 x 6      index+1 into the modifier table (0 = absent)
guard predicate       3 + 1      predicate index and negate bit
destination count     2          how many leading operands are destinations
operand kinds         4 x 3      none/register/predicate/!predicate/memory/
                                 special/immediate
operand payloads      8 each     only for kinds that carry a register index
memory offset / 4     4          byte offset of the (single) memory operand
memory space          3          global/local/shared/constant/texture/generic
value kind            2          none / branch target / integer / float
value                 16/24/32   target (16), signed integer (24), float32 (32)
control code          16         stall(4) wbar(3) rbar(3) wait mask(6)
line number           10         source line (0 = absent, clamped at 1023)
====================  =========  ==============================================

Instructions that exceed the format (more than two modifiers, more than four
operands, an immediate too wide for its field) raise :class:`EncodingError`.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.isa.instruction import INSTRUCTION_SIZE, ControlCode, Instruction
from repro.isa.opcodes import OPCODES
from repro.isa.registers import (
    ALWAYS,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    SpecialRegister,
    TRUE_PREDICATE_INDEX,
)

#: Bytes per encoded instruction.
INSTRUCTION_BYTES = INSTRUCTION_SIZE


class EncodingError(ValueError):
    """Raised when an instruction does not fit the fixed-width encoding."""


_OPCODE_NAMES: Tuple[str, ...] = tuple(sorted(OPCODES))
_OPCODE_IDS = {name: index for index, name in enumerate(_OPCODE_NAMES)}

#: Modifier string table.  Extend as new modifiers are used by workloads.
MODIFIERS: Tuple[str, ...] = (
    "E", "32", "64", "128", "U8", "S8", "U16", "S16", "U32", "S32",
    "WIDE", "HI", "LO", "X", "GE", "GT", "LE", "LT", "EQ", "NE",
    "AND", "OR", "XOR", "RCP", "RSQ", "SQRT", "SIN", "COS", "EX2", "LG2",
    "SYNC", "ARV", "RED", "F32", "F64", "F16", "FTZ", "RN", "RZ2", "TRUNC",
    "SAT", "CTA", "GPU", "SYS", "STRONG", "CG", "CI", "NODEP", "PASS", "RCP64H",
)
_MODIFIER_IDS = {name: index for index, name in enumerate(MODIFIERS)}

_SPECIAL_REGISTERS: Tuple[str, ...] = (
    "SR_TID.X", "SR_TID.Y", "SR_TID.Z",
    "SR_CTAID.X", "SR_CTAID.Y", "SR_CTAID.Z",
    "SR_LANEID", "SR_WARPID", "SR_NWARPID", "SR_SMID", "SR_GRIDID",
    "SR_CLOCKLO", "SR_CLOCKHI", "SR_EQMASK", "SR_LTMASK",
)
_SPECIAL_IDS = {name: index for index, name in enumerate(_SPECIAL_REGISTERS)}

_MEMORY_SPACES: Tuple[MemorySpace, ...] = (
    MemorySpace.GLOBAL,
    MemorySpace.LOCAL,
    MemorySpace.SHARED,
    MemorySpace.CONSTANT,
    MemorySpace.TEXTURE,
    MemorySpace.GENERIC,
)
_SPACE_IDS = {space: index for index, space in enumerate(_MEMORY_SPACES)}

# Operand kind tags.
_KIND_NONE = 0
_KIND_REGISTER = 1
_KIND_PREDICATE = 2
_KIND_PREDICATE_NEG = 3
_KIND_MEMORY = 4
_KIND_SPECIAL = 5
_KIND_IMMEDIATE = 6

_KINDS_WITH_PAYLOAD = (_KIND_REGISTER, _KIND_PREDICATE, _KIND_PREDICATE_NEG,
                       _KIND_MEMORY, _KIND_SPECIAL)

# Value kinds.
_VALUE_NONE = 0
_VALUE_TARGET = 1
_VALUE_INT = 2
_VALUE_FLOAT = 3

_INT_VALUE_BITS = 24
_TARGET_VALUE_BITS = 16


class _BitWriter:
    def __init__(self) -> None:
        self.word = 0
        self.position = 0

    def put(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise EncodingError(f"field value {value} does not fit in {width} bits")
        self.word |= value << self.position
        self.position += width
        if self.position > 128:
            raise EncodingError(
                f"instruction does not fit the 128-bit encoding ({self.position} bits)"
            )

    def bytes(self) -> bytes:
        return self.word.to_bytes(INSTRUCTION_BYTES, "little")


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self.word = int.from_bytes(data, "little")
        self.position = 0

    def take(self, width: int) -> int:
        value = (self.word >> self.position) & ((1 << width) - 1)
        self.position += width
        return value


def _operand_kind(operand: object) -> Tuple[int, int]:
    """Return (kind, payload) for one operand; payload is 0 when unused."""
    if isinstance(operand, RegisterOperand):
        return _KIND_REGISTER, operand.index
    if isinstance(operand, Predicate):
        return (_KIND_PREDICATE_NEG if operand.negated else _KIND_PREDICATE), operand.index
    if isinstance(operand, MemoryOperand):
        return _KIND_MEMORY, operand.base.index
    if isinstance(operand, SpecialRegister):
        if operand.name not in _SPECIAL_IDS:
            raise EncodingError(f"unknown special register {operand.name!r}")
        return _KIND_SPECIAL, _SPECIAL_IDS[operand.name]
    if isinstance(operand, ImmediateOperand):
        return _KIND_IMMEDIATE, 0
    raise EncodingError(f"cannot encode operand {operand!r}")


def encode_instruction(instruction: Instruction) -> bytes:
    """Encode an instruction into its 16-byte (128-bit) representation."""
    try:
        opcode_id = _OPCODE_IDS[instruction.opcode]
    except KeyError as exc:
        raise EncodingError(f"unknown opcode {instruction.opcode!r}") from exc
    if opcode_id >= 128:
        raise EncodingError("opcode catalog exceeds the 7-bit opcode field")

    if len(instruction.modifiers) > 2:
        raise EncodingError(
            f"at most 2 modifiers fit the encoding, got {instruction.modifiers!r}"
        )
    modifier_ids = []
    for modifier in instruction.modifiers:
        if modifier not in _MODIFIER_IDS:
            raise EncodingError(f"unknown modifier {modifier!r}")
        modifier_ids.append(_MODIFIER_IDS[modifier] + 1)
    while len(modifier_ids) < 2:
        modifier_ids.append(0)

    operands = list(instruction.dests) + list(instruction.sources)
    if len(operands) > 4:
        raise EncodingError(f"at most 4 operands are encodable, got {len(operands)}")
    if len(instruction.dests) > 3:
        raise EncodingError("at most 3 destinations are encodable")

    memory: Optional[MemoryOperand] = None
    immediate: Optional[ImmediateOperand] = None
    kinds: List[Tuple[int, int]] = []
    for operand in operands:
        kind, payload = _operand_kind(operand)
        if kind == _KIND_MEMORY:
            if memory is not None:
                raise EncodingError("at most one memory operand is encodable")
            memory = operand
        if kind == _KIND_IMMEDIATE:
            if immediate is not None:
                raise EncodingError("at most one immediate operand is encodable")
            immediate = operand
        kinds.append((kind, payload))
    while len(kinds) < 4:
        kinds.append((_KIND_NONE, 0))

    if instruction.target is not None and immediate is not None:
        raise EncodingError("branch target and immediate cannot both be encoded")

    memory_offset = memory.offset if memory is not None else 0
    if memory_offset % 4 != 0 or not 0 <= memory_offset < 64:
        raise EncodingError(
            f"memory offset {memory_offset} not encodable (must be 4-aligned, < 64)"
        )
    space_id = _SPACE_IDS[memory.space] if memory is not None else 0

    value_kind = _VALUE_NONE
    value_bits = 0
    value_width = 0
    if instruction.target is not None:
        value_kind = _VALUE_TARGET
        value_width = _TARGET_VALUE_BITS
        if not 0 <= instruction.target < (1 << value_width):
            raise EncodingError(f"branch target {instruction.target:#x} out of range")
        value_bits = instruction.target
    elif immediate is not None:
        as_float = immediate.is_double or not float(immediate.value).is_integer()
        if as_float:
            value_kind = _VALUE_FLOAT
            value_width = 32
            value_bits = struct.unpack("<I", struct.pack("<f", float(immediate.value)))[0]
        else:
            value_kind = _VALUE_INT
            value_width = _INT_VALUE_BITS
            integer = int(immediate.value)
            if not -(1 << (value_width - 1)) <= integer < (1 << (value_width - 1)):
                raise EncodingError(f"integer immediate {integer} out of range")
            value_bits = integer & ((1 << value_width) - 1)

    control = instruction.control
    wait_bits = 0
    for index in control.wait_mask:
        wait_bits |= 1 << index
    control_bits = (
        control.stall_cycles
        | (((control.write_barrier + 1) if control.write_barrier is not None else 0) << 4)
        | (((control.read_barrier + 1) if control.read_barrier is not None else 0) << 7)
        | (wait_bits << 10)
    )

    writer = _BitWriter()
    writer.put(opcode_id, 7)
    writer.put(modifier_ids[0], 6)
    writer.put(modifier_ids[1], 6)
    writer.put(instruction.predicate.index, 3)
    writer.put(int(instruction.predicate.negated), 1)
    writer.put(len(instruction.dests), 2)
    for kind, _payload in kinds:
        writer.put(kind, 3)
    for kind, payload in kinds:
        if kind in _KINDS_WITH_PAYLOAD:
            writer.put(payload, 8)
    writer.put(memory_offset // 4, 4)
    writer.put(space_id, 3)
    writer.put(value_kind, 2)
    if value_width:
        writer.put(value_bits, value_width)
    writer.put(control_bits, 16)
    line = instruction.line if instruction.line is not None else 0
    writer.put(min(line, 1023), 10)
    return writer.bytes()


def decode_instruction(data: bytes, offset: int = 0) -> Instruction:
    """Decode a 16-byte word back into an :class:`Instruction`."""
    if len(data) != INSTRUCTION_BYTES:
        raise EncodingError(f"expected {INSTRUCTION_BYTES} bytes, got {len(data)}")
    reader = _BitReader(data)

    opcode_id = reader.take(7)
    modifier_ids = [reader.take(6), reader.take(6)]
    predicate_index = reader.take(3)
    predicate_negated = bool(reader.take(1))
    num_dests = reader.take(2)
    kinds = [reader.take(3) for _ in range(4)]
    payloads = {}
    for slot, kind in enumerate(kinds):
        if kind in _KINDS_WITH_PAYLOAD:
            payloads[slot] = reader.take(8)
    memory_offset = reader.take(4) * 4
    space_id = reader.take(3)
    value_kind = reader.take(2)
    target: Optional[int] = None
    immediate: Optional[ImmediateOperand] = None
    if value_kind == _VALUE_TARGET:
        target = reader.take(_TARGET_VALUE_BITS)
    elif value_kind == _VALUE_INT:
        raw = reader.take(_INT_VALUE_BITS)
        if raw >= (1 << (_INT_VALUE_BITS - 1)):
            raw -= 1 << _INT_VALUE_BITS
        immediate = ImmediateOperand(float(raw))
    elif value_kind == _VALUE_FLOAT:
        raw = reader.take(32)
        immediate = ImmediateOperand(float(struct.unpack("<f", struct.pack("<I", raw))[0]))
    control_bits = reader.take(16)
    line = reader.take(10)

    opcode = _OPCODE_NAMES[opcode_id]
    modifiers = tuple(MODIFIERS[mid - 1] for mid in modifier_ids if mid != 0)
    memory_space = _MEMORY_SPACES[space_id]

    operands: List[object] = []
    for slot, kind in enumerate(kinds):
        if kind == _KIND_NONE:
            continue
        if kind == _KIND_REGISTER:
            operands.append(RegisterOperand(payloads[slot]))
        elif kind == _KIND_PREDICATE:
            operands.append(Predicate(payloads[slot], negated=False))
        elif kind == _KIND_PREDICATE_NEG:
            operands.append(Predicate(payloads[slot], negated=True))
        elif kind == _KIND_MEMORY:
            operands.append(
                MemoryOperand(RegisterOperand(payloads[slot]), offset=memory_offset,
                              space=memory_space)
            )
        elif kind == _KIND_SPECIAL:
            operands.append(SpecialRegister(_SPECIAL_REGISTERS[payloads[slot]]))
        elif kind == _KIND_IMMEDIATE:
            operands.append(immediate if immediate is not None else ImmediateOperand(0.0))

    dests = tuple(operands[:num_dests])
    sources = tuple(operands[num_dests:])

    stall = control_bits & 0xF
    wbar_raw = (control_bits >> 4) & 0x7
    rbar_raw = (control_bits >> 7) & 0x7
    wait_bits = (control_bits >> 10) & 0x3F
    control = ControlCode(
        stall_cycles=stall,
        yield_flag=True,
        write_barrier=(wbar_raw - 1) if wbar_raw else None,
        read_barrier=(rbar_raw - 1) if rbar_raw else None,
        wait_mask=frozenset(i for i in range(6) if wait_bits & (1 << i)),
    )

    predicate = Predicate(predicate_index, negated=predicate_negated)
    if predicate_index == TRUE_PREDICATE_INDEX and not predicate_negated:
        predicate = ALWAYS

    return Instruction(
        offset=offset,
        opcode=opcode,
        modifiers=modifiers,
        predicate=predicate,
        dests=dests,
        sources=sources,
        control=control,
        target=target,
        line=line if line else None,
    )


def encode_program(instructions: Sequence[Instruction]) -> bytes:
    """Encode a sequence of instructions into a contiguous code section."""
    return b"".join(encode_instruction(instruction) for instruction in instructions)


def decode_program(data: bytes, base_offset: int = 0) -> List[Instruction]:
    """Decode a contiguous code section back into instructions."""
    if len(data) % INSTRUCTION_BYTES != 0:
        raise EncodingError("code section size is not a multiple of the instruction width")
    instructions = []
    for index in range(len(data) // INSTRUCTION_BYTES):
        chunk = data[index * INSTRUCTION_BYTES: (index + 1) * INSTRUCTION_BYTES]
        instructions.append(
            decode_instruction(chunk, offset=base_offset + index * INSTRUCTION_BYTES)
        )
    return instructions
