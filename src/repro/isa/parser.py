"""Text parser for the SASS-like assembly syntax.

The textual syntax mirrors nvdisasm output closely enough to be familiar::

    @P0 LDG.32 R0, [R2]
    IADD R8, R0, R7
    ISETP.GE.AND P0, R3, R4
    BRA LOOP_HEAD
    BAR.SYNC

Conventions:

* the first operand of most instructions is the destination; stores
  (``STG``/``STS``/``STL``/``ST``/``RED``) take the memory operand first;
* ``ISETP``/``FSETP``/``DSETP``/``PSETP`` write predicate destinations;
* memory operands are written ``[R2]`` or ``[R2+0x10]``; their address space
  is implied by the opcode (``LDG`` is global, ``LDS`` shared, ...);
* an optional trailing control code in the bracket notation produced by
  :meth:`repro.isa.instruction.ControlCode.render` (``[B01:W0:R-:S4:Y]``) is
  parsed back into the instruction, so ``parse`` and ``render`` round-trip;
* ``parse_program`` accepts labels (``NAME:``) and resolves branch targets.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import INSTRUCTION_SIZE, ControlCode, Instruction
from repro.isa.opcodes import lookup_opcode
from repro.isa.registers import (
    ALWAYS,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    SpecialRegister,
    TRUE_PREDICATE_INDEX,
    ZERO_REGISTER_INDEX,
)


class ParseError(ValueError):
    """Raised when assembly text cannot be parsed.

    Carries best-effort source context so failures on multi-line listings
    are actionable: ``source_name`` (file or listing name), ``line`` /
    ``column`` (1-based position in that source) and ``token`` (the
    offending token, when one is identifiable).  The rendered message is
    prefixed ``name:line:column:`` when context is available.
    """

    def __init__(
        self,
        message: str,
        *,
        source_name: Optional[str] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
        token: Optional[str] = None,
    ) -> None:
        self.bare_message = message
        self.source_name = source_name
        self.line = line
        self.column = column
        self.token = token
        super().__init__(self._format())

    def _format(self) -> str:
        prefix = ""
        if self.source_name is not None or self.line is not None:
            location = self.source_name if self.source_name is not None else "<asm>"
            if self.line is not None:
                location += f":{self.line}"
                if self.column is not None:
                    location += f":{self.column}"
            prefix = f"{location}: "
        return f"{prefix}{self.bare_message}"

    def with_context(
        self,
        *,
        source_name: Optional[str] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
        token: Optional[str] = None,
    ) -> "ParseError":
        """A copy of this error with missing context fields filled in."""
        return ParseError(
            self.bare_message,
            source_name=self.source_name if self.source_name is not None else source_name,
            line=self.line if self.line is not None else line,
            column=self.column if self.column is not None else column,
            token=self.token if self.token is not None else token,
        )


#: Opcodes whose first operand is a memory destination rather than a
#: register destination.
_STORE_OPCODES = {"STG", "STS", "STL", "ST", "RED"}

#: Opcodes that write one (or two) predicate destinations.
_PREDICATE_DEST_OPCODES = {"ISETP", "FSETP", "DSETP", "PSETP", "R2P"}

#: Opcodes with no register destination at all.
_NO_DEST_OPCODES = {"BRA", "BRX", "JMP", "CAL", "CALL", "RET", "EXIT", "BAR",
                    "MEMBAR", "DEPBAR", "BSSY", "BSYNC", "SSY", "SYNC", "NOP"}

_MEMORY_SPACE_BY_OPCODE = {
    "LDG": MemorySpace.GLOBAL, "STG": MemorySpace.GLOBAL, "ATOM": MemorySpace.GLOBAL,
    "ATOMG": MemorySpace.GLOBAL, "RED": MemorySpace.GLOBAL,
    "LDL": MemorySpace.LOCAL, "STL": MemorySpace.LOCAL,
    "LDS": MemorySpace.SHARED, "STS": MemorySpace.SHARED, "ATOMS": MemorySpace.SHARED,
    "LDC": MemorySpace.CONSTANT,
    "LD": MemorySpace.GENERIC, "ST": MemorySpace.GENERIC,
    "TEX": MemorySpace.TEXTURE, "TLD": MemorySpace.TEXTURE,
}

_CONTROL_RE = re.compile(
    r"\[B(?P<wait>[0-5\-]+):W(?P<wbar>[0-5\-]):R(?P<rbar>[0-5\-]):S(?P<stall>\d+):(?P<yield>[Y\-])\]$"
)
_OFFSET_RE = re.compile(r"^/\*(?P<offset>[0-9a-fA-F]+)\*/\s*")
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_][A-Za-z0-9_.$]*):\s*(?P<rest>.*)$")
_MEMORY_RE = re.compile(
    r"^\[(?P<base>RZ|R\d+)(?:\s*\+\s*(?P<offset>-?(?:0x[0-9a-fA-F]+|\d+)))?\]$"
)


def _parse_int(text: str) -> int:
    return int(text, 16) if text.lower().startswith(("0x", "-0x")) else int(text)


def _parse_operand(token: str, space: Optional[MemorySpace]) -> object:
    """Parse a single operand token."""
    token = token.strip()
    if not token:
        raise ParseError("empty operand", token=token)
    if token == "RZ":
        return RegisterOperand(ZERO_REGISTER_INDEX)
    if re.fullmatch(r"R\d+", token):
        return RegisterOperand(int(token[1:]))
    if token == "PT":
        return Predicate(TRUE_PREDICATE_INDEX)
    if token == "!PT":
        return Predicate(TRUE_PREDICATE_INDEX, negated=True)
    if re.fullmatch(r"!?P\d", token):
        negated = token.startswith("!")
        return Predicate(int(token[-1]), negated=negated)
    if re.fullmatch(r"B[0-5]", token):
        from repro.isa.registers import BarrierRegister

        return BarrierRegister(int(token[1]))
    match = _MEMORY_RE.match(token)
    if match:
        base_text = match.group("base")
        base = (
            RegisterOperand(ZERO_REGISTER_INDEX)
            if base_text == "RZ"
            else RegisterOperand(int(base_text[1:]))
        )
        offset = _parse_int(match.group("offset")) if match.group("offset") else 0
        return MemoryOperand(base=base, offset=offset, space=space or MemorySpace.GLOBAL)
    if token.startswith("SR_"):
        return SpecialRegister(token)
    if re.fullmatch(r"-?(?:0x[0-9a-fA-F]+|\d+)", token):
        return ImmediateOperand(float(_parse_int(token)))
    if re.fullmatch(r"-?\d+\.\d*(?:[eE][-+]?\d+)?", token):
        return ImmediateOperand(float(token), is_double="." in token)
    raise ParseError(f"cannot parse operand: {token!r}", token=token)


def _parse_control(text: str) -> ControlCode:
    match = _CONTROL_RE.match(text)
    if not match:
        raise ParseError(f"cannot parse control code: {text!r}")
    wait_text = match.group("wait")
    wait = frozenset(int(c) for c in wait_text if c != "-")
    wbar = None if match.group("wbar") == "-" else int(match.group("wbar"))
    rbar = None if match.group("rbar") == "-" else int(match.group("rbar"))
    return ControlCode(
        stall_cycles=int(match.group("stall")),
        yield_flag=match.group("yield") == "Y",
        write_barrier=wbar,
        read_barrier=rbar,
        wait_mask=wait,
    )


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside brackets."""
    operands: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


def parse_instruction(
    text: str,
    offset: int = 0,
    labels: Optional[Dict[str, int]] = None,
    line: Optional[int] = None,
    source_name: Optional[str] = None,
    listing_line: Optional[int] = None,
) -> Instruction:
    """Parse a single instruction from assembly text.

    ``labels`` maps label names to instruction offsets so branch targets
    written symbolically can be resolved; unresolved symbolic targets raise
    :class:`ParseError`.  ``source_name`` and ``listing_line`` name where
    the text came from; they are attached to any :class:`ParseError` (with
    a best-effort column) so failures on multi-line listings are
    actionable.  ``line`` is different: it is the *source-code* line the
    instruction maps to (the line-table annotation).
    """
    try:
        return _parse_instruction(text, offset=offset, labels=labels, line=line)
    except ParseError as exc:
        column = None
        if exc.token:
            position = text.find(exc.token)
            if position >= 0:
                column = position + 1
        raise exc.with_context(
            source_name=source_name, line=listing_line, column=column
        ) from None


def _parse_instruction(
    text: str,
    offset: int = 0,
    labels: Optional[Dict[str, int]] = None,
    line: Optional[int] = None,
) -> Instruction:
    original = text
    text = text.split(";")[0].strip() if ";" in text and "[" not in text.split(";")[1] else text.strip()
    if not text:
        raise ParseError("empty instruction text")

    offset_match = _OFFSET_RE.match(text)
    if offset_match:
        offset = int(offset_match.group("offset"), 16)
        text = text[offset_match.end():].strip()

    control = ControlCode()
    control_match = re.search(r"\[B[0-5\-]+:W[0-5\-]:R[0-5\-]:S\d+:[Y\-]\]\s*$", text)
    if control_match:
        control = _parse_control(control_match.group(0).strip())
        text = text[: control_match.start()].strip()

    predicate = ALWAYS
    if text.startswith("@"):
        guard, _, rest = text.partition(" ")
        guard = guard[1:]
        pred_operand = _parse_operand(guard, None)
        if not isinstance(pred_operand, Predicate):
            raise ParseError(f"invalid guard predicate in {original!r}")
        predicate = pred_operand
        text = rest.strip()

    if not text:
        raise ParseError(f"missing opcode in {original!r}")

    mnemonic, _, operand_text = text.partition(" ")
    parts = mnemonic.split(".")
    opcode, modifiers = parts[0], tuple(parts[1:])
    try:
        lookup_opcode(opcode)
    except KeyError as exc:
        raise ParseError(str(exc), token=opcode) from exc

    space = _MEMORY_SPACE_BY_OPCODE.get(opcode)
    operand_tokens = _split_operands(operand_text) if operand_text.strip() else []

    target: Optional[int] = None
    dests: List[object] = []
    sources: List[object] = []

    if opcode in ("BRA", "BRX", "JMP", "CAL", "CALL", "SSY", "BSSY"):
        if operand_tokens:
            token = operand_tokens[0]
            if labels and token in labels:
                target = labels[token]
            elif re.fullmatch(r"-?(?:0x[0-9a-fA-F]+|\d+)", token):
                target = _parse_int(token)
            else:
                raise ParseError(f"unresolved branch target {token!r}", token=token)
            operand_tokens = operand_tokens[1:]
        sources.extend(_parse_operand(tok, space) for tok in operand_tokens)
    else:
        operands = [_parse_operand(tok, space) for tok in operand_tokens]
        if opcode in _STORE_OPCODES:
            if operands and isinstance(operands[0], MemoryOperand):
                dests.append(operands[0])
                sources.extend(operands[1:])
            else:
                sources.extend(operands)
        elif opcode in _PREDICATE_DEST_OPCODES:
            while operands and isinstance(operands[0], Predicate):
                dests.append(operands.pop(0))
            sources.extend(operands)
        elif opcode in _NO_DEST_OPCODES:
            sources.extend(operands)
        else:
            if operands:
                dests.append(operands[0])
                sources.extend(operands[1:])

    return Instruction(
        offset=offset,
        opcode=opcode,
        modifiers=modifiers,
        predicate=predicate,
        dests=tuple(dests),
        sources=tuple(sources),
        control=control,
        target=target,
        line=line,
    )


def parse_program(text: str, source_name: Optional[str] = None) -> List[Instruction]:
    """Parse a multi-line assembly listing into a list of instructions.

    Supports blank lines, ``#`` / ``//`` comments (full-line or trailing,
    including between labeled blocks), labels (``NAME:`` on their own line
    or ``NAME: INSTR`` inline) and symbolic branch targets.  Instructions
    are laid out at consecutive 16-byte offsets starting from 0.

    ``source_name`` names the listing in any :class:`ParseError`, which
    also carries the 1-based line (and best-effort column) of the failure.
    """
    raw_lines = text.splitlines()
    # First pass: discover labels and instruction offsets.
    labels: Dict[str, int] = {}
    instruction_lines: List[Tuple[str, int, int]] = []
    offset = 0
    for lineno, raw in enumerate(raw_lines, start=1):
        stripped = raw.split("#")[0].split("//")[0].strip()
        if not stripped or stripped == ";":
            continue
        label_match = _LABEL_RE.match(stripped)
        if label_match:
            labels[label_match.group("label")] = offset
            stripped = label_match.group("rest").strip()
            if not stripped or stripped == ";":
                continue
        instruction_lines.append((stripped, offset, lineno))
        offset += INSTRUCTION_SIZE

    instructions = [
        parse_instruction(
            line_text,
            offset=line_offset,
            labels=labels,
            source_name=source_name,
            listing_line=lineno,
        )
        for line_text, line_offset, lineno in instruction_lines
    ]
    return instructions
