"""Fine-grained stall classification (Figure 5).

After attribution, dependent stalls are refined by the opcode of the *source*
instruction:

* memory dependency → constant memory (``LDC``), local memory (``LDL``),
  global memory (other loads) — Figure 5a;
* execution dependency → shared memory (``LDS``), WAR dependency (stores:
  ``ST``/``STS``/``STG``/``STL``), arithmetic (others) — Figure 5b;
* synchronization stays in its own bucket.

Knowing that stalls are *local-memory* dependencies matters for register
pressure analysis (register spills); the Register Reuse optimizer matches on
exactly that class.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import Instruction
from repro.isa.registers import MemorySpace
from repro.sampling.stall_reasons import DetailedStallReason, StallReason

_STORE_OPCODES = frozenset({"ST", "STS", "STG", "STL", "RED"})


def classify_source(
    reason: StallReason, source_instruction: Optional[Instruction]
) -> DetailedStallReason:
    """Classify a dependent stall by the opcode of its source instruction."""
    if reason is StallReason.SYNCHRONIZATION:
        return DetailedStallReason.SYNCHRONIZATION
    if source_instruction is None:
        return (
            DetailedStallReason.GLOBAL_MEMORY_DEPENDENCY
            if reason is StallReason.MEMORY_DEPENDENCY
            else DetailedStallReason.ARITHMETIC_DEPENDENCY
        )

    opcode = source_instruction.opcode
    space = source_instruction.memory_space

    if reason is StallReason.MEMORY_DEPENDENCY:
        if opcode == "LDC" or space is MemorySpace.CONSTANT:
            return DetailedStallReason.CONSTANT_MEMORY_DEPENDENCY
        if opcode == "LDL" or space is MemorySpace.LOCAL:
            return DetailedStallReason.LOCAL_MEMORY_DEPENDENCY
        return DetailedStallReason.GLOBAL_MEMORY_DEPENDENCY

    if reason is StallReason.EXECUTION_DEPENDENCY:
        if opcode == "LDS" or space is MemorySpace.SHARED and source_instruction.is_load:
            return DetailedStallReason.SHARED_MEMORY_DEPENDENCY
        if opcode in _STORE_OPCODES or source_instruction.is_store:
            return DetailedStallReason.WAR_DEPENDENCY
        return DetailedStallReason.ARITHMETIC_DEPENDENCY

    return DetailedStallReason.SELF
