"""Backward slicing for GPU instructions.

The slicer finds, for a *use* instruction, the immediate def instructions of
every resource it reads.  Three aspects distinguish it from classic CPU
binary slicing (Section 4, "Backward slicing"):

* **Virtual barrier registers.**  A write/read barrier index in a control
  code is treated as a def of the corresponding virtual barrier register
  ``B0``-``B5`` and a wait mask as a use, so dependencies carried only
  through control codes (Figure 3: a ``BRA`` that waits on the barrier set by
  an ``LDG`` without reading its destination register) are discovered by the
  same def-use machinery.

* **Predicates.**  The search along a path does not stop at the first def of
  a resource: it continues until the union of the encountered defs'
  predicates *covers* the predicate of the use instruction (Figure 4a — an
  unpredicated use of ``R0`` may depend on ``@P0 LDG R0`` *and* on
  ``@!P0 LDC R0`` earlier on the path).

* **Scope.**  Slicing is intra-function and finds only immediate dependency
  sources; transitive dependencies are unlikely to cause the observed stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.isa.instruction import Instruction
from repro.isa.registers import Predicate

#: A sliced resource: ``("R", index)`` for a register, ``("B", index)`` for a
#: virtual barrier register.
Resource = Tuple[str, int]


@dataclass(frozen=True)
class DefSite:
    """One immediate dependency source found by the slicer."""

    offset: int
    instruction: Instruction
    resource: Resource
    #: Guard predicate of the def instruction.
    predicate: Predicate

    @property
    def opcode(self) -> str:
        return self.instruction.opcode


@dataclass
class ImmediateDependencies:
    """All immediate dependency sources of one use instruction."""

    use_offset: int
    use_instruction: Instruction
    #: Resource -> def sites that may have produced the value read.
    defs: Dict[Resource, List[DefSite]] = field(default_factory=dict)

    def all_sites(self) -> List[DefSite]:
        sites: List[DefSite] = []
        seen: Set[Tuple[int, Resource]] = set()
        for resource_sites in self.defs.values():
            for site in resource_sites:
                key = (site.offset, site.resource)
                if key not in seen:
                    seen.add(key)
                    sites.append(site)
        return sites

    def source_offsets(self) -> List[int]:
        return sorted({site.offset for site in self.all_sites()})

    def __bool__(self) -> bool:
        return any(self.defs.values())


def _predicate_union_covers(cover: FrozenSet[Tuple[int, bool]], use: Predicate) -> bool:
    """Whether the predicate union ``cover`` contains the use predicate.

    ``cover`` holds ``(index, negated)`` pairs; ``(-1, False)`` denotes the
    unconditional predicate ``_``.  Per the paper, ``P`` contains ``p'`` iff
    ``p' in P`` or ``_ in P``, and ``{p_i} ∪ {!p_i} = {_}``.
    """
    if (-1, False) in cover:
        return True
    indices = {index for index, _negated in cover if index >= 0}
    for index in indices:
        if (index, False) in cover and (index, True) in cover:
            return True
    if use.is_true_predicate:
        return False
    return (use.index, use.negated) in cover


def _resources_defined(instruction: Instruction) -> Set[Resource]:
    resources: Set[Resource] = set()
    for register in instruction.defined_registers:
        resources.add(("R", register.index))
    for barrier in instruction.defined_barriers:
        resources.add(("B", barrier.index))
    return resources


def _resources_used(instruction: Instruction) -> Set[Resource]:
    resources: Set[Resource] = set()
    for register in instruction.used_registers:
        resources.add(("R", register.index))
    for barrier in instruction.waited_barriers:
        resources.add(("B", barrier.index))
    return resources


class BackwardSlicer:
    """Intra-function backward slicer over one control flow graph."""

    def __init__(self, cfg: ControlFlowGraph, max_visited_blocks: int = 512):
        self.cfg = cfg
        self.max_visited_blocks = max_visited_blocks
        self._cache: Dict[int, ImmediateDependencies] = {}

    # ------------------------------------------------------------------
    def slice_instruction(self, use_offset: int) -> ImmediateDependencies:
        """Immediate dependency sources of the instruction at ``use_offset``."""
        if use_offset in self._cache:
            return self._cache[use_offset]
        use_instruction = self.cfg.instruction_at(use_offset)
        dependencies = ImmediateDependencies(
            use_offset=use_offset, use_instruction=use_instruction
        )
        for resource in sorted(_resources_used(use_instruction)):
            sites = self._find_defs(use_offset, use_instruction, resource)
            if sites:
                dependencies.defs[resource] = sites
        self._cache[use_offset] = dependencies
        return dependencies

    # ------------------------------------------------------------------
    def _find_defs(
        self, use_offset: int, use_instruction: Instruction, resource: Resource
    ) -> List[DefSite]:
        """Backward search for defs of ``resource`` reaching ``use_offset``."""
        cfg = self.cfg
        use_block = cfg.block_containing(use_offset)
        use_predicate = use_instruction.predicate

        found: Dict[int, DefSite] = {}
        empty_cover: FrozenSet[Tuple[int, bool]] = frozenset()

        def predicate_key(predicate: Predicate) -> Tuple[int, bool]:
            if predicate.is_true_predicate:
                return (-1, False)
            return (predicate.index, predicate.negated)

        def scan_block(
            block_index: int, start_position: Optional[int], cover: FrozenSet[Tuple[int, bool]]
        ) -> Tuple[FrozenSet[Tuple[int, bool]], bool]:
            """Scan a block backwards from ``start_position`` (exclusive).

            Returns the updated predicate cover and whether the search along
            this path is complete (the cover contains the use predicate).
            """
            block = cfg.blocks[block_index]
            instructions = block.instructions
            position = (len(instructions) if start_position is None else start_position) - 1
            current = set(cover)
            while position >= 0:
                candidate = instructions[position]
                if resource in _resources_defined(candidate):
                    found.setdefault(
                        candidate.offset,
                        DefSite(
                            offset=candidate.offset,
                            instruction=candidate,
                            resource=resource,
                            predicate=candidate.predicate,
                        ),
                    )
                    current.add(predicate_key(candidate.predicate))
                    if _predicate_union_covers(frozenset(current), use_predicate):
                        return frozenset(current), True
                position -= 1
            return frozenset(current), False

        # Position of the use inside its own block.
        use_position = next(
            index
            for index, instruction in enumerate(use_block.instructions)
            if instruction.offset == use_offset
        )

        visited: Set[Tuple[int, FrozenSet[Tuple[int, bool]]]] = set()
        stack: List[Tuple[int, Optional[int], FrozenSet[Tuple[int, bool]]]] = [
            (use_block.index, use_position, empty_cover)
        ]
        visited_blocks = 0

        while stack and visited_blocks < self.max_visited_blocks:
            block_index, start_position, cover = stack.pop()
            state = (block_index, cover) if start_position is None else (-block_index - 1, cover)
            if state in visited:
                continue
            visited.add(state)
            visited_blocks += 1

            new_cover, complete = scan_block(block_index, start_position, cover)
            if complete:
                continue
            for predecessor in self.cfg.predecessors.get(block_index, []):
                stack.append((predecessor, None, new_cover))

        return sorted(found.values(), key=lambda site: site.offset)
