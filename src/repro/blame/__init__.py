"""The instruction blamer (Section 4 of the paper).

Memory dependency, execution dependency and synchronization stalls are
*caused by source instructions* rather than by the instructions observed to
stall.  The blamer attributes those stalls backwards:

1. :mod:`repro.blame.slicing` — backward slicing over the control flow graph
   tracking regular registers, the six virtual barrier registers and
   predicates (the search continues until the union of def predicates covers
   the use predicate);
2. :mod:`repro.blame.graph` — build an instruction dependency graph whose
   nodes carry measured stalls and whose edges are def-use relations;
3. :mod:`repro.blame.pruning` — prune "cold" edges with the three heuristics
   (opcode-based, dominator-based, instruction-latency-based);
4. :mod:`repro.blame.attribution` — apportion each node's stalls over its
   remaining incoming edges using issue-sample and path-length ratios
   (Equation 1) and classify the result into the fine-grained stall reasons
   of Figure 5;
5. :mod:`repro.blame.coverage` — the single-dependency coverage metric of
   Figure 7.
"""

from repro.blame.slicing import BackwardSlicer, DefSite, ImmediateDependencies
from repro.blame.graph import (
    DependencyEdge,
    DependencyGraph,
    DependencyNode,
    build_dependency_graph,
)
from repro.blame.pruning import PruningStatistics, prune_cold_edges
from repro.blame.attribution import BlamedEdge, BlameResult, InstructionBlamer
from repro.blame.classification import classify_source
from repro.blame.coverage import single_dependency_coverage

__all__ = [
    "BackwardSlicer",
    "BlameResult",
    "BlamedEdge",
    "DefSite",
    "DependencyEdge",
    "DependencyGraph",
    "DependencyNode",
    "ImmediateDependencies",
    "InstructionBlamer",
    "PruningStatistics",
    "build_dependency_graph",
    "classify_source",
    "prune_cold_edges",
    "single_dependency_coverage",
]
