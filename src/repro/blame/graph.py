"""The instruction dependency graph.

Nodes are instructions annotated with their measured stalls and issue
samples; edges are def-use relations discovered by the backward slicer.  The
graph is built per kernel launch from the instructions that appear in the
profile, and only for the *dependent* stall reasons (memory dependency,
execution dependency, synchronization) that must be attributed backwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.blame.slicing import BackwardSlicer
from repro.blame.slicing import Resource  # re-exported for typing convenience
from repro.isa.instruction import Instruction
from repro.sampling.sample import InstructionKey, KernelProfile
from repro.sampling.stall_reasons import StallReason
from repro.structure.program import ProgramStructure


@dataclass
class DependencyNode:
    """One instruction in the dependency graph."""

    function: str
    offset: int
    #: ``None`` only on graphs reloaded from :meth:`DependencyGraph.from_dict`
    #: (the instruction objects live in the binary and are not serialized).
    instruction: Optional[Instruction]
    #: Latency-sample stall counts by reason at this instruction.
    stalls: Dict[StallReason, int] = field(default_factory=dict)
    #: Active samples in which this instruction was issuing.
    issue_samples: int = 0

    @property
    def key(self) -> InstructionKey:
        return (self.function, self.offset)

    @property
    def total_stalls(self) -> int:
        return sum(self.stalls.values())

    def dependent_stalls(self) -> Dict[StallReason, int]:
        """The stall reasons that require backward attribution."""
        return {
            reason: count for reason, count in self.stalls.items() if reason.is_dependent
        }

    def self_stalls(self) -> Dict[StallReason, int]:
        """The stall reasons attributed to the instruction itself."""
        return {
            reason: count
            for reason, count in self.stalls.items()
            if not reason.is_dependent and reason.is_stall
        }


@dataclass
class DependencyEdge:
    """A def-use relation from a source (def) node to a destination (use) node."""

    source: InstructionKey
    dest: InstructionKey
    #: Resources (registers / barrier registers) carried by the edge.
    resources: FrozenSet[Resource]

    def __hash__(self) -> int:
        return hash((self.source, self.dest, self.resources))


@dataclass
class DependencyGraph:
    """The dependency graph of one kernel launch."""

    nodes: Dict[InstructionKey, DependencyNode] = field(default_factory=dict)
    edges: List[DependencyEdge] = field(default_factory=list)
    _in_edges: Dict[InstructionKey, List[DependencyEdge]] = field(default_factory=dict)
    _out_edges: Dict[InstructionKey, List[DependencyEdge]] = field(default_factory=dict)

    def add_node(self, node: DependencyNode) -> DependencyNode:
        existing = self.nodes.get(node.key)
        if existing is not None:
            return existing
        self.nodes[node.key] = node
        return node

    def add_edge(self, edge: DependencyEdge) -> None:
        self.edges.append(edge)
        self._in_edges.setdefault(edge.dest, []).append(edge)
        self._out_edges.setdefault(edge.source, []).append(edge)

    def remove_edges(self, removed: Iterable[DependencyEdge]) -> None:
        removed_set = {id(edge) for edge in removed}
        if not removed_set:
            return
        self.edges = [edge for edge in self.edges if id(edge) not in removed_set]
        for mapping in (self._in_edges, self._out_edges):
            for key in list(mapping):
                mapping[key] = [edge for edge in mapping[key] if id(edge) not in removed_set]

    def in_edges(self, key: InstructionKey) -> List[DependencyEdge]:
        return list(self._in_edges.get(key, []))

    def out_edges(self, key: InstructionKey) -> List[DependencyEdge]:
        return list(self._out_edges.get(key, []))

    def node(self, key: InstructionKey) -> DependencyNode:
        return self.nodes[key]

    def stalled_nodes(self) -> List[DependencyNode]:
        """Nodes that carry at least one stall sample."""
        return [node for node in self.nodes.values() if node.total_stalls > 0]

    def copy(self) -> "DependencyGraph":
        graph = DependencyGraph()
        for node in self.nodes.values():
            graph.add_node(
                DependencyNode(
                    function=node.function,
                    offset=node.offset,
                    instruction=node.instruction,
                    stalls=dict(node.stalls),
                    issue_samples=node.issue_samples,
                )
            )
        for edge in self.edges:
            graph.add_edge(
                DependencyEdge(source=edge.source, dest=edge.dest, resources=edge.resources)
            )
        return graph

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Serialization.  The dumped form is *detached*: nodes keep their
    # sample annotations and edges their resources, but the Instruction
    # objects (which live in the binary, not the graph) are not carried —
    # a reloaded graph supports topology and sample queries, not
    # re-attribution.  ``dump -> load -> dump`` is a fixed point.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "nodes": [
                {
                    "function": node.function,
                    "offset": node.offset,
                    "stalls": {reason.value: count for reason, count in node.stalls.items()},
                    "issue_samples": node.issue_samples,
                }
                for node in self.nodes.values()
            ],
            "edges": [
                {
                    "source": list(edge.source),
                    "dest": list(edge.dest),
                    "resources": [list(resource) for resource in sorted(edge.resources)],
                }
                for edge in self.edges
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DependencyGraph":
        graph = cls()
        for entry in payload["nodes"]:
            graph.add_node(
                DependencyNode(
                    function=entry["function"],
                    offset=entry["offset"],
                    instruction=None,
                    stalls={
                        StallReason(reason): count
                        for reason, count in entry["stalls"].items()
                    },
                    issue_samples=entry["issue_samples"],
                )
            )
        for entry in payload["edges"]:
            graph.add_edge(
                DependencyEdge(
                    source=(entry["source"][0], entry["source"][1]),
                    dest=(entry["dest"][0], entry["dest"][1]),
                    resources=frozenset(
                        (resource[0], resource[1]) for resource in entry["resources"]
                    ),
                )
            )
        return graph


def build_dependency_graph(
    profile: KernelProfile,
    structure: ProgramStructure,
    slicers: Optional[Dict[str, BackwardSlicer]] = None,
) -> DependencyGraph:
    """Build the dependency graph for one kernel profile.

    A node is created for every instruction that appears in the profile.  For
    every node with dependent stalls, the backward slicer finds its immediate
    def sites and an edge is added from each def site to the node (def sites
    are added as nodes even when they carry no samples themselves).
    """
    graph = DependencyGraph()
    slicers = slicers if slicers is not None else {}

    def slicer_for(function_name: str) -> BackwardSlicer:
        if function_name not in slicers:
            slicers[function_name] = BackwardSlicer(structure.function(function_name).cfg)
        return slicers[function_name]

    # Create nodes for every profiled instruction.
    for (function_name, offset), samples in profile.instructions.items():
        if function_name not in structure.functions:
            continue
        try:
            instruction = structure.function(function_name).instruction_at(offset)
        except KeyError:
            continue
        graph.add_node(
            DependencyNode(
                function=function_name,
                offset=offset,
                instruction=instruction,
                stalls=dict(samples.stalls),
                issue_samples=samples.issue_samples,
            )
        )

    # Add def-use edges for nodes with dependent stalls.
    for node in list(graph.nodes.values()):
        if not node.dependent_stalls():
            continue
        slicer = slicer_for(node.function)
        dependencies = slicer.slice_instruction(node.offset)
        # Group def sites by source offset so one edge carries all resources.
        resources_by_source: Dict[int, Set[Resource]] = {}
        for site in dependencies.all_sites():
            resources_by_source.setdefault(site.offset, set()).add(site.resource)
        for source_offset, resources in sorted(resources_by_source.items()):
            if source_offset == node.offset:
                continue
            source_key = (node.function, source_offset)
            if source_key not in graph.nodes:
                source_instruction = structure.function(node.function).instruction_at(source_offset)
                source_samples = profile.samples_at(node.function, source_offset)
                graph.add_node(
                    DependencyNode(
                        function=node.function,
                        offset=source_offset,
                        instruction=source_instruction,
                        stalls=dict(source_samples.stalls) if source_samples else {},
                        issue_samples=source_samples.issue_samples if source_samples else 0,
                    )
                )
            graph.add_edge(
                DependencyEdge(
                    source=source_key, dest=node.key, resources=frozenset(resources)
                )
            )

    return graph
