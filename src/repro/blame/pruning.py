"""Cold-edge pruning (Section 4, "Prune cold edges").

Not every def-use edge causes the stalls observed at its destination.  The
three heuristic rules remove edges that cannot be responsible:

1. **Opcode-based pruning.**  Memory dependency stalls are attributed to
   memory (load) instructions only; synchronization stalls to
   synchronization instructions only; execution dependency stalls are not
   attributed to long-latency memory loads (which would show up as memory
   dependencies instead).  Because the same edge may be relevant for one
   stall reason and not another, opcode pruning is evaluated per reason at
   attribution time through :func:`edge_supports_reason`; an edge that
   supports *no* dependent reason present at its destination is removed from
   the graph outright.

2. **Dominator-based pruning.**  An edge ``i -> j`` is removed when a
   non-predicated instruction ``k`` that uses the same operands lies on every
   control-flow path from ``i`` to ``j`` — the stall would have been observed
   at ``k`` instead of ``j``.

3. **Instruction-latency-based pruning.**  An edge ``i -> j`` is removed when
   even the shortest path from ``i`` to ``j`` contains more instructions than
   the (upper bound) latency of ``i`` — by the time ``j`` issues, ``i``'s
   result has long been available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.arch.machine import GpuArchitecture
from repro.blame.graph import DependencyEdge, DependencyGraph
from repro.blame.slicing import Resource
from repro.isa.instruction import Instruction
from repro.sampling.stall_reasons import StallReason
from repro.structure.program import ProgramStructure


@dataclass
class PruningStatistics:
    """How many edges each rule removed (reported in tests and benchmarks)."""

    total_edges: int = 0
    removed_by_opcode: int = 0
    removed_by_dominator: int = 0
    removed_by_latency: int = 0

    @property
    def removed_total(self) -> int:
        return self.removed_by_opcode + self.removed_by_dominator + self.removed_by_latency

    @property
    def remaining_edges(self) -> int:
        return self.total_edges - self.removed_total

    def to_dict(self) -> dict:
        return {
            "total_edges": self.total_edges,
            "removed_by_opcode": self.removed_by_opcode,
            "removed_by_dominator": self.removed_by_dominator,
            "removed_by_latency": self.removed_by_latency,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PruningStatistics":
        return cls(
            total_edges=payload["total_edges"],
            removed_by_opcode=payload["removed_by_opcode"],
            removed_by_dominator=payload["removed_by_dominator"],
            removed_by_latency=payload["removed_by_latency"],
        )


def edge_supports_reason(
    source_instruction: Instruction, reason: StallReason
) -> bool:
    """Opcode-based rule: can this source cause the given dependent stall?"""
    info = source_instruction.info
    if reason is StallReason.MEMORY_DEPENDENCY:
        # Only loads from the long-latency address spaces produce memory
        # dependency stalls.
        return info.is_load
    if reason is StallReason.SYNCHRONIZATION:
        return info.is_synchronization
    if reason is StallReason.EXECUTION_DEPENDENCY:
        # Long-latency loads surface as memory dependencies, not execution
        # dependencies; everything else (arithmetic, shared memory loads,
        # stores holding read barriers) can cause execution dependencies.
        from repro.isa.registers import MemorySpace

        if info.is_load and source_instruction.memory_space in (
            MemorySpace.GLOBAL,
            MemorySpace.GENERIC,
            MemorySpace.LOCAL,
            MemorySpace.CONSTANT,
            MemorySpace.TEXTURE,
        ):
            return False
        return not info.is_synchronization
    return False


def _dominator_rule_applies(
    edge: DependencyEdge,
    graph: DependencyGraph,
    structure: ProgramStructure,
) -> bool:
    """Whether an intervening non-predicated use kills the edge."""
    function_structure = structure.function(edge.source[0])
    cfg = function_structure.cfg
    source_offset = edge.source[1]
    dest_offset = edge.dest[1]
    registers: Set[int] = {index for kind, index in edge.resources if kind == "R"}
    if not registers:
        return False

    try:
        blocks_on_all_paths = cfg.blocks_on_all_paths(source_offset, dest_offset)
    except KeyError:
        return False
    source_block = cfg.block_containing(source_offset)
    dest_block = cfg.block_containing(dest_offset)

    for block_index in blocks_on_all_paths:
        block = cfg.blocks[block_index]
        for instruction in block.instructions:
            offset = instruction.offset
            if offset in (source_offset, dest_offset):
                continue
            # Restrict to instructions strictly between source and dest in
            # program position when they share a block with either endpoint.
            if block_index == source_block.index and offset < source_offset:
                continue
            if block_index == dest_block.index and offset > dest_offset:
                continue
            if instruction.is_predicated:
                continue
            used = {register.index for register in instruction.used_registers}
            if used & registers:
                return True
    return False


def _latency_rule_applies(
    edge: DependencyEdge,
    structure: ProgramStructure,
    architecture: GpuArchitecture,
) -> bool:
    """Whether every path from source to dest is longer than the source latency."""
    function_structure = structure.function(edge.source[0])
    cfg = function_structure.cfg
    source_instruction = cfg.instruction_at(edge.source[1])
    latency = architecture.latency_upper_bound(source_instruction.full_opcode)
    shortest = cfg.shortest_path_instructions(edge.source[1], edge.dest[1])
    if shortest is None:
        return False
    return shortest > latency


def prune_cold_edges(
    graph: DependencyGraph,
    structure: ProgramStructure,
    architecture: GpuArchitecture,
) -> PruningStatistics:
    """Apply the three pruning rules in place; returns removal statistics."""
    statistics = PruningStatistics(total_edges=len(graph.edges))
    to_remove: List[DependencyEdge] = []

    for edge in graph.edges:
        if edge.source[0] != edge.dest[0]:
            # Dependencies are intra-function by construction; drop anything else.
            to_remove.append(edge)
            statistics.removed_by_opcode += 1
            continue
        dest_node = graph.node(edge.dest)
        source_node = graph.node(edge.source)
        dependent_reasons = [
            reason for reason in dest_node.dependent_stalls() if dest_node.stalls.get(reason)
        ]

        # Rule 1: opcode-based.  Remove the edge when it supports none of the
        # dependent stall reasons present at the destination.
        if dependent_reasons and not any(
            edge_supports_reason(source_node.instruction, reason)
            for reason in dependent_reasons
        ):
            to_remove.append(edge)
            statistics.removed_by_opcode += 1
            continue

        # Rule 2: dominator-based.
        if _dominator_rule_applies(edge, graph, structure):
            to_remove.append(edge)
            statistics.removed_by_dominator += 1
            continue

        # Rule 3: instruction-latency-based.
        if _latency_rule_applies(edge, structure, architecture):
            to_remove.append(edge)
            statistics.removed_by_latency += 1
            continue

    graph.remove_edges(to_remove)
    return statistics
