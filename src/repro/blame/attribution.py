"""Stall attribution (Section 4, "Attribute stalls" and Equation 1).

After pruning, a stalled node may still have several incoming edges.  The
stalls of the observed node ``j`` are apportioned over its dependency sources
``i`` using two heuristics:

1. the more *issued samples* a source has, the more stalls it is blamed for
   (ratio ``R_issue``);
2. the longer the (longest) control-flow path from the source to the stalled
   node, the fewer stalls it is blamed for (ratio ``R_path``).

.. math::

    S_i = \\frac{R^{path}_i R^{issue}_i}{\\sum_{k \\in incoming(j)} R^{path}_k R^{issue}_k} S_j

The blamer also classifies each attributed stall into the fine-grained
reasons of Figure 5 (by the source's opcode) and keeps per-edge records —
including the def/use source locations and their instruction distance — that
the optimizers and the report generator consume.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.machine import GpuArchitecture, VoltaV100
from repro.blame.classification import classify_source
from repro.blame.graph import DependencyGraph, build_dependency_graph
from repro.blame.pruning import PruningStatistics, edge_supports_reason, prune_cold_edges
from repro.blame.slicing import BackwardSlicer
from repro.sampling.sample import InstructionKey, KernelProfile
from repro.sampling.stall_reasons import DetailedStallReason, StallReason
from repro.structure.program import ProgramStructure, SourceLocation


@dataclass
class BlamedEdge:
    """Stalls attributed along one dependency edge (or to the node itself)."""

    #: The instruction blamed for the stalls (the def / source).
    source: InstructionKey
    #: The instruction where the stalls were observed (the use).
    dest: InstructionKey
    #: Coarse stall reason observed at the destination.
    reason: StallReason
    #: Fine-grained classification by the source's opcode (Figure 5).
    detail: DetailedStallReason
    #: Number of stall samples attributed along this edge.
    stalls: float
    #: Instructions on the shortest path from source to dest (the "distance"
    #: reported for hotspots in the advice report, Figure 8).
    distance: Optional[int] = None
    #: Issue samples of the source (the R_issue numerator).
    source_issue_samples: int = 0

    @property
    def is_self_blame(self) -> bool:
        return self.source == self.dest

    def to_dict(self) -> dict:
        return {
            "source": list(self.source),
            "dest": list(self.dest),
            "reason": self.reason.value,
            "detail": self.detail.value,
            "stalls": self.stalls,
            "distance": self.distance,
            "source_issue_samples": self.source_issue_samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BlamedEdge":
        return cls(
            source=(payload["source"][0], payload["source"][1]),
            dest=(payload["dest"][0], payload["dest"][1]),
            reason=StallReason(payload["reason"]),
            detail=DetailedStallReason(payload["detail"]),
            stalls=payload["stalls"],
            distance=payload.get("distance"),
            source_issue_samples=payload.get("source_issue_samples", 0),
        )


@dataclass
class BlameResult:
    """The output of the instruction blamer for one kernel launch."""

    kernel: str
    graph: DependencyGraph
    pruning: PruningStatistics
    #: Every attribution record.
    edges: List[BlamedEdge] = field(default_factory=list)
    #: Total stalls blamed on each source instruction, by detailed reason.
    blamed: Dict[InstructionKey, Dict[DetailedStallReason, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, edge: BlamedEdge) -> None:
        self.edges.append(edge)
        per_source = self.blamed.setdefault(edge.source, defaultdict(float))
        per_source[edge.detail] += edge.stalls

    def blamed_stalls(self, key: InstructionKey) -> float:
        return sum(self.blamed.get(key, {}).values())

    def totals_by_detail(self) -> Dict[DetailedStallReason, float]:
        totals: Dict[DetailedStallReason, float] = defaultdict(float)
        for per_source in self.blamed.values():
            for detail, count in per_source.items():
                totals[detail] += count
        return dict(totals)

    def edges_for_detail(self, detail: DetailedStallReason) -> List[BlamedEdge]:
        return [edge for edge in self.edges if edge.detail is detail]

    def edges_for_reason(self, reason: StallReason) -> List[BlamedEdge]:
        return [edge for edge in self.edges if edge.reason is reason]

    def top_sources(self, count: int = 10) -> List[Tuple[InstructionKey, float]]:
        ranked = sorted(
            ((key, self.blamed_stalls(key)) for key in self.blamed),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:count]

    # ------------------------------------------------------------------
    # Serialization (results must cross process and service boundaries)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A lossless JSON-friendly form of the blame tree.

        The attribution records (:class:`BlamedEdge`) and the pruning
        statistics round-trip exactly; the dependency graph is dumped in its
        detached form (see :meth:`DependencyGraph.to_dict`).  The ``blamed``
        aggregate is *not* serialized: :meth:`from_dict` rebuilds it by
        replaying the edges through :meth:`add`, in order, so the float
        accumulation is reproduced exactly.
        """
        from repro.api.schema import API_SCHEMA_VERSION

        return {
            "schema_version": API_SCHEMA_VERSION,
            "kind": "blame_result",
            "kernel": self.kernel,
            "graph": self.graph.to_dict(),
            "pruning": self.pruning.to_dict(),
            "edges": [edge.to_dict() for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BlameResult":
        from repro.api.schema import check_envelope

        payload = check_envelope(payload, "blame_result")
        result = cls(
            kernel=payload["kernel"],
            graph=DependencyGraph.from_dict(payload["graph"]),
            pruning=PruningStatistics.from_dict(payload["pruning"]),
        )
        for entry in payload["edges"]:
            result.add(BlamedEdge.from_dict(entry))
        return result


class InstructionBlamer:
    """Runs the full blame pipeline: slice, build graph, prune, apportion."""

    def __init__(self, architecture: Optional[GpuArchitecture] = None):
        self.architecture = architecture or VoltaV100

    # ------------------------------------------------------------------
    def blame(
        self,
        profile: KernelProfile,
        structure: ProgramStructure,
    ) -> BlameResult:
        """Attribute the stalls of one kernel profile to their sources."""
        slicers: Dict[str, BackwardSlicer] = {}
        graph = build_dependency_graph(profile, structure, slicers)
        pruning = prune_cold_edges(graph, structure, self.architecture)
        result = BlameResult(kernel=profile.kernel, graph=graph, pruning=pruning)

        for node in graph.stalled_nodes():
            cfg = structure.function(node.function).cfg

            # Dependent stalls: apportion over the surviving incoming edges
            # that can cause the reason (opcode rule re-checked per reason).
            for reason, count in node.dependent_stalls().items():
                candidates = [
                    edge
                    for edge in graph.in_edges(node.key)
                    if edge_supports_reason(graph.node(edge.source).instruction, reason)
                ]
                if not candidates:
                    # No source found: the stall stays where it was observed.
                    detail = (
                        DetailedStallReason.SYNCHRONIZATION
                        if reason is StallReason.SYNCHRONIZATION
                        else classify_source(reason, None)
                    )
                    result.add(
                        BlamedEdge(
                            source=node.key,
                            dest=node.key,
                            reason=reason,
                            detail=detail,
                            stalls=float(count),
                            distance=0,
                            source_issue_samples=node.issue_samples,
                        )
                    )
                    continue

                weights: List[float] = []
                details: List[DetailedStallReason] = []
                distances: List[Optional[int]] = []
                for edge in candidates:
                    source_node = graph.node(edge.source)
                    issue_ratio = float(max(source_node.issue_samples, 1))
                    longest = cfg.longest_path_instructions(edge.source[1], edge.dest[1])
                    if longest is None:
                        longest = cfg.shortest_path_instructions(edge.source[1], edge.dest[1])
                    path_length = (longest if longest is not None else 0) + 1
                    weights.append(issue_ratio / path_length)
                    details.append(classify_source(reason, source_node.instruction))
                    distances.append(
                        cfg.shortest_path_instructions(edge.source[1], edge.dest[1])
                    )
                total_weight = sum(weights) or 1.0
                for edge, weight, detail, distance in zip(candidates, weights, details, distances):
                    source_node = graph.node(edge.source)
                    result.add(
                        BlamedEdge(
                            source=edge.source,
                            dest=node.key,
                            reason=reason,
                            detail=detail,
                            stalls=count * weight / total_weight,
                            distance=distance,
                            source_issue_samples=source_node.issue_samples,
                        )
                    )

            # Self stalls (memory throttle, instruction fetch, ...) stay put.
            for reason, count in node.self_stalls().items():
                result.add(
                    BlamedEdge(
                        source=node.key,
                        dest=node.key,
                        reason=reason,
                        detail=DetailedStallReason.SELF,
                        stalls=float(count),
                        distance=0,
                        source_issue_samples=node.issue_samples,
                    )
                )

        return result
