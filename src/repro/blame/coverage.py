"""Single-dependency coverage (Section 6.3 and Figure 7).

A node of the instruction dependency graph is a *single dependency node* if
it has no incoming edge or each of its incoming edges represents a different
dependency (i.e. no two incoming edges carry the same fine-grained dependency
class — in that case every stall reason maps to exactly one edge and no
apportioning is needed).  Single-dependency coverage is the ratio of single
dependency nodes to all nodes.

The paper reports this metric before and after pruning cold edges: pruning
lifts most Rodinia benchmarks above 0.8; bfs (64-bit addresses split across
two registers defined separately) and nw (intricate, fully-unrolled control
flow) remain lower.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable

from repro.blame.classification import classify_source
from repro.blame.graph import DependencyGraph
from repro.sampling.stall_reasons import StallReason


def _is_single_dependency(graph: DependencyGraph, key) -> bool:
    edges = graph.in_edges(key)
    if not edges:
        return True
    classes = []
    for edge in edges:
        source = graph.node(edge.source)
        instruction = source.instruction
        if instruction.info.is_load:
            reason = StallReason.MEMORY_DEPENDENCY
        elif instruction.info.is_synchronization:
            reason = StallReason.SYNCHRONIZATION
        else:
            reason = StallReason.EXECUTION_DEPENDENCY
        classes.append(classify_source(reason, instruction))
    counts = Counter(classes)
    return all(count == 1 for count in counts.values())


def single_dependency_coverage(graph: DependencyGraph, stalled_only: bool = True) -> float:
    """Fraction of (stalled) nodes whose incoming edges are all distinct dependencies."""
    nodes = graph.stalled_nodes() if stalled_only else list(graph.nodes.values())
    if not nodes:
        return 1.0
    single = sum(1 for node in nodes if _is_single_dependency(graph, node.key))
    return single / len(nodes)
