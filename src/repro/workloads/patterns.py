"""Reusable SASS-level code patterns shared by the synthetic benchmarks.

Each helper emits a small idiom into a :class:`~repro.cubin.builder.KernelBuilder`
and mirrors a source-level construct the paper's case studies talk about:
address setup from thread/block indices, a global load followed (closely or
not) by its use, the double-constant multiply of the hotspot example, the
slow math sequences targeted by Fast Math, the emulated integer division
targeted by Strength Reduction, and shared-memory reductions guarded by
block barriers.
"""

from __future__ import annotations

from typing import Optional

from repro.cubin.builder import KernelBuilder, imm, mem, p, r
from repro.isa.registers import MemorySpace


def standard_prologue(k: KernelBuilder, addr_reg: int = 2, line: int = 1) -> None:
    """Thread-index and global-address setup shared by most kernels.

    Leaves a 64-bit global address in ``(addr_reg, addr_reg + 1)`` and the
    linear thread index in ``R0``.
    """
    k.at_line(line)
    k.s2r(0, "SR_TID.X")
    k.s2r(1, "SR_CTAID.X")
    k.mov_imm(addr_reg + 1, 0)
    k.imad(0, 1, imm(256), 0)
    k.imad(addr_reg, 0, imm(4), addr_reg + 1, wide=True)


def global_load_use(
    k: KernelBuilder,
    addr_reg: int,
    data_reg: int,
    acc_reg: int,
    load_line: int,
    use_line: int,
    gap_ops: int = 0,
    gap_base_reg: int = 20,
    offset: int = 0,
) -> None:
    """A global load followed by its use, optionally separated by independent work.

    ``gap_ops`` independent FFMAs on unrelated registers are emitted between
    the load and the use; with ``gap_ops=0`` the def-use distance is 1, the
    pattern the b+tree / pathfinder case studies suffer from and Code
    Reordering widens.
    """
    k.at_line(load_line)
    k.ldg(data_reg, addr_reg, offset=offset)
    for index in range(gap_ops):
        register = gap_base_reg + (index % 4)
        k.at_line(load_line)
        k.ffma(register, register, register, register)
    k.at_line(use_line)
    k.ffma(acc_reg, data_reg, data_reg, acc_reg)


def double_constant_multiply(
    k: KernelBuilder,
    value_reg: int,
    out_reg: int,
    line: int,
    scratch_reg: int = 30,
    optimized: bool = False,
) -> None:
    """The hotspot pattern: a float value multiplied by a double constant.

    Baseline: the compiler promotes the 32-bit value to 64 bits, multiplies in
    double precision and demotes the result (F2F / DMUL / F2F), a chain of
    long-latency conversions.  Optimized (Strength Reduction applied at the
    source level by typing the constant ``2.0f``): a single FMUL.
    """
    k.at_line(line)
    if optimized:
        k.fmul(out_reg, value_reg, imm(2.0))
        return
    k.f2f(scratch_reg, value_reg, modifiers=("F64", "F32"))
    k.dmul(scratch_reg + 2, scratch_reg, imm(2.0, is_double=True))
    k.f2f(out_reg, scratch_reg + 2, modifiers=("F32", "F64"))


def slow_math(
    k: KernelBuilder,
    src_reg: int,
    out_reg: int,
    line: int,
    function: str = "exp",
    fast: bool = False,
    scratch_reg: int = 34,
) -> None:
    """A CUDA math routine (inlined) — slow accurate form vs fast-math form.

    Baseline: the accurate sequence uses range reduction, several SFU
    operations and fix-up multiplies/FMAs with serial dependencies.
    Fast math (``--use_fast_math``): a single SFU operation plus one multiply.
    """
    with k.inlined(f"__internal_accurate_{function}", call_site_line=line):
        k.at_line(line)
        if fast:
            k.mufu(out_reg, src_reg, function="EX2")
            k.fmul(out_reg, out_reg, imm(1.4426950408889634))
            return
        k.emit("RRO", [r(scratch_reg)], [r(src_reg)], modifiers=("EX2",))
        k.mufu(scratch_reg + 1, scratch_reg, function="EX2")
        k.ffma(scratch_reg + 2, scratch_reg + 1, scratch_reg + 1, scratch_reg + 1)
        k.mufu(scratch_reg + 3, scratch_reg + 2, function="RCP")
        k.fmul(scratch_reg + 4, scratch_reg + 3, scratch_reg + 1)
        k.dmul(scratch_reg + 6, scratch_reg + 4, imm(0.6931471805599453, is_double=True))
        k.f2f(out_reg, scratch_reg + 6, modifiers=("F32", "F64"))


def integer_division(
    k: KernelBuilder,
    numerator_reg: int,
    denominator_reg: int,
    out_reg: int,
    line: int,
    optimized: bool = False,
    scratch_reg: int = 40,
) -> None:
    """Index arithmetic with an integer division.

    Baseline: the emulated integer division (a very long latency sequence,
    modelled as a single ``IDIV``).  Optimized (Strength Reduction): multiply
    by the precomputed reciprocal and shift.
    """
    k.at_line(line)
    if optimized:
        k.imad(scratch_reg, numerator_reg, denominator_reg, 0, wide=True)
        k.shl(out_reg, scratch_reg, imm(1))
        return
    k.idiv(out_reg, numerator_reg, denominator_reg)


def shared_reduction_round(
    k: KernelBuilder,
    shared_addr_reg: int,
    acc_reg: int,
    line: int,
    sync_line: int,
    work_ops: int = 2,
    work_base_reg: int = 24,
) -> None:
    """One round of a shared-memory reduction: load, accumulate, work, barrier."""
    k.at_line(line)
    k.lds(acc_reg + 1, shared_addr_reg)
    k.fadd(acc_reg, acc_reg, acc_reg + 1)
    for index in range(work_ops):
        register = work_base_reg + (index % 4)
        k.ffma(register, register, register, register)
    k.at_line(sync_line)
    k.bar_sync()


def store_result(k: KernelBuilder, addr_reg: int, value_reg: int, line: int) -> None:
    """Store the accumulated result back to global memory and exit."""
    k.at_line(line)
    k.stg(addr_reg, value_reg)
    k.exit()
