"""rodinia/gaussian — ``Fan2`` (Thread Increase, achieved 3.86x, estimated 3.33x).

Fan2 is launched with tiny thread blocks, so the per-SM block-count limit
caps occupancy and every warp is mostly empty.  Increasing the number of
threads per block (and shrinking the grid accordingly) is the largest win in
Table 3.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_parallelism_kernel

KERNEL = "Fan2"
SOURCE = "gaussian.cu"

_TOTAL_THREADS = 16384 * 16


def _build(threads_per_block: int) -> KernelSetup:
    grid_blocks = max(1, _TOTAL_THREADS // threads_per_block)
    return build_parallelism_kernel(
        "rodinia/gaussian",
        KERNEL,
        SOURCE,
        grid_blocks=grid_blocks,
        threads_per_block=threads_per_block,
        trip_count=8,
        loads_per_iteration=1,
        work_ops_per_iteration=3,
    )


def baseline() -> KernelSetup:
    return _build(threads_per_block=16)


def more_threads() -> KernelSetup:
    return _build(threads_per_block=256)


CASES = [
    BenchmarkCase(
        name="rodinia/gaussian",
        kernel=KERNEL,
        optimization="Thread Increase",
        optimizer_name="GPUThreadIncreaseOptimizer",
        baseline=baseline,
        optimized=more_threads,
        paper_original_time="116.76ms",
        paper_achieved_speedup=3.86,
        paper_estimated_speedup=3.33,
    ),
]
