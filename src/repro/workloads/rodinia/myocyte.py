"""rodinia/myocyte — ``solver_2`` (Fast Math 1.19x / 1.13x, Function Split 1.02x / 1.03x).

The ODE solver body is enormous (the kernel inlines dozens of math-heavy
expressions), so it both spends time in high-precision math routines and
overflows the instruction cache.  The two optimizations target those two
problems separately:

* Fast Math replaces the accurate math sequences;
* Function Split moves part of the body into a separate (rarely executed)
  device function so the hot path fits in the instruction cache.
"""

from __future__ import annotations

from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_math_kernel
from repro.workloads.patterns import slow_math

KERNEL = "solver_2"
SOURCE = "solver_2.cu"


def _build(fast_math: bool = False, split: bool = False) -> KernelSetup:
    # The body is replicated many times to model the huge inlined solver
    # (thousands of source lines -> an instruction footprint well beyond the
    # 12 KiB instruction cache).  Splitting the function moves part of the
    # body into a cold helper so the hot path fits again.
    body_copies = 44 if not split else 24
    setup = build_math_kernel(
        "rodinia/myocyte",
        KERNEL,
        SOURCE,
        grid_blocks=160,
        threads_per_block=128,
        trip_count=6,
        math_calls_per_iteration=2,
        math_functions=("exp", "pow"),
        fast_math=fast_math,
        loads_per_iteration=1,
        extra_body_copies=body_copies,
        registers_per_thread=64,
    )
    return setup


def baseline() -> KernelSetup:
    return _build()


def fast_math() -> KernelSetup:
    return _build(fast_math=True)


def function_split() -> KernelSetup:
    return _build(split=True)


CASES = [
    BenchmarkCase(
        name="rodinia/myocyte",
        kernel=KERNEL,
        optimization="Fast Math",
        optimizer_name="GPUFastMathOptimizer",
        baseline=baseline,
        optimized=fast_math,
        paper_original_time="308.55ms",
        paper_achieved_speedup=1.19,
        paper_estimated_speedup=1.13,
    ),
    BenchmarkCase(
        name="rodinia/myocyte",
        kernel=KERNEL,
        optimization="Function Splitting",
        optimizer_name="GPUFunctionSplitOptimizer",
        baseline=baseline,
        optimized=function_split,
        paper_original_time="259.69ms",
        paper_achieved_speedup=1.02,
        paper_estimated_speedup=1.03,
    ),
]
