"""rodinia/heartwall — ``kernel`` (Loop Unrolling, achieved 1.16x, estimated 1.15x).

The tracking loop loads template samples from global memory and accumulates
correlations; the trip count is uniform, so the loop-unrolling estimate is
accurate (1% error in the paper).
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_load_use_loop_kernel

KERNEL = "kernel"
SOURCE = "heartwall_kernel.cu"


def _build(unroll_factor: int = 1) -> KernelSetup:
    return build_load_use_loop_kernel(
        "rodinia/heartwall",
        KERNEL,
        SOURCE,
        grid_blocks=510,
        threads_per_block=256,
        trip_count=24,
        gap_ops=1,
        unroll_factor=unroll_factor,
        extra_work_ops=2,
        registers_per_thread=84,
    )


def baseline() -> KernelSetup:
    return _build()


def unrolled() -> KernelSetup:
    return _build(unroll_factor=4)


CASES = [
    BenchmarkCase(
        name="rodinia/heartwall",
        kernel=KERNEL,
        optimization="Loop Unrolling",
        optimizer_name="GPULoopUnrollingOptimizer",
        baseline=baseline,
        optimized=unrolled,
        paper_original_time="49.03ms",
        paper_achieved_speedup=1.16,
        paper_estimated_speedup=1.15,
    ),
]
