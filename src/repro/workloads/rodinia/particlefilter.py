"""rodinia/particlefilter — ``likelihood_kernel`` (Block Increase, 1.92x / 1.93x).

The likelihood kernel launches far fewer blocks than the GPU has SMs, leaving
most of the machine idle.  Splitting the same work across more blocks nearly
doubles the throughput.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_parallelism_kernel

KERNEL = "likelihood_kernel"
SOURCE = "ex_particle_CUDA_float_seq.cu"


def _build(grid_blocks: int, trip_count: int) -> KernelSetup:
    return build_parallelism_kernel(
        "rodinia/particlefilter",
        KERNEL,
        SOURCE,
        grid_blocks=grid_blocks,
        threads_per_block=512,
        trip_count=trip_count,
        loads_per_iteration=2,
        work_ops_per_iteration=4,
    )


def baseline() -> KernelSetup:
    # 40 blocks on an 80-SM GPU: half the SMs never receive work.
    return _build(grid_blocks=40, trip_count=32)


def more_blocks() -> KernelSetup:
    # The same total work split across 80 blocks.
    return _build(grid_blocks=80, trip_count=16)


CASES = [
    BenchmarkCase(
        name="rodinia/particlefilter",
        kernel=KERNEL,
        optimization="Block Increase",
        optimizer_name="GPUBlockIncreaseOptimizer",
        baseline=baseline,
        optimized=more_blocks,
        paper_original_time="2.34ms",
        paper_achieved_speedup=1.92,
        paper_estimated_speedup=1.93,
    ),
]
