"""rodinia/streamcluster — ``kernel_compute_cost`` (Block Increase, 1.52x / 1.46x).

Like particlefilter, the cost kernel launches too few blocks to occupy every
SM; splitting the point range across more blocks recovers the idle SMs.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_parallelism_kernel

KERNEL = "kernel_compute_cost"
SOURCE = "streamcluster_cuda.cu"


def _build(grid_blocks: int, trip_count: int) -> KernelSetup:
    return build_parallelism_kernel(
        "rodinia/streamcluster",
        KERNEL,
        SOURCE,
        grid_blocks=grid_blocks,
        threads_per_block=512,
        trip_count=trip_count,
        loads_per_iteration=1,
        work_ops_per_iteration=6,
    )


def baseline() -> KernelSetup:
    return _build(grid_blocks=50, trip_count=24)


def more_blocks() -> KernelSetup:
    return _build(grid_blocks=100, trip_count=12)


CASES = [
    BenchmarkCase(
        name="rodinia/streamcluster",
        kernel=KERNEL,
        optimization="Block Increase",
        optimizer_name="GPUBlockIncreaseOptimizer",
        baseline=baseline,
        optimized=more_blocks,
        paper_original_time="21.51ms",
        paper_achieved_speedup=1.52,
        paper_estimated_speedup=1.46,
    ),
]
