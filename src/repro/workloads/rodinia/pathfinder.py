"""rodinia/pathfinder — ``dynproc_kernel`` (Code Reorder, achieved 1.05x, estimated 1.23x).

The dynamic-programming loop reads the previous row from global memory right
before using it, but a ``__syncthreads`` separates iterations: instructions
after the barrier depend on results before it, so only a little independent
work can be moved to hide the load latency — GPA's estimate overshoots
(Section 6.2).
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_load_use_loop_kernel

KERNEL = "dynproc_kernel"
SOURCE = "dynproc_kernel.cu"


def _build(gap_ops: int = 0, tail_ops: int = 4) -> KernelSetup:
    return build_load_use_loop_kernel(
        "rodinia/pathfinder",
        KERNEL,
        SOURCE,
        grid_blocks=463,
        threads_per_block=256,
        trip_count=20,
        gap_ops=gap_ops,
        tail_ops=tail_ops,
        sync_in_loop=True,
        registers_per_thread=72,
    )


def baseline() -> KernelSetup:
    return _build(gap_ops=0, tail_ops=4)


def reordered() -> KernelSetup:
    # The barrier caps how far the load can be hoisted: only part of the
    # independent work can legally move before the use, hence the modest
    # real gain compared with GPA's estimate.
    return _build(gap_ops=2, tail_ops=2)


CASES = [
    BenchmarkCase(
        name="rodinia/pathfinder",
        kernel=KERNEL,
        optimization="Code Reorder",
        optimizer_name="GPUCodeReorderingOptimizer",
        baseline=baseline,
        optimized=reordered,
        paper_original_time="93.48us",
        paper_achieved_speedup=1.05,
        paper_estimated_speedup=1.23,
    ),
]
