"""rodinia/bfs — ``Kernel`` (Loop Unrolling, achieved 1.14x, estimated 1.59x).

bfs is memory intensive and highly imbalanced: most threads execute fewer
than four iterations of the neighbour loop, so the benefit of unrolling is
limited to a small number of threads — the case the paper cites for GPA's
loop-unrolling overestimation (Section 6.2).  The 64-bit addresses of its
global loads are assembled from two separately-defined registers, which is
also why bfs has low single-dependency coverage in Figure 7.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_load_use_loop_kernel

KERNEL = "Kernel"
SOURCE = "bfs_kernel.cu"


def _trip(warp_id: int, num_warps: int) -> int:
    # Most warps visit very few neighbours; a small fraction visit many.
    return 48 if warp_id % 16 == 0 else 3


def _build(unroll_factor: int = 1) -> KernelSetup:
    return build_load_use_loop_kernel(
        "rodinia/bfs",
        KERNEL,
        SOURCE,
        grid_blocks=2048,
        threads_per_block=256,
        trip_count=_trip,
        gap_ops=0,
        unroll_factor=unroll_factor,
        loads_per_iteration=2,
        split_address_registers=True,
        memory_latency_scale=1.3,
        registers_per_thread=72,
    )


def baseline() -> KernelSetup:
    return _build()


def unrolled() -> KernelSetup:
    return _build(unroll_factor=4)


CASES = [
    BenchmarkCase(
        name="rodinia/bfs",
        kernel=KERNEL,
        optimization="Loop Unrolling",
        optimizer_name="GPULoopUnrollingOptimizer",
        baseline=baseline,
        optimized=unrolled,
        paper_original_time="578.28us",
        paper_achieved_speedup=1.14,
        paper_estimated_speedup=1.59,
    ),
]
