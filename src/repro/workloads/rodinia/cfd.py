"""rodinia/cfd — ``cuda_compute_flux`` (Fast Math, achieved 1.46x, estimated 1.54x).

The flux computation calls several high-precision math routines (sqrt, pow)
per element; compiling with ``--use_fast_math`` replaces them with the
hardware special-function approximations.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_math_kernel

KERNEL = "cuda_compute_flux"
SOURCE = "euler3d.cu"


def _build(fast_math: bool = False) -> KernelSetup:
    return build_math_kernel(
        "rodinia/cfd",
        KERNEL,
        SOURCE,
        grid_blocks=1600,
        threads_per_block=192,
        trip_count=6,
        math_calls_per_iteration=3,
        math_functions=("sqrt", "pow", "div"),
        fast_math=fast_math,
        loads_per_iteration=2,
    )


def baseline() -> KernelSetup:
    return _build()


def fast_math() -> KernelSetup:
    return _build(fast_math=True)


CASES = [
    BenchmarkCase(
        name="rodinia/cfd",
        kernel=KERNEL,
        optimization="Fast Math",
        optimizer_name="GPUFastMathOptimizer",
        baseline=baseline,
        optimized=fast_math,
        paper_original_time="187.53ms",
        paper_achieved_speedup=1.46,
        paper_estimated_speedup=1.54,
    ),
]
