"""rodinia/backprop — ``bpnn_layerforward_CUDA``.

The paper applies two optimizations to this kernel (Table 3):

* **Warp Balance** (achieved 1.18x, estimated 1.21x): warps of a block
  perform different numbers of reduction steps before each ``__syncthreads``,
  so fast warps stall at the barrier.
* **Strength Reduction** (achieved 1.21x, estimated 1.13x): the weight-update
  expression multiplies a 32-bit float by an untyped (double) constant, so
  the compiler emits F2F/DMUL conversion chains.

The synthetic kernel contains both inefficiencies; each optimized variant
fixes one of them.
"""

from __future__ import annotations

from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.patterns import double_constant_multiply, standard_prologue, store_result

KERNEL = "bpnn_layerforward_CUDA"
SOURCE = "backprop_cuda_kernel.cu"

_REDUCE_LINE = 120
_SYNC_LINE = 126
_WEIGHT_LINE = 131


def _build(balanced: bool = False, float_constant: bool = False) -> KernelSetup:
    builder = CubinBuilder(module_name="rodinia/backprop")
    k = builder.kernel(KERNEL, source_file=SOURCE)
    standard_prologue(k, addr_reg=2, line=110)
    k.mov_imm(12, 0)
    k.mov_imm(16, 0)

    # Two reduction rounds separated by barriers; per-warp work is imbalanced.
    for round_index in range(2):
        line = _REDUCE_LINE + round_index * 10
        k.at_line(line)
        k.mov_imm(8, 0)
        k.mov_imm(9, 1 << 20)
        k.isetp(0, 8, 9, "LT")
        with k.loop(f"reduce_{round_index}", predicate=p(0)):
            k.at_line(line)
            k.iadd(8, 8, imm(1))
            k.at_line(line + 1)
            k.lds(13, 16, offset=4 * round_index)
            k.ffma(12, 13, 13, 12)
            # The partial sum is scaled by an untyped (double) constant every
            # iteration -- the strength-reduction target.
            double_constant_multiply(k, value_reg=12, out_reg=22, line=line + 2,
                                     optimized=float_constant)
            k.at_line(line + 3)
            k.fadd(12, 22, 12)
            k.ffma(20, 20, 20, 20)
            k.ffma(21, 21, 21, 21)
            k.at_line(line)
            k.isetp(0, 8, 9, "LT")
        k.at_line(_SYNC_LINE + round_index * 10)
        k.bar_sync()

    # Weight update with the (double) constant multiply.
    double_constant_multiply(k, value_reg=12, out_reg=14, line=_WEIGHT_LINE,
                             optimized=float_constant)
    k.at_line(_WEIGHT_LINE + 1)
    k.fadd(12, 14, 12)
    double_constant_multiply(k, value_reg=12, out_reg=15, line=_WEIGHT_LINE + 2,
                             optimized=float_constant)
    k.at_line(_WEIGHT_LINE + 3)
    k.fadd(12, 15, 12)
    store_result(k, 2, 12, 140)
    builder.add_function(k.build())

    def trip(warp_id: int, num_warps: int) -> int:
        if balanced:
            return 10
        return 16 if warp_id % 4 == 0 else 8

    workload = WorkloadSpec(
        name="rodinia/backprop",
        loop_trip_counts={_REDUCE_LINE: trip, _REDUCE_LINE + 10: trip},
    )
    config = LaunchConfig(grid_blocks=4096, threads_per_block=256)
    return KernelSetup(cubin=builder.build(), kernel=KERNEL, config=config, workload=workload)


def baseline() -> KernelSetup:
    return _build()


def warp_balanced() -> KernelSetup:
    return _build(balanced=True)


def strength_reduced() -> KernelSetup:
    return _build(float_constant=True)


CASES = [
    BenchmarkCase(
        name="rodinia/backprop",
        kernel=KERNEL,
        optimization="Warp Balance",
        optimizer_name="GPUWarpBalanceOptimizer",
        baseline=baseline,
        optimized=warp_balanced,
        paper_original_time="18.10us",
        paper_achieved_speedup=1.18,
        paper_estimated_speedup=1.21,
    ),
    BenchmarkCase(
        name="rodinia/backprop",
        kernel=KERNEL,
        optimization="Strength Reduction",
        optimizer_name="GPUStrengthReductionOptimizer",
        baseline=baseline,
        optimized=strength_reduced,
        paper_original_time="15.32us",
        paper_achieved_speedup=1.21,
        paper_estimated_speedup=1.13,
    ),
]
