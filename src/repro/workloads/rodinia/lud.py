"""rodinia/lud — ``lud_diagonal`` (Code Reorder, 1.36x / 1.48x).

The diagonal factorization loads pivot-row elements and consumes them
immediately inside a barrier-delimited loop; prefetching the next column
before the update widens the def-use distance.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_load_use_loop_kernel

KERNEL = "lud_diagonal"
SOURCE = "lud_kernel.cu"


def _build(gap_ops: int = 0, tail_ops: int = 8) -> KernelSetup:
    return build_load_use_loop_kernel(
        "rodinia/lud",
        KERNEL,
        SOURCE,
        grid_blocks=256,
        threads_per_block=64,
        trip_count=16,
        gap_ops=gap_ops,
        tail_ops=tail_ops,
        loads_per_iteration=2,
        sync_in_loop=True,
        memory_latency_scale=1.2,
    )


def baseline() -> KernelSetup:
    return _build(gap_ops=0, tail_ops=8)


def reordered() -> KernelSetup:
    return _build(gap_ops=8, tail_ops=0)


CASES = [
    BenchmarkCase(
        name="rodinia/lud",
        kernel=KERNEL,
        optimization="Code Reorder",
        optimizer_name="GPUCodeReorderingOptimizer",
        baseline=baseline,
        optimized=reordered,
        paper_original_time="221.81us",
        paper_achieved_speedup=1.36,
        paper_estimated_speedup=1.48,
    ),
]
