"""rodinia/huffman — ``vlc_encode_kernel_sm64huff`` (Warp Balance, 1.10x / 1.17x).

Variable-length encoding gives warps unequal amounts of bit-packing work
between barriers; balancing the codeword distribution reduces the
synchronization stalls.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_barrier_imbalance_kernel

KERNEL = "vlc_encode_kernel_sm64huff"
SOURCE = "vlc_kernel_sm64huff.cu"


def _build(balanced: bool = False) -> KernelSetup:
    return build_barrier_imbalance_kernel(
        "rodinia/huffman",
        KERNEL,
        SOURCE,
        grid_blocks=1024,
        threads_per_block=256,
        heavy_trip_count=20,
        light_trip_count=6,
        heavy_warp_fraction=0.25,
        rounds=3,
        balanced=balanced,
    )


def baseline() -> KernelSetup:
    return _build()


def balanced() -> KernelSetup:
    return _build(balanced=True)


CASES = [
    BenchmarkCase(
        name="rodinia/huffman",
        kernel=KERNEL,
        optimization="Warp Balance",
        optimizer_name="GPUWarpBalanceOptimizer",
        baseline=baseline,
        optimized=balanced,
        paper_original_time="133.24us",
        paper_achieved_speedup=1.10,
        paper_estimated_speedup=1.17,
    ),
]
