"""rodinia/nw — ``needle_cuda_shared_1`` (Warp Balance, 1.10x / 1.09x).

Needleman-Wunsch processes anti-diagonals of a tile: early and late
iterations give different warps different amounts of work before each
barrier.  The intricate (fully-unrolled, conditional-max) control flow is
also why nw keeps multiple same-class dependency edges in Figure 7.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_barrier_imbalance_kernel

KERNEL = "needle_cuda_shared_1"
SOURCE = "needle_kernel.cu"


def _build(balanced: bool = False) -> KernelSetup:
    return build_barrier_imbalance_kernel(
        "rodinia/nw",
        KERNEL,
        SOURCE,
        grid_blocks=128,
        threads_per_block=32,
        heavy_trip_count=24,
        light_trip_count=8,
        heavy_warp_fraction=0.5,
        rounds=4,
        work_ops_per_iteration=5,
        balanced=balanced,
    )


def baseline() -> KernelSetup:
    return _build()


def balanced() -> KernelSetup:
    return _build(balanced=True)


CASES = [
    BenchmarkCase(
        name="rodinia/nw",
        kernel=KERNEL,
        optimization="Warp Balance",
        optimizer_name="GPUWarpBalanceOptimizer",
        baseline=baseline,
        optimized=balanced,
        paper_original_time="840.70us",
        paper_achieved_speedup=1.10,
        paper_estimated_speedup=1.09,
    ),
]
