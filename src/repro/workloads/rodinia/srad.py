"""rodinia/sradv1 — ``reduce`` (Warp Balance, achieved 1.03x, estimated 1.16x).

The tree reduction halves the number of active warps every step, so some
synchronization waiting is inherent to the algorithm: balancing only removes
part of it, which is why the paper's achieved speedup (1.03x) falls short of
the estimate (1.16x).
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_barrier_imbalance_kernel

KERNEL = "reduce"
SOURCE = "srad_kernel.cu"


def _build(balanced: bool = False) -> KernelSetup:
    # Even the "balanced" variant keeps a mild imbalance: the tree reduction
    # cannot give every warp identical work.
    heavy = 18 if not balanced else 14
    light = 4 if not balanced else 8
    return build_barrier_imbalance_kernel(
        "rodinia/sradv1",
        KERNEL,
        SOURCE,
        grid_blocks=1024,
        threads_per_block=256,
        heavy_trip_count=heavy,
        light_trip_count=light,
        heavy_warp_fraction=0.5,
        rounds=4,
        balanced=False,
    )


def baseline() -> KernelSetup:
    return _build()


def partially_balanced() -> KernelSetup:
    return _build(balanced=True)


CASES = [
    BenchmarkCase(
        name="rodinia/sradv1",
        kernel=KERNEL,
        optimization="Warp Balance",
        optimizer_name="GPUWarpBalanceOptimizer",
        baseline=baseline,
        optimized=partially_balanced,
        paper_original_time="2.01ms",
        paper_achieved_speedup=1.03,
        paper_estimated_speedup=1.16,
    ),
]
