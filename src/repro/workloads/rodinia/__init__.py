"""Synthetic Rodinia benchmark kernels (one module per benchmark)."""
