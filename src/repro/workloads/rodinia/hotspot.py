"""rodinia/hotspot — ``calculate_temp`` (Strength Reduction, 1.15x / 1.10x).

Listing 1 of the paper: the temperature update multiplies 32-bit float values
by the untyped constant ``2.0``, so the compiler promotes to double precision
and back (F2F / DMUL / F2F).  Typing the constant ``2.0f`` removes the
conversion chain.
"""

from __future__ import annotations

from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.patterns import double_constant_multiply, standard_prologue, store_result

KERNEL = "calculate_temp"
SOURCE = "hotspot.cu"

_LOOP_LINE = 200
_STENCIL_LINE = 202
_SYNC_LINE = 210


def _build(float_constant: bool = False) -> KernelSetup:
    builder = CubinBuilder(module_name="rodinia/hotspot")
    k = builder.kernel(KERNEL, source_file=SOURCE)
    standard_prologue(k, addr_reg=2, line=190)
    k.mov_imm(12, 0)
    k.mov_imm(16, 0)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 20)
    k.at_line(_LOOP_LINE)
    k.isetp(0, 8, 9, "LT")
    with k.loop("iteration", predicate=p(0)):
        k.at_line(_LOOP_LINE)
        k.iadd(8, 8, imm(1))
        # Load the 5-point stencil neighbourhood from shared memory.
        for neighbour in range(4):
            k.at_line(_STENCIL_LINE)
            k.lds(13 + neighbour, 16, offset=4 * neighbour)
        k.at_line(_STENCIL_LINE + 1)
        k.fadd(18, 13, 14)
        k.fadd(18, 18, 15)
        k.fadd(18, 18, 16)
        # temp - 2.0 * center: the untyped double constant forces conversions.
        double_constant_multiply(k, value_reg=17, out_reg=19, line=_STENCIL_LINE + 2,
                                 optimized=float_constant)
        k.at_line(_STENCIL_LINE + 3)
        k.fadd(18, 18, 19)
        k.ffma(12, 18, 18, 12)
        k.at_line(_SYNC_LINE)
        k.bar_sync()
        k.at_line(_LOOP_LINE)
        k.isetp(0, 8, 9, "LT")
    store_result(k, 2, 12, 220)
    builder.add_function(k.build())

    workload = WorkloadSpec(
        name="rodinia/hotspot",
        loop_trip_counts={_LOOP_LINE: 10},
    )
    config = LaunchConfig(grid_blocks=1849, threads_per_block=256)
    return KernelSetup(cubin=builder.build(), kernel=KERNEL, config=config, workload=workload)


def baseline() -> KernelSetup:
    return _build()


def strength_reduced() -> KernelSetup:
    return _build(float_constant=True)


CASES = [
    BenchmarkCase(
        name="rodinia/hotspot",
        kernel=KERNEL,
        optimization="Strength Reduction",
        optimizer_name="GPUStrengthReductionOptimizer",
        baseline=baseline,
        optimized=strength_reduced,
        paper_original_time="15.45us",
        paper_achieved_speedup=1.15,
        paper_estimated_speedup=1.10,
    ),
]
