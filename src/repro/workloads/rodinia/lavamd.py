"""rodinia/lavaMD — ``kernel_gpu_cuda`` (Loop Unrolling, 1.11x / 1.12x).

The particle-interaction loop reads neighbour particles from shared memory
and accumulates forces; dependencies within an iteration limit the issue
rate, and unrolling interleaves independent iterations.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_load_use_loop_kernel

KERNEL = "kernel_gpu_cuda"
SOURCE = "lavaMD_kernel.cu"


def _build(unroll_factor: int = 1) -> KernelSetup:
    return build_load_use_loop_kernel(
        "rodinia/lavaMD",
        KERNEL,
        SOURCE,
        grid_blocks=1000,
        threads_per_block=128,
        trip_count=26,
        gap_ops=1,
        unroll_factor=unroll_factor,
        use_shared=True,
        extra_work_ops=3,
    )


def baseline() -> KernelSetup:
    return _build()


def unrolled() -> KernelSetup:
    return _build(unroll_factor=4)


CASES = [
    BenchmarkCase(
        name="rodinia/lavaMD",
        kernel=KERNEL,
        optimization="Loop Unrolling",
        optimizer_name="GPULoopUnrollingOptimizer",
        baseline=baseline,
        optimized=unrolled,
        paper_original_time="4.07ms",
        paper_achieved_speedup=1.11,
        paper_estimated_speedup=1.12,
    ),
]
