"""rodinia/kmeans — ``kmeansPoint`` (Loop Unrolling, 1.12x / 1.21x).

The distance loop loads one feature per iteration and immediately accumulates
it; unrolling lets several feature loads overlap.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_load_use_loop_kernel

KERNEL = "kmeansPoint"
SOURCE = "kmeans_cuda_kernel.cu"


def _build(unroll_factor: int = 1) -> KernelSetup:
    return build_load_use_loop_kernel(
        "rodinia/kmeans",
        KERNEL,
        SOURCE,
        grid_blocks=1936,
        threads_per_block=256,
        trip_count=34,
        gap_ops=0,
        unroll_factor=unroll_factor,
        registers_per_thread=84,
    )


def baseline() -> KernelSetup:
    return _build()


def unrolled() -> KernelSetup:
    return _build(unroll_factor=4)


CASES = [
    BenchmarkCase(
        name="rodinia/kmeans",
        kernel=KERNEL,
        optimization="Loop Unrolling",
        optimizer_name="GPULoopUnrollingOptimizer",
        baseline=baseline,
        optimized=unrolled,
        paper_original_time="787.14us",
        paper_achieved_speedup=1.12,
        paper_estimated_speedup=1.21,
    ),
]
