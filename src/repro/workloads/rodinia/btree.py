"""rodinia/b+tree — ``findRangeK`` (Code Reorder, achieved 1.15x, estimated 1.28x).

Listing 2 of the paper: the key loads are consumed immediately by the range
comparison, so the distance between the loads and their uses is too short to
hide the global-memory latency.  The fix reads the next iteration's
subscripted address before the ``__syncthreads`` at the bottom of the loop —
modelled here by widening the def-use gap with independent work.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_load_use_loop_kernel

KERNEL = "findRangeK"
SOURCE = "b+tree_kernel2.cu"


def _build(gap_ops: int = 0, tail_ops: int = 6) -> KernelSetup:
    return build_load_use_loop_kernel(
        "rodinia/b+tree",
        KERNEL,
        SOURCE,
        grid_blocks=6000,
        threads_per_block=256,
        trip_count=12,
        gap_ops=gap_ops,
        tail_ops=tail_ops,
        loads_per_iteration=2,
        sync_in_loop=True,
        registers_per_thread=72,
    )


def baseline() -> KernelSetup:
    # The independent work of each iteration sits *after* the key comparison,
    # so the loads are consumed immediately.
    return _build(gap_ops=0, tail_ops=6)


def reordered() -> KernelSetup:
    # The same work hoisted between the loads and their uses.
    return _build(gap_ops=6, tail_ops=0)


CASES = [
    BenchmarkCase(
        name="rodinia/b+tree",
        kernel=KERNEL,
        optimization="Code Reorder",
        optimizer_name="GPUCodeReorderingOptimizer",
        baseline=baseline,
        optimized=reordered,
        paper_original_time="53.29us",
        paper_achieved_speedup=1.15,
        paper_estimated_speedup=1.28,
    ),
]
