"""Synthetic workloads (the evaluation substrate).

The paper evaluates GPA on Rodinia benchmarks and four larger applications
(Quicksilver, ExaTENSOR, PeleC, Minimod) running on a real V100.  Since the
reproduction has no GPU and no CUDA toolchain, every benchmark kernel is
re-authored at the SASS level with :class:`~repro.cubin.builder.KernelBuilder`
so that it exhibits the same dominant inefficiency the paper reports for it
(Table 3): hotspot's double-precision constant conversions, b+tree's short
load-to-use distance, gaussian's tiny thread blocks, Quicksilver's
non-inlined device functions and register spills, ExaTENSOR's integer
division and uncoalesced transactions, and so on.

Every benchmark provides a *baseline* kernel and, for each optimization the
paper applied, an *optimized* variant implementing the same code change, so
the "achieved" speedup of Table 3 can be measured by re-simulation and
compared against GPA's estimate.
"""

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.memory_patterns import (
    cache_resident_workload,
    memory_microbenchmark,
    microbenchmark_config,
    streaming_workload,
    strided_workload,
)
from repro.workloads.registry import (
    all_cases,
    case_by_name,
    case_names,
    rodinia_cases,
    application_cases,
)

__all__ = [
    "BenchmarkCase",
    "KernelSetup",
    "all_cases",
    "application_cases",
    "cache_resident_workload",
    "case_by_name",
    "case_names",
    "memory_microbenchmark",
    "microbenchmark_config",
    "rodinia_cases",
    "streaming_workload",
    "strided_workload",
]
