"""Parametrized kernel families.

Most of the Table 3 benchmarks fall into a handful of structural families —
a loop whose load feeds a nearby use, a reduction with imbalanced warps
meeting at a barrier, math-heavy bodies, or kernels whose only problem is the
launch configuration.  Each family builder below produces a complete
:class:`~repro.workloads.base.KernelSetup` from a small set of parameters so
individual benchmark modules only describe what makes them different:
trip counts, imbalance, def-use distances, launch shapes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cubin.builder import CubinBuilder, KernelBuilder, imm, p, r
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import TripCount, WorkloadSpec
from repro.workloads.base import KernelSetup
from repro.workloads.patterns import (
    double_constant_multiply,
    global_load_use,
    integer_division,
    slow_math,
    standard_prologue,
    store_result,
)

#: Source line numbers used consistently by the family builders so workload
#: specs and tests can refer to them symbolically.
PROLOGUE_LINE = 10
LOOP_LINE = 20
LOAD_LINE = 21
USE_LINE = 22
WORK_LINE = 23
SYNC_LINE = 25
MATH_LINE = 30
EPILOGUE_LINE = 40


def _loop_begin(k: KernelBuilder, counter_reg: int, line: int) -> None:
    """First statement of a loop body: advance the counter at the loop's line.

    Emitting this first pins the loop header's source line to ``line``, which
    is the key the workload specs use for trip counts.
    """
    k.at_line(line)
    k.iadd(counter_reg, counter_reg, imm(1))


def _loop_end(k: KernelBuilder, counter_reg: int, limit_reg: int, line: int) -> None:
    """Last statement of a loop body: refresh the back-edge predicate (P0)."""
    k.at_line(line)
    k.isetp(0, counter_reg, limit_reg, "LT")


# ----------------------------------------------------------------------
# Family 1: a loop whose global (or shared) load feeds a nearby use.
# Covers the Loop Unrolling and Code Reordering rows of Table 3.
# ----------------------------------------------------------------------
def build_load_use_loop_kernel(
    module: str,
    kernel: str,
    source_file: str,
    *,
    grid_blocks: int,
    threads_per_block: int,
    trip_count: TripCount,
    gap_ops: int = 0,
    tail_ops: int = 0,
    unroll_factor: int = 1,
    loads_per_iteration: int = 1,
    use_shared: bool = False,
    sync_in_loop: bool = False,
    split_address_registers: bool = False,
    registers_per_thread: Optional[int] = None,
    memory_latency_scale: float = 1.0,
    extra_work_ops: int = 0,
    seed: int = 2021,
) -> KernelSetup:
    """A loop of loads feeding nearby uses.

    ``gap_ops`` is the independent work placed *between* each load and its
    use and ``tail_ops`` the independent work placed *after* the use; a code
    reordering optimization moves work from the tail into the gap without
    changing the instruction count.  ``unroll_factor`` replicates the body,
    batching the loads ahead of their uses, and divides the trip count (Loop
    Unrolling).  ``sync_in_loop`` adds the barrier that limits reordering in
    the pathfinder/b+tree pattern, and ``split_address_registers`` computes
    the 64-bit address from two separately-defined registers (the bfs
    situation that lowers single-dependency coverage).
    """
    builder = CubinBuilder(module_name=module)
    k = builder.kernel(kernel, source_file=source_file,
                       registers_per_thread=registers_per_thread)
    standard_prologue(k, addr_reg=2, line=PROLOGUE_LINE)
    k.mov_imm(8, 0)          # loop counter
    k.mov_imm(9, 1 << 20)    # loop limit (actual trips come from the workload spec)
    k.mov_imm(12, 0)         # accumulator
    if use_shared:
        k.mov_imm(16, 0)     # shared-memory address
    k.at_line(LOOP_LINE)
    k.isetp(0, 8, 9, "LT")
    loads = max(1, loads_per_iteration)
    copies = max(1, unroll_factor)
    with k.loop(f"{kernel}_loop", predicate=p(0)):
        _loop_begin(k, 8, LOOP_LINE)
        if copies > 1:
            # An unrolled body: the compiler (or the programmer) batches the
            # loads of all unrolled iterations first, then their uses, so the
            # loads overlap each other's latency.
            for copy in range(copies):
                if split_address_registers:
                    k.at_line(LOAD_LINE)
                    k.iadd(2, 2, imm(4))
                    k.iadd(3, 3, imm(0))
                for load_index in range(loads):
                    data_reg = 40 + (copy * loads + load_index) % 32
                    k.at_line(LOAD_LINE)
                    if use_shared:
                        k.lds(data_reg, 16, offset=4 * load_index)
                    else:
                        k.ldg(data_reg, 2, offset=4 * (copy * loads + load_index))
            for gap in range(gap_ops):
                register = 20 + (gap % 4)
                k.at_line(LOAD_LINE)
                k.ffma(register, register, register, register)
            for copy in range(copies):
                for load_index in range(loads):
                    data_reg = 40 + (copy * loads + load_index) % 32
                    k.at_line(USE_LINE)
                    k.ffma(12, data_reg, data_reg, 12)
                for _ in range(extra_work_ops):
                    k.at_line(WORK_LINE)
                    k.ffma(24, 24, 24, 24)
            for tail in range(tail_ops):
                register = 20 + (tail % 4)
                k.at_line(WORK_LINE)
                k.ffma(register, register, register, register)
            if sync_in_loop:
                k.at_line(SYNC_LINE)
                k.bar_sync()
        else:
            if split_address_registers:
                k.at_line(LOAD_LINE)
                k.iadd(2, 2, imm(4))
                k.iadd(3, 3, imm(0))
            for load_index in range(loads):
                data_reg = 13 + load_index
                if use_shared:
                    k.at_line(LOAD_LINE)
                    k.lds(data_reg, 16, offset=4 * load_index)
                    for gap in range(gap_ops):
                        register = 20 + (gap % 4)
                        k.ffma(register, register, register, register)
                    k.at_line(USE_LINE)
                    k.ffma(12, data_reg, data_reg, 12)
                else:
                    global_load_use(
                        k,
                        addr_reg=2,
                        data_reg=data_reg,
                        acc_reg=12,
                        load_line=LOAD_LINE,
                        use_line=USE_LINE,
                        gap_ops=gap_ops,
                        offset=4 * load_index,
                    )
            for _ in range(extra_work_ops):
                k.at_line(WORK_LINE)
                k.ffma(24, 24, 24, 24)
            for tail in range(tail_ops):
                register = 20 + (tail % 4)
                k.at_line(WORK_LINE)
                k.ffma(register, register, register, register)
            if sync_in_loop:
                k.at_line(SYNC_LINE)
                k.bar_sync()
        _loop_end(k, 8, 9, LOOP_LINE)
    store_result(k, 2, 12, EPILOGUE_LINE)
    builder.add_function(k.build())

    effective_trip: TripCount
    if callable(trip_count):
        if unroll_factor > 1:
            def effective_trip(warp_id: int, num_warps: int, _inner=trip_count,
                               _factor=unroll_factor) -> int:
                return max(1, _inner(warp_id, num_warps) // _factor)
        else:
            effective_trip = trip_count
    else:
        effective_trip = max(1, int(trip_count) // max(1, unroll_factor))

    workload = WorkloadSpec(
        name=module,
        loop_trip_counts={LOOP_LINE: effective_trip},
        memory_latency_scale=memory_latency_scale,
        seed=seed,
    )
    config = LaunchConfig(grid_blocks=grid_blocks, threads_per_block=threads_per_block)
    return KernelSetup(cubin=builder.build(), kernel=kernel, config=config, workload=workload)


# ----------------------------------------------------------------------
# Family 2: warps of a block do imbalanced work and meet at barriers.
# Covers the Warp Balance rows of Table 3.
# ----------------------------------------------------------------------
def build_barrier_imbalance_kernel(
    module: str,
    kernel: str,
    source_file: str,
    *,
    grid_blocks: int,
    threads_per_block: int,
    heavy_trip_count: int,
    light_trip_count: int,
    heavy_warp_fraction: float = 0.25,
    rounds: int = 4,
    work_ops_per_iteration: int = 3,
    balanced: bool = False,
    seed: int = 2021,
) -> KernelSetup:
    """Work loops of different length per warp, separated by __syncthreads.

    The imbalance makes fast warps wait at the barrier (synchronization
    stalls).  ``balanced=True`` models the Warp Balance optimization: every
    warp gets the average amount of work.
    """
    builder = CubinBuilder(module_name=module)
    k = builder.kernel(kernel, source_file=source_file)
    standard_prologue(k, addr_reg=2, line=PROLOGUE_LINE)
    k.mov_imm(12, 0)
    k.mov_imm(16, 0)
    for round_index in range(rounds):
        work_line = LOOP_LINE + round_index * 10
        sync_line = SYNC_LINE + round_index * 10
        k.at_line(work_line)
        k.mov_imm(8, 0)
        k.mov_imm(9, 1 << 20)
        k.isetp(0, 8, 9, "LT")
        with k.loop(f"{kernel}_work_{round_index}", predicate=p(0)):
            _loop_begin(k, 8, work_line)
            k.at_line(work_line + 1)
            k.lds(13, 16, offset=4 * round_index)
            k.ffma(12, 13, 13, 12)
            for op in range(work_ops_per_iteration):
                register = 20 + (op % 4)
                k.ffma(register, register, register, register)
            _loop_end(k, 8, 9, work_line)
        k.at_line(sync_line)
        k.bar_sync()
    store_result(k, 2, 12, EPILOGUE_LINE)
    builder.add_function(k.build())

    average = max(1, int(round(heavy_trip_count * heavy_warp_fraction
                                + light_trip_count * (1.0 - heavy_warp_fraction))))

    def trip(warp_id: int, num_warps: int) -> int:
        if balanced:
            return average
        period = max(1, int(round(1.0 / max(heavy_warp_fraction, 1e-6))))
        return heavy_trip_count if warp_id % period == 0 else light_trip_count

    trip_counts = {LOOP_LINE + round_index * 10: trip for round_index in range(rounds)}
    workload = WorkloadSpec(name=module, loop_trip_counts=trip_counts, seed=seed)
    config = LaunchConfig(grid_blocks=grid_blocks, threads_per_block=threads_per_block)
    return KernelSetup(cubin=builder.build(), kernel=kernel, config=config, workload=workload)


# ----------------------------------------------------------------------
# Family 3: math-heavy bodies (Fast Math rows).
# ----------------------------------------------------------------------
def build_math_kernel(
    module: str,
    kernel: str,
    source_file: str,
    *,
    grid_blocks: int,
    threads_per_block: int,
    trip_count: TripCount,
    math_calls_per_iteration: int = 2,
    math_functions: tuple = ("exp", "sqrt"),
    fast_math: bool = False,
    loads_per_iteration: int = 1,
    extra_body_copies: int = 1,
    gap_ops: int = 0,
    registers_per_thread: Optional[int] = None,
    seed: int = 2021,
) -> KernelSetup:
    """A loop dominated by (inlined) math routines on loaded values.

    ``fast_math=False`` emits the accurate multi-instruction sequences;
    ``fast_math=True`` models ``--use_fast_math``.  ``extra_body_copies``
    replicates the body to inflate the code footprint (the myocyte kernel is
    thousands of lines long, which also pressures the instruction cache).
    """
    builder = CubinBuilder(module_name=module)
    k = builder.kernel(kernel, source_file=source_file,
                       registers_per_thread=registers_per_thread)
    standard_prologue(k, addr_reg=2, line=PROLOGUE_LINE)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 20)
    k.mov_imm(12, 0)
    k.at_line(LOOP_LINE)
    k.isetp(0, 8, 9, "LT")
    with k.loop(f"{kernel}_loop", predicate=p(0)):
        _loop_begin(k, 8, LOOP_LINE)
        for copy in range(max(1, extra_body_copies)):
            for load_index in range(max(1, loads_per_iteration)):
                k.at_line(LOAD_LINE + copy)
                k.ldg(13, 2, offset=4 * load_index)
                for gap in range(gap_ops):
                    register = 20 + (gap % 4)
                    k.ffma(register, register, register, register)
                k.at_line(USE_LINE + copy)
                k.fadd(14, 13, 12)
            for call_index in range(math_calls_per_iteration):
                function = math_functions[call_index % len(math_functions)]
                slow_math(
                    k,
                    src_reg=14,
                    out_reg=15,
                    line=MATH_LINE + copy * 10 + call_index,
                    function=function,
                    fast=fast_math,
                )
                k.at_line(MATH_LINE + copy * 10 + call_index)
                k.ffma(12, 15, 15, 12)
        _loop_end(k, 8, 9, LOOP_LINE)
    store_result(k, 2, 12, EPILOGUE_LINE)
    builder.add_function(k.build())

    workload = WorkloadSpec(
        name=module, loop_trip_counts={LOOP_LINE: trip_count}, seed=seed
    )
    config = LaunchConfig(grid_blocks=grid_blocks, threads_per_block=threads_per_block)
    return KernelSetup(cubin=builder.build(), kernel=kernel, config=config, workload=workload)


# ----------------------------------------------------------------------
# Family 4: kernels whose problem is the launch configuration.
# Covers Block Increase and Thread Increase rows.
# ----------------------------------------------------------------------
def build_parallelism_kernel(
    module: str,
    kernel: str,
    source_file: str,
    *,
    grid_blocks: int,
    threads_per_block: int,
    trip_count: TripCount,
    loads_per_iteration: int = 1,
    work_ops_per_iteration: int = 4,
    registers_per_thread: Optional[int] = None,
    seed: int = 2021,
) -> KernelSetup:
    """A well-formed compute loop whose launch configuration underuses the GPU.

    Used for the gaussian (tiny blocks), particlefilter / streamcluster /
    PeleC (too few blocks) rows: the body is unremarkable, the speedup comes
    from changing ``grid_blocks`` / ``threads_per_block`` / the trip count.
    """
    builder = CubinBuilder(module_name=module)
    k = builder.kernel(kernel, source_file=source_file,
                       registers_per_thread=registers_per_thread)
    standard_prologue(k, addr_reg=2, line=PROLOGUE_LINE)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 20)
    k.mov_imm(12, 0)
    k.at_line(LOOP_LINE)
    k.isetp(0, 8, 9, "LT")
    with k.loop(f"{kernel}_loop", predicate=p(0)):
        _loop_begin(k, 8, LOOP_LINE)
        for load_index in range(max(1, loads_per_iteration)):
            k.at_line(LOAD_LINE)
            k.ldg(13 + load_index, 2, offset=4 * load_index)
        for op in range(work_ops_per_iteration):
            register = 20 + (op % 4)
            k.at_line(WORK_LINE)
            k.ffma(register, register, register, register)
        k.at_line(USE_LINE)
        k.ffma(12, 13, 13, 12)
        _loop_end(k, 8, 9, LOOP_LINE)
    store_result(k, 2, 12, EPILOGUE_LINE)
    builder.add_function(k.build())

    workload = WorkloadSpec(
        name=module, loop_trip_counts={LOOP_LINE: trip_count}, seed=seed
    )
    config = LaunchConfig(grid_blocks=grid_blocks, threads_per_block=threads_per_block)
    return KernelSetup(cubin=builder.build(), kernel=kernel, config=config, workload=workload)
