"""Access-pattern workloads for the memory-hierarchy model.

The registry benchmarks describe *what stalls* (trip counts, uncoalesced
lines, latency scales); the hierarchy memory model additionally cares about
*where the bytes live*.  This module packages the canonical access patterns
as :class:`~repro.sampling.workload.WorkloadSpec` factories around one
shared load-loop microbenchmark kernel, so tests, CI smoke steps and
examples can exercise the memory system's extremes:

* :func:`streaming_workload` — unit-stride accesses over a working set far
  larger than L2: perfectly coalesced, DRAM-bandwidth bound.
* :func:`strided_workload` — a large per-thread stride: every warp request
  fans out into many 32-byte sectors (the uncoalesced case the Memory
  Coalescing optimizer targets).
* :func:`cache_resident_workload` — unit stride over a working set that
  fits in L1 (or L2): after the first pass, accesses hit on chip.

All three share the same kernel and trip counts, so their cycle counts and
hit-rate statistics are directly comparable.
"""

from __future__ import annotations

from repro.cubin.binary import Cubin
from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec

#: Source line of the microbenchmark's global load (the strided access).
LOAD_LINE = 6
#: Source line of the loop header.
LOOP_LINE = 5


def memory_microbenchmark(arch_flag: str = "sm_70") -> Cubin:
    """A load-loop kernel: each iteration loads, accumulates and advances.

    Lines: 1 prologue, 5 loop header, 6 global load, 7 use, 9 store + exit.
    """
    builder = CubinBuilder(module_name="memory_patterns", arch_flag=arch_flag)
    k = builder.kernel("memory_stream", source_file="memory_patterns.cu")
    k.at_line(1)
    k.s2r(0, "SR_TID.X")
    k.s2r(1, "SR_CTAID.X")
    k.mov_imm(2, 0x100)
    k.mov_imm(3, 0)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 16)
    k.at_line(LOOP_LINE)
    k.isetp(0, 8, 9, "LT")
    with k.loop("stream", predicate=p(0)):
        k.at_line(LOOP_LINE)
        k.iadd(8, 8, imm(1))
        k.at_line(LOAD_LINE)
        k.ldg(4, 2)
        k.at_line(7)
        k.ffma(5, 4, 4, 5)
        k.iadd(2, 2, imm(128))
        k.at_line(LOOP_LINE)
        k.isetp(0, 8, 9, "LT")
    k.at_line(9)
    k.stg(2, 5)
    k.exit()
    builder.add_function(k.build())
    return builder.build()


def microbenchmark_config(grid_blocks: int = 160,
                          threads_per_block: int = 128) -> LaunchConfig:
    """The launch the pattern workloads are tuned for."""
    return LaunchConfig(grid_blocks=grid_blocks, threads_per_block=threads_per_block)


def streaming_workload(trip_count: int = 64,
                       working_set_bytes: int = 64 * 1024 * 1024) -> WorkloadSpec:
    """Unit-stride streaming over a DRAM-sized working set."""
    return WorkloadSpec(
        name="memory/streaming",
        loop_trip_counts={LOOP_LINE: trip_count},
        working_set_bytes=working_set_bytes,
        default_access_stride_bytes=4,
    )


def strided_workload(stride_bytes: int = 128, trip_count: int = 64,
                     working_set_bytes: int = 64 * 1024 * 1024) -> WorkloadSpec:
    """Strided (uncoalesced) accesses: each thread lands in its own sector.

    ``stride_bytes >= 32`` puts every thread of a warp in a distinct
    32-byte sector, so one request becomes 32 transactions — the worst-case
    coalescing failure.
    """
    return WorkloadSpec(
        name=f"memory/strided-{stride_bytes}",
        loop_trip_counts={LOOP_LINE: trip_count},
        working_set_bytes=working_set_bytes,
        access_strides={LOAD_LINE: stride_bytes},
        # Keep the flat model's view consistent: a strided line also issues
        # more flat-model (128-byte) transactions per access.  A warp of 32
        # threads at ``stride_bytes`` touches ``32 * stride / 128`` cache
        # lines, but never more than one per thread.
        uncoalesced_lines={LOAD_LINE},
        uncoalesced_transactions=min(32, max(1, stride_bytes // 4)),
    )


def cache_resident_workload(trip_count: int = 64,
                            working_set_bytes: int = 16 * 1024) -> WorkloadSpec:
    """Unit-stride accesses over a working set that fits in the L1 cache."""
    return WorkloadSpec(
        name="memory/cache-resident",
        loop_trip_counts={LOOP_LINE: trip_count},
        working_set_bytes=working_set_bytes,
        default_access_stride_bytes=4,
    )
