"""Workload plumbing: kernel setups and benchmark cases."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cubin.binary import Cubin
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec


@dataclass
class KernelSetup:
    """Everything needed to profile one kernel launch."""

    cubin: Cubin
    kernel: str
    config: LaunchConfig
    workload: WorkloadSpec

    def describe(self) -> str:
        return (
            f"{self.kernel}<<<{self.config.grid_blocks}, "
            f"{self.config.threads_per_block}>>> ({self.cubin.module_name})"
        )


#: A builder producing a fresh :class:`KernelSetup` on every call (setups are
#: mutable through their workload specs, so sharing instances across runs is
#: avoided).
SetupBuilder = Callable[[], KernelSetup]


@dataclass
class BenchmarkCase:
    """One row of Table 3: a kernel, an optimization, and the paper's numbers."""

    #: Benchmark name as in Table 3, e.g. ``"rodinia/hotspot"``.
    name: str
    #: Kernel symbol, e.g. ``"calculate_temp"``.
    kernel: str
    #: The optimization the paper applied, e.g. ``"Strength Reduction"``.
    optimization: str
    #: The GPA optimizer expected to recommend it (its ``Optimizer.name``).
    optimizer_name: str
    #: Builders for the baseline and hand-optimized variants.
    baseline: SetupBuilder
    optimized: SetupBuilder
    #: Paper-reported numbers (for EXPERIMENTS.md comparisons only).
    paper_original_time: str = ""
    paper_achieved_speedup: float = 1.0
    paper_estimated_speedup: float = 1.0
    #: Whether the case belongs to the Rodinia suite (Figure 7 population).
    is_rodinia: bool = True

    @property
    def case_id(self) -> str:
        """A unique identifier (benchmark + optimization)."""
        slug = self.optimization.lower().replace(" ", "_")
        return f"{self.name}:{slug}"

    @property
    def paper_error(self) -> float:
        """The paper's |estimated - achieved| / achieved."""
        if self.paper_achieved_speedup <= 0:
            return 0.0
        return abs(self.paper_estimated_speedup - self.paper_achieved_speedup) / self.paper_achieved_speedup

    def build_baseline(self) -> KernelSetup:
        return self.baseline()

    def build_optimized(self) -> KernelSetup:
        return self.optimized()
