"""Registry of every Table 3 benchmark case."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.workloads.base import BenchmarkCase
from repro.workloads.rodinia import (
    backprop,
    bfs,
    btree,
    cfd,
    gaussian,
    heartwall,
    hotspot,
    huffman,
    kmeans,
    lavamd,
    lud,
    myocyte,
    nw,
    particlefilter,
    pathfinder,
    srad,
    streamcluster,
)
from repro.workloads.apps import exatensor, minimod, pelec, quicksilver

_MODULES = (
    backprop, bfs, btree, cfd, gaussian, heartwall, hotspot, huffman, kmeans,
    lavamd, lud, myocyte, nw, particlefilter, streamcluster, srad, pathfinder,
    quicksilver, exatensor, pelec, minimod,
)


def all_cases() -> List[BenchmarkCase]:
    """Every (kernel, optimization) row of Table 3, in the paper's order."""
    cases: List[BenchmarkCase] = []
    for module in _MODULES:
        cases.extend(module.CASES)
    return cases


def rodinia_cases() -> List[BenchmarkCase]:
    """The Rodinia subset (the Figure 7 population)."""
    return [case for case in all_cases() if case.is_rodinia]


def application_cases() -> List[BenchmarkCase]:
    """The Section 7 case-study applications."""
    return [case for case in all_cases() if not case.is_rodinia]


def case_names() -> List[str]:
    """Unique case identifiers (``benchmark:optimization``)."""
    return [case.case_id for case in all_cases()]


def case_by_name(name: str) -> BenchmarkCase:
    """Look up a case by its ``case_id``, benchmark name or kernel name.

    When several cases share a benchmark name the first (paper order) match
    is returned.
    """
    cases = all_cases()
    for case in cases:
        if case.case_id == name:
            return case
    for case in cases:
        if case.name == name or case.kernel == name:
            return case
    raise KeyError(f"no benchmark case named {name!r}; known: {case_names()}")
