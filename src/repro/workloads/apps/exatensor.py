"""ExaTENSOR — ``tensor_transpose`` (Strength Reduction 1.07x / 1.06x,
Memory Transaction Reduction 1.03x / 1.05x).

Section 7.1 of the paper: the tensor-transpose index arithmetic performs an
integer division per element (replaced by a multiplication with the
reciprocal), and after that fix the kernel is throttled by redundant global
memory reads of values shared by all threads (replaced by constant-memory
reads).
"""

from __future__ import annotations

from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.patterns import integer_division, standard_prologue, store_result

KERNEL = "tensor_transpose"
SOURCE = "ExaTENSOR/cuda2.cu"

_LOOP_LINE = 30
_DIV_LINE = 34
_DIM_LINE = 36
_STORE_LINE = 38


def _build(reciprocal: bool = False, constant_memory: bool = False) -> KernelSetup:
    builder = CubinBuilder(module_name="ExaTENSOR")
    k = builder.kernel(KERNEL, source_file=SOURCE)
    standard_prologue(k, addr_reg=2, line=16)
    k.mov_imm(12, 0)
    k.mov_imm(10, 6)       # tensor rank (divisor of the index arithmetic)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 20)
    k.at_line(_LOOP_LINE)
    k.isetp(0, 8, 9, "LT")
    with k.loop("transpose", predicate=p(0)):
        k.at_line(_LOOP_LINE)
        k.iadd(8, 8, imm(1))
        # Dimension-extent reads, shared by every thread of the grid: global
        # loads in the baseline (uncoalesced -> many redundant transactions),
        # constant memory after the Memory Transaction Reduction fix.  Their
        # consumers come after the division chain, so the load latency is
        # largely hidden; the remaining cost is the transaction pressure.
        k.at_line(_DIM_LINE)
        if constant_memory:
            k.ldc(13, 6, offset=0)
            k.ldc(14, 6, offset=4)
        else:
            k.ldg(13, 2, offset=0)
            k.ldg(14, 2, offset=4)
        # Index linearization: one chained division per dimension pair of the
        # six-dimensional tensor.
        integer_division(k, numerator_reg=0, denominator_reg=10, out_reg=44,
                         line=_DIV_LINE, optimized=reciprocal)
        k.at_line(_DIV_LINE)
        k.iadd(45, 44, 0)
        integer_division(k, numerator_reg=45, denominator_reg=10, out_reg=47,
                         line=_DIV_LINE, optimized=reciprocal)
        k.at_line(_DIV_LINE)
        k.iadd(45, 47, 45)
        integer_division(k, numerator_reg=45, denominator_reg=10, out_reg=48,
                         line=_DIV_LINE, optimized=reciprocal)
        k.at_line(_DIV_LINE)
        k.iadd(45, 48, 45)
        k.at_line(_DIM_LINE + 1)
        k.imad(46, 45, 13, 14)
        k.ffma(12, 46, 46, 12)
        # The transposed element store.
        k.at_line(_STORE_LINE)
        k.stg(2, 12, offset=16)
        k.at_line(_LOOP_LINE)
        k.isetp(0, 8, 9, "LT")
    store_result(k, 2, 12, 44)
    builder.add_function(k.build())

    uncoalesced = set() if constant_memory else {_DIM_LINE}
    workload = WorkloadSpec(
        name="ExaTENSOR",
        loop_trip_counts={_LOOP_LINE: 16},
        uncoalesced_lines=uncoalesced,
        uncoalesced_transactions=2,
        memory_latency_scale=1.0,
    )
    config = LaunchConfig(grid_blocks=2048, threads_per_block=256)
    return KernelSetup(cubin=builder.build(), kernel=KERNEL, config=config, workload=workload)


def baseline() -> KernelSetup:
    return _build()


def strength_reduced() -> KernelSetup:
    return _build(reciprocal=True)


def constant_memory() -> KernelSetup:
    # The paper applies this after the strength-reduction fix.
    return _build(reciprocal=True, constant_memory=True)


def strength_reduced_baseline() -> KernelSetup:
    """Baseline for the second optimization step (division already fixed)."""
    return _build(reciprocal=True)


CASES = [
    BenchmarkCase(
        name="ExaTENSOR",
        kernel=KERNEL,
        optimization="Strength Reduction",
        optimizer_name="GPUStrengthReductionOptimizer",
        baseline=baseline,
        optimized=strength_reduced,
        paper_original_time="5.46ms",
        paper_achieved_speedup=1.07,
        paper_estimated_speedup=1.06,
        is_rodinia=False,
    ),
    BenchmarkCase(
        name="ExaTENSOR",
        kernel=KERNEL,
        optimization="Memory Transaction Reduction",
        optimizer_name="GPUMemoryTransactionReductionOptimizer",
        baseline=strength_reduced_baseline,
        optimized=constant_memory,
        paper_original_time="5.08ms",
        paper_achieved_speedup=1.03,
        paper_estimated_speedup=1.05,
        is_rodinia=False,
    ),
]
