"""Synthetic application kernels for the Section 7 case studies."""
