"""PeleC — ``pc_expl_reactions`` (Block Increase, 1.19x / 1.23x).

Section 7.3: the reaction kernel occupies only 16 blocks, so most SMs are
idle; reducing the threads per block while doubling the number of blocks
improves the parallelism.  (The top code-reordering suggestion was impractical
because its hotspots are scattered across many lines.)
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_parallelism_kernel

KERNEL = "pc_expl_reactions"
SOURCE = "PeleC_reactions.cpp"


def _build(grid_blocks: int, threads_per_block: int) -> KernelSetup:
    return build_parallelism_kernel(
        "PeleC",
        KERNEL,
        SOURCE,
        grid_blocks=grid_blocks,
        threads_per_block=threads_per_block,
        trip_count=20,
        loads_per_iteration=2,
        work_ops_per_iteration=6,
        registers_per_thread=56,
    )


def baseline() -> KernelSetup:
    return _build(grid_blocks=16, threads_per_block=1024)


def more_blocks() -> KernelSetup:
    return _build(grid_blocks=32, threads_per_block=512)


CASES = [
    BenchmarkCase(
        name="PeleC",
        kernel=KERNEL,
        optimization="Block Increase",
        optimizer_name="GPUBlockIncreaseOptimizer",
        baseline=baseline,
        optimized=more_blocks,
        paper_original_time="440.12ms",
        paper_achieved_speedup=1.19,
        paper_estimated_speedup=1.23,
        is_rodinia=False,
    ),
]
