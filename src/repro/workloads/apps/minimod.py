"""Minimod — ``target_pml_3d`` (Fast Math 1.03x / 1.09x, Code Reorder 1.05x / 1.10x).

Section 7.4: the higher-order stencil first benefits (slightly) from
``--use_fast_math``, then from reading subscripted global values well before
their use so more of the memory latency is hidden.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.families import build_math_kernel

KERNEL = "target_pml_3d"
SOURCE = "minimod_pml3d.cu"


def _build(fast_math: bool = False, gap_ops: int = 0) -> KernelSetup:
    return build_math_kernel(
        "Minimod",
        KERNEL,
        SOURCE,
        grid_blocks=1250,
        threads_per_block=256,
        trip_count=8,
        math_calls_per_iteration=1,
        math_functions=("div",),
        fast_math=fast_math,
        loads_per_iteration=3,
        gap_ops=gap_ops,
    )


def baseline() -> KernelSetup:
    return _build()


def fast_math() -> KernelSetup:
    return _build(fast_math=True)


def fast_math_baseline() -> KernelSetup:
    """Baseline for the second step (fast math already applied)."""
    return _build(fast_math=True)


def reordered() -> KernelSetup:
    return _build(fast_math=True, gap_ops=5)


CASES = [
    BenchmarkCase(
        name="Minimod",
        kernel=KERNEL,
        optimization="Fast Math",
        optimizer_name="GPUFastMathOptimizer",
        baseline=baseline,
        optimized=fast_math,
        paper_original_time="89.12ms",
        paper_achieved_speedup=1.03,
        paper_estimated_speedup=1.09,
        is_rodinia=False,
    ),
    BenchmarkCase(
        name="Minimod",
        kernel=KERNEL,
        optimization="Code Reorder",
        optimizer_name="GPUCodeReorderingOptimizer",
        baseline=fast_math_baseline,
        optimized=reordered,
        paper_original_time="86.31ms",
        paper_achieved_speedup=1.05,
        paper_estimated_speedup=1.10,
        is_rodinia=False,
    ),
]
