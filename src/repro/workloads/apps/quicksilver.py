"""Quicksilver — ``CycleTrackingKernel`` (Function Inlining 1.12x / 1.18x,
Register Reuse 1.03x / 1.04x).

Quicksilver's single large kernel invokes many device functions.  Two
inefficiencies from the paper's case study (Section 7.2):

* two small device functions are *not* inlined, so their loads cannot be
  overlapped with the caller's independent work — manual inlining helps;
* register pressure forces spills (local memory loads/stores) inside a loop —
  splitting the loop removes the spills.
"""

from __future__ import annotations

from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.workloads.base import BenchmarkCase, KernelSetup
from repro.workloads.patterns import standard_prologue, store_result

KERNEL = "CycleTrackingKernel"
SOURCE = "CycleTracking.cc"

_LOOP_LINE = 300
_CALL_A_LINE = 305
_CALL_B_LINE = 307
_SPILL_LINE = 312


def _device_function(builder: CubinBuilder, name: str) -> None:
    """A small device function: load a table entry and post-process it."""
    f = builder.device_function(name, source_file=SOURCE)
    f.at_line(20)
    f.ldg(50, 2, offset=8)
    f.ffma(56, 56, 56, 56)
    f.ffma(57, 57, 57, 57)
    f.at_line(21)
    f.ffma(51, 50, 50, 51)
    f.fadd(52, 51, 50)
    f.ret()
    builder.add_function(f.build())


def _build(inlined: bool = False, spills_fixed: bool = False) -> KernelSetup:
    builder = CubinBuilder(module_name="Quicksilver")
    k = builder.kernel(KERNEL, source_file=SOURCE, registers_per_thread=96)
    standard_prologue(k, addr_reg=2, line=290)
    k.mov_imm(12, 0)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 20)
    k.at_line(_LOOP_LINE)
    k.isetp(0, 8, 9, "LT")
    with k.loop("tracking", predicate=p(0)):
        k.at_line(_LOOP_LINE)
        k.iadd(8, 8, imm(1))
        # Segment-length and cross-section lookups: either calls to device
        # functions (baseline) or their bodies integrated into the caller
        # (manual inlining), where the loads can overlap the caller's work.
        if inlined:
            with k.inlined("MC_Segment_Outcome", call_site_line=_CALL_A_LINE):
                k.at_line(_CALL_A_LINE)
                k.ldg(50, 2, offset=8)
            with k.inlined("MacroscopicCrossSection", call_site_line=_CALL_B_LINE):
                k.at_line(_CALL_B_LINE)
                k.ldg(53, 2, offset=16)
            k.at_line(_CALL_A_LINE)
            k.ffma(24, 24, 24, 24)
            k.ffma(51, 50, 50, 51)
            k.at_line(_CALL_B_LINE)
            k.ffma(54, 53, 53, 54)
        else:
            k.at_line(_CALL_A_LINE)
            k.call("MC_Segment_Outcome")
            k.at_line(_CALL_B_LINE)
            k.call("MacroscopicCrossSection")
            k.ffma(24, 24, 24, 24)
        # Register spills: the particle state does not fit in registers.
        if not spills_fixed:
            k.at_line(_SPILL_LINE)
            k.stl(60, 30)
            k.ffma(30, 30, 30, 30)
            k.at_line(_SPILL_LINE + 1)
            k.ldl(31, 60)
            k.ffma(12, 31, 31, 12)
        else:
            k.at_line(_SPILL_LINE)
            k.ffma(30, 30, 30, 30)
            k.ffma(12, 30, 30, 12)
        k.at_line(_LOOP_LINE)
        k.isetp(0, 8, 9, "LT")
    store_result(k, 2, 12, 330)
    builder.add_function(k.build())
    if not inlined:
        _device_function(builder, "MC_Segment_Outcome")
        _device_function(builder, "MacroscopicCrossSection")

    workload = WorkloadSpec(
        name="Quicksilver",
        loop_trip_counts={_LOOP_LINE: 24},
        call_targets={
            _CALL_A_LINE: "MC_Segment_Outcome",
            _CALL_B_LINE: "MacroscopicCrossSection",
        },
    )
    config = LaunchConfig(grid_blocks=480, threads_per_block=256)
    return KernelSetup(cubin=builder.build(), kernel=KERNEL, config=config, workload=workload)


def baseline() -> KernelSetup:
    return _build()


def inlined() -> KernelSetup:
    return _build(inlined=True)


def register_reuse() -> KernelSetup:
    return _build(spills_fixed=True)


CASES = [
    BenchmarkCase(
        name="Quicksilver",
        kernel=KERNEL,
        optimization="Function Inlining",
        optimizer_name="GPUFunctionInliningOptimizer",
        baseline=baseline,
        optimized=inlined,
        paper_original_time="1.18s",
        paper_achieved_speedup=1.12,
        paper_estimated_speedup=1.18,
        is_rodinia=False,
    ),
    BenchmarkCase(
        name="Quicksilver",
        kernel=KERNEL,
        optimization="Register Reuse",
        optimizer_name="GPURegisterReuseOptimizer",
        baseline=baseline,
        optimized=register_reuse,
        paper_original_time="1.05s",
        paper_achieved_speedup=1.03,
        paper_estimated_speedup=1.04,
        is_rodinia=False,
    ),
]
