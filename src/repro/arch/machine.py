"""GPU machine models.

Each :class:`GpuArchitecture` instance describes the hardware parameters that
GPA's analyses need.  The default model is a Volta V100, the GPU the paper
evaluates on (Section 6): 80 SMs, 4 warp schedulers per SM, 64 warps per SM,
warp size 32, 255 registers per thread, 64K registers and 96 KiB shared
memory per SM.

Instruction latencies are taken from the opcode catalog
(:mod:`repro.isa.opcodes`), which follows the Volta microbenchmarking study
the paper cites (Jia et al.).  Architectures are registered by their CUBIN
architecture flag (e.g. ``sm_70``) so the static analyzer can fetch the right
model from the flag recorded in a binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opcodes import OPCODES, OpcodeInfo, lookup_opcode_tolerant


class ArchitectureError(KeyError):
    """Raised when an unknown architecture flag is requested."""


@dataclass(frozen=True)
class MemoryHierarchyParameters:
    """Per-SM memory-hierarchy configuration of one GPU generation.

    Consumed by :class:`repro.sampling.memory.MemoryHierarchy`, the detailed
    L1/L2/DRAM model behind ``memory_model="hierarchy"``.  All sizes are in
    bytes, all latencies in core cycles; latencies are *totals* from issue to
    completion (the microbenchmarked load-to-use figures of Jia et al.), not
    per-level increments.  The L2 figure is the per-SM *slice* of the shared
    L2 (total L2 divided by the SM count, rounded to a power-of-two-ish
    capacity), since the simulator models one SM at a time.
    """

    #: Memory transaction granularity: NVIDIA GPUs move 32-byte sectors.
    sector_bytes: int = 32
    #: L1 data cache capacity per SM.
    l1_bytes: int = 32 * 1024
    #: L1 associativity (ways per set).
    l1_ways: int = 4
    #: Load-to-use latency of an L1 hit.
    l1_hit_latency: int = 28
    #: Sector transactions the L1 pipeline accepts per cycle.
    l1_sectors_per_cycle: int = 4
    #: Miss-status holding registers: outstanding L1 sector misses before
    #: the memory pipeline throttles.
    l1_mshr_entries: int = 64
    #: This SM's slice of the shared L2 cache.
    l2_slice_bytes: int = 96 * 1024
    #: L2 associativity (ways per set).
    l2_ways: int = 16
    #: Load-to-use latency of an L2 hit.
    l2_hit_latency: int = 193
    #: Load-to-use latency of a DRAM access (before bandwidth queueing).
    dram_latency: int = 430
    #: DRAM bandwidth available to one SM, in bytes per core cycle.
    dram_bytes_per_cycle: int = 8


@dataclass(frozen=True)
class GpuArchitecture:
    """Hardware configuration for one GPU generation."""

    name: str
    #: CUBIN architecture flag, e.g. ``sm_70``.
    arch_flag: str
    #: Number of streaming multiprocessors.
    num_sms: int
    #: Warp schedulers per SM; each records PC samples round-robin.
    schedulers_per_sm: int
    #: Threads per warp.
    warp_size: int
    #: Maximum resident warps per SM.
    max_warps_per_sm: int
    #: Maximum resident thread blocks per SM.
    max_blocks_per_sm: int
    #: Maximum threads per block.
    max_threads_per_block: int
    #: 32-bit registers available per SM.
    registers_per_sm: int
    #: Maximum registers addressable per thread.
    max_registers_per_thread: int
    #: Register allocation granularity (registers are allocated per warp in
    #: multiples of this).
    register_allocation_unit: int
    #: Shared memory per SM in bytes.
    shared_memory_per_sm: int
    #: Shared memory allocation granularity in bytes.
    shared_memory_allocation_unit: int
    #: Instruction cache size in bytes (used by the instruction-fetch model
    #: and the Function Split optimizer).
    instruction_cache_bytes: int
    #: Maximum in-flight memory requests per SM before memory throttling
    #: stalls appear (used by the simulator and the Memory Transaction
    #: Reduction optimizer).
    max_outstanding_memory_requests: int
    #: Core clock in MHz (only used to convert cycles to wall-clock time in
    #: reports; analyses are cycle-based).
    clock_mhz: int = 1380
    #: Per-opcode latency overrides for this architecture.
    latency_overrides: Dict[str, int] = field(default_factory=dict)
    #: Detailed memory-hierarchy parameters (coalescing sectors, L1/L2
    #: caches, DRAM bandwidth) used when ``memory_model="hierarchy"``.
    memory: MemoryHierarchyParameters = field(
        default_factory=MemoryHierarchyParameters
    )

    # ------------------------------------------------------------------
    # Latency queries (used by the pruning rules and the simulator)
    # ------------------------------------------------------------------
    def opcode_info(self, opcode: str) -> OpcodeInfo:
        """Metadata for ``opcode`` from the shared catalog.

        Opcodes outside the catalog (instructions ingested from real
        disassembly) resolve to conservative unknown-op metadata so latency
        queries never raise mid-analysis.
        """
        return lookup_opcode_tolerant(opcode)

    def latency(self, opcode: str) -> int:
        """Typical completion latency of ``opcode`` on this architecture."""
        base = opcode.split(".", 1)[0]
        if opcode in self.latency_overrides:
            return self.latency_overrides[opcode]
        if base in self.latency_overrides:
            return self.latency_overrides[base]
        return lookup_opcode_tolerant(opcode).latency

    def latency_upper_bound(self, opcode: str) -> int:
        """Upper-bound latency used by the latency-based pruning rule.

        The paper uses microbenchmarked latencies for fixed-latency
        instructions and pessimistic bounds (e.g. a TLB miss) for variable
        latency instructions.
        """
        info = lookup_opcode_tolerant(opcode)
        if info.is_variable_latency:
            return info.latency_upper_bound
        return self.latency(opcode)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_warps_per_scheduler(self) -> int:
        """Hardware limit of resident warps managed by one scheduler."""
        return self.max_warps_per_sm // self.schedulers_per_sm

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    def cycles_to_microseconds(self, cycles: float) -> float:
        """Convert a cycle count to microseconds at the core clock."""
        return cycles / self.clock_mhz


#: NVIDIA Volta V100 (sm_70), the GPU used in the paper's evaluation.
VoltaV100 = GpuArchitecture(
    name="Volta V100",
    arch_flag="sm_70",
    num_sms=80,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=96 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=12 * 1024,
    max_outstanding_memory_requests=64,
    clock_mhz=1380,
    # 128 KiB unified L1/shared per SM with 96 KiB carved out for shared
    # memory leaves 32 KiB of L1; 6 MiB of L2 across 80 SMs is a ~77 KiB
    # slice; 900 GB/s of HBM2 at 1380 MHz is ~8 B/cycle per SM.
    memory=MemoryHierarchyParameters(
        l1_bytes=32 * 1024,
        l1_ways=4,
        l1_hit_latency=28,
        l1_sectors_per_cycle=4,
        l1_mshr_entries=64,
        l2_slice_bytes=96 * 1024,
        l2_ways=16,
        l2_hit_latency=193,
        dram_latency=430,
        dram_bytes_per_cycle=8,
    ),
)

#: A Pascal-class model (sm_60) kept for the pre-Volta 64-bit encoding note
#: in Section 2.2; analyses run identically, only limits differ.
PascalLike = GpuArchitecture(
    name="Pascal P100",
    arch_flag="sm_60",
    num_sms=56,
    schedulers_per_sm=2,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=64 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=8 * 1024,
    max_outstanding_memory_requests=48,
    clock_mhz=1328,
    latency_overrides={"LDG": 450, "LDS": 30},
    # Pascal: 24 KiB L1 per SM, 4 MiB L2 over 56 SMs, 732 GB/s HBM2.
    memory=MemoryHierarchyParameters(
        l1_bytes=24 * 1024,
        l1_ways=4,
        l1_hit_latency=82,
        l1_sectors_per_cycle=2,
        l1_mshr_entries=48,
        l2_slice_bytes=72 * 1024,
        l2_ways=16,
        l2_hit_latency=234,
        dram_latency=450,
        dram_bytes_per_cycle=9,
    ),
)

#: A Kepler-class model (sm_35), the oldest generation with PC sampling.
KeplerLike = GpuArchitecture(
    name="Kepler K80",
    arch_flag="sm_35",
    num_sms=13,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=48 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=8 * 1024,
    max_outstanding_memory_requests=32,
    clock_mhz=875,
    latency_overrides={"LDG": 600, "FADD": 9, "FMUL": 9, "FFMA": 9, "IADD": 9},
    # Kepler: 16 KiB L1 (48 KiB shared config), 1.5 MiB L2 over 13 SMs,
    # 240 GB/s GDDR5 per GPU half of a K80.
    memory=MemoryHierarchyParameters(
        l1_bytes=16 * 1024,
        l1_ways=4,
        l1_hit_latency=35,
        l1_sectors_per_cycle=2,
        l1_mshr_entries=32,
        l2_slice_bytes=120 * 1024,
        l2_ways=16,
        l2_hit_latency=222,
        dram_latency=600,
        dram_bytes_per_cycle=20,
    ),
)


#: A Turing-class model (sm_75).  Turing halves the warp slots per SM (32
#: instead of Volta's 64) and has less shared memory, so occupancy-limited
#: launches diverge sharply from the V100 in multi-architecture sweeps.
TuringLike = GpuArchitecture(
    name="Turing T4",
    arch_flag="sm_75",
    num_sms=40,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=32,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=64 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=16 * 1024,
    max_outstanding_memory_requests=48,
    clock_mhz=1590,
    latency_overrides={"LDG": 420, "LDS": 22},
    # Turing T4: 96 KiB unified L1/shared (64 KiB shared leaves 32 KiB L1),
    # 4 MiB L2 over 40 SMs, 320 GB/s GDDR6 at 1590 MHz is ~5 B/cycle/SM.
    memory=MemoryHierarchyParameters(
        l1_bytes=32 * 1024,
        l1_ways=4,
        l1_hit_latency=32,
        l1_sectors_per_cycle=4,
        l1_mshr_entries=48,
        l2_slice_bytes=100 * 1024,
        l2_ways=16,
        l2_hit_latency=188,
        dram_latency=420,
        dram_bytes_per_cycle=5,
    ),
)

#: An Ampere-class model (sm_80).  The A100 raises the SM count, shared
#: memory capacity and memory-level parallelism well beyond the V100.
AmpereLike = GpuArchitecture(
    name="Ampere A100",
    arch_flag="sm_80",
    num_sms=108,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=164 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=32 * 1024,
    max_outstanding_memory_requests=96,
    clock_mhz=1410,
    latency_overrides={"LDG": 360, "LDS": 22, "BAR": 20},
    # Ampere A100: 192 KiB unified L1/shared (164 KiB shared leaves fast
    # 28 KiB, but the common carve-out keeps 64 KiB of L1); 40 MiB L2 over
    # 108 SMs is a ~380 KiB slice; 1555 GB/s HBM2e is ~10 B/cycle per SM.
    memory=MemoryHierarchyParameters(
        l1_bytes=64 * 1024,
        l1_ways=4,
        l1_hit_latency=33,
        l1_sectors_per_cycle=4,
        l1_mshr_entries=96,
        l2_slice_bytes=384 * 1024,
        l2_ways=16,
        l2_hit_latency=200,
        dram_latency=290,
        dram_bytes_per_cycle=10,
    ),
)


_REGISTRY: Dict[str, GpuArchitecture] = {}


def register_architecture(architecture: GpuArchitecture) -> None:
    """Register an architecture so it can be looked up by its arch flag."""
    _REGISTRY[architecture.arch_flag] = architecture


def get_architecture(arch_flag: str) -> GpuArchitecture:
    """Fetch the architecture model registered for ``arch_flag``.

    Raises :class:`ArchitectureError` if the flag is unknown.
    """
    try:
        return _REGISTRY[arch_flag]
    except KeyError as exc:
        raise ArchitectureError(
            f"unknown architecture flag {arch_flag!r}; known: {sorted(_REGISTRY)}"
        ) from exc


def architecture_flags() -> list:
    """The registered CUBIN architecture flags, sorted (for CLI choices)."""
    return sorted(_REGISTRY)


for _arch in (VoltaV100, PascalLike, KeplerLike, TuringLike, AmpereLike):
    register_architecture(_arch)
