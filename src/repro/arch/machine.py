"""GPU machine models.

Each :class:`GpuArchitecture` instance describes the hardware parameters that
GPA's analyses need.  The default model is a Volta V100, the GPU the paper
evaluates on (Section 6): 80 SMs, 4 warp schedulers per SM, 64 warps per SM,
warp size 32, 255 registers per thread, 64K registers and 96 KiB shared
memory per SM.

Instruction latencies are taken from the opcode catalog
(:mod:`repro.isa.opcodes`), which follows the Volta microbenchmarking study
the paper cites (Jia et al.).  Architectures are registered by their CUBIN
architecture flag (e.g. ``sm_70``) so the static analyzer can fetch the right
model from the flag recorded in a binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opcodes import OPCODES, OpcodeInfo, lookup_opcode


class ArchitectureError(KeyError):
    """Raised when an unknown architecture flag is requested."""


@dataclass(frozen=True)
class GpuArchitecture:
    """Hardware configuration for one GPU generation."""

    name: str
    #: CUBIN architecture flag, e.g. ``sm_70``.
    arch_flag: str
    #: Number of streaming multiprocessors.
    num_sms: int
    #: Warp schedulers per SM; each records PC samples round-robin.
    schedulers_per_sm: int
    #: Threads per warp.
    warp_size: int
    #: Maximum resident warps per SM.
    max_warps_per_sm: int
    #: Maximum resident thread blocks per SM.
    max_blocks_per_sm: int
    #: Maximum threads per block.
    max_threads_per_block: int
    #: 32-bit registers available per SM.
    registers_per_sm: int
    #: Maximum registers addressable per thread.
    max_registers_per_thread: int
    #: Register allocation granularity (registers are allocated per warp in
    #: multiples of this).
    register_allocation_unit: int
    #: Shared memory per SM in bytes.
    shared_memory_per_sm: int
    #: Shared memory allocation granularity in bytes.
    shared_memory_allocation_unit: int
    #: Instruction cache size in bytes (used by the instruction-fetch model
    #: and the Function Split optimizer).
    instruction_cache_bytes: int
    #: Maximum in-flight memory requests per SM before memory throttling
    #: stalls appear (used by the simulator and the Memory Transaction
    #: Reduction optimizer).
    max_outstanding_memory_requests: int
    #: Core clock in MHz (only used to convert cycles to wall-clock time in
    #: reports; analyses are cycle-based).
    clock_mhz: int = 1380
    #: Per-opcode latency overrides for this architecture.
    latency_overrides: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Latency queries (used by the pruning rules and the simulator)
    # ------------------------------------------------------------------
    def opcode_info(self, opcode: str) -> OpcodeInfo:
        """Metadata for ``opcode`` from the shared catalog."""
        return lookup_opcode(opcode)

    def latency(self, opcode: str) -> int:
        """Typical completion latency of ``opcode`` on this architecture."""
        base = opcode.split(".", 1)[0]
        if opcode in self.latency_overrides:
            return self.latency_overrides[opcode]
        if base in self.latency_overrides:
            return self.latency_overrides[base]
        return lookup_opcode(opcode).latency

    def latency_upper_bound(self, opcode: str) -> int:
        """Upper-bound latency used by the latency-based pruning rule.

        The paper uses microbenchmarked latencies for fixed-latency
        instructions and pessimistic bounds (e.g. a TLB miss) for variable
        latency instructions.
        """
        info = lookup_opcode(opcode)
        if info.is_variable_latency:
            return info.latency_upper_bound
        return self.latency(opcode)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_warps_per_scheduler(self) -> int:
        """Hardware limit of resident warps managed by one scheduler."""
        return self.max_warps_per_sm // self.schedulers_per_sm

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    def cycles_to_microseconds(self, cycles: float) -> float:
        """Convert a cycle count to microseconds at the core clock."""
        return cycles / self.clock_mhz


#: NVIDIA Volta V100 (sm_70), the GPU used in the paper's evaluation.
VoltaV100 = GpuArchitecture(
    name="Volta V100",
    arch_flag="sm_70",
    num_sms=80,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=96 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=12 * 1024,
    max_outstanding_memory_requests=64,
    clock_mhz=1380,
)

#: A Pascal-class model (sm_60) kept for the pre-Volta 64-bit encoding note
#: in Section 2.2; analyses run identically, only limits differ.
PascalLike = GpuArchitecture(
    name="Pascal P100",
    arch_flag="sm_60",
    num_sms=56,
    schedulers_per_sm=2,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=64 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=8 * 1024,
    max_outstanding_memory_requests=48,
    clock_mhz=1328,
    latency_overrides={"LDG": 450, "LDS": 30},
)

#: A Kepler-class model (sm_35), the oldest generation with PC sampling.
KeplerLike = GpuArchitecture(
    name="Kepler K80",
    arch_flag="sm_35",
    num_sms=13,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=48 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=8 * 1024,
    max_outstanding_memory_requests=32,
    clock_mhz=875,
    latency_overrides={"LDG": 600, "FADD": 9, "FMUL": 9, "FFMA": 9, "IADD": 9},
)


#: A Turing-class model (sm_75).  Turing halves the warp slots per SM (32
#: instead of Volta's 64) and has less shared memory, so occupancy-limited
#: launches diverge sharply from the V100 in multi-architecture sweeps.
TuringLike = GpuArchitecture(
    name="Turing T4",
    arch_flag="sm_75",
    num_sms=40,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=32,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=64 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=16 * 1024,
    max_outstanding_memory_requests=48,
    clock_mhz=1590,
    latency_overrides={"LDG": 420, "LDS": 22},
)

#: An Ampere-class model (sm_80).  The A100 raises the SM count, shared
#: memory capacity and memory-level parallelism well beyond the V100.
AmpereLike = GpuArchitecture(
    name="Ampere A100",
    arch_flag="sm_80",
    num_sms=108,
    schedulers_per_sm=4,
    warp_size=32,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_unit=256,
    shared_memory_per_sm=164 * 1024,
    shared_memory_allocation_unit=256,
    instruction_cache_bytes=32 * 1024,
    max_outstanding_memory_requests=96,
    clock_mhz=1410,
    latency_overrides={"LDG": 360, "LDS": 22, "BAR": 20},
)


_REGISTRY: Dict[str, GpuArchitecture] = {}


def register_architecture(architecture: GpuArchitecture) -> None:
    """Register an architecture so it can be looked up by its arch flag."""
    _REGISTRY[architecture.arch_flag] = architecture


def get_architecture(arch_flag: str) -> GpuArchitecture:
    """Fetch the architecture model registered for ``arch_flag``.

    Raises :class:`ArchitectureError` if the flag is unknown.
    """
    try:
        return _REGISTRY[arch_flag]
    except KeyError as exc:
        raise ArchitectureError(
            f"unknown architecture flag {arch_flag!r}; known: {sorted(_REGISTRY)}"
        ) from exc


def architecture_flags() -> list:
    """The registered CUBIN architecture flags, sorted (for CLI choices)."""
    return sorted(_REGISTRY)


for _arch in (VoltaV100, PascalLike, KeplerLike, TuringLike, AmpereLike):
    register_architecture(_arch)
