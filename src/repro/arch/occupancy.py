"""Occupancy calculation.

The parallel optimizers (Block Increase, Thread Increase) need to know how
many blocks and warps a kernel launch places on each SM, and what limits the
occupancy: registers per thread, shared memory per block, the block-count
limit, or the warp-count limit.  This module reproduces the standard CUDA
occupancy calculation for those purposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.machine import GpuArchitecture


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one kernel launch on one architecture."""

    #: Thread blocks resident per SM.
    blocks_per_sm: int
    #: Warps resident per SM.
    warps_per_sm: int
    #: Warps per scheduler (resident warps / schedulers per SM).
    warps_per_scheduler: float
    #: Fraction of the hardware warp-slot limit that is occupied.
    occupancy: float
    #: Which resource limits occupancy: ``"registers"``, ``"shared_memory"``,
    #: ``"blocks"``, ``"warps"`` or ``"grid"`` (too few blocks in the grid).
    limiter: str
    #: Total blocks in the grid.
    grid_blocks: int
    #: Number of "waves" needed to run the whole grid.
    waves: float
    #: Blocks each SM can hold at once from hardware resources alone (the
    #: per-SM residency cap *before* clamping by the grid size).  This is the
    #: dispatch capacity the whole-GPU engine schedules waves with; equals
    #: ``blocks_per_sm`` unless the launch is grid-limited.
    blocks_per_sm_limit: int = 0

    @property
    def is_grid_limited(self) -> bool:
        """True when the grid is too small to fill the GPU even once."""
        return self.limiter == "grid"


class OccupancyCalculator:
    """Computes occupancy for kernel launches on a given architecture."""

    def __init__(self, architecture: GpuArchitecture):
        self.architecture = architecture

    def blocks_per_sm_limit(
        self,
        threads_per_block: int,
        registers_per_thread: int,
        shared_memory_per_block: int,
    ) -> tuple:
        """Return (blocks_per_sm, limiter) imposed by hardware resources."""
        arch = self.architecture
        if threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if threads_per_block > arch.max_threads_per_block:
            raise ValueError(
                f"threads_per_block {threads_per_block} exceeds the architecture "
                f"limit of {arch.max_threads_per_block}"
            )

        warps_per_block = math.ceil(threads_per_block / arch.warp_size)

        limits = {}
        limits["warps"] = arch.max_warps_per_sm // warps_per_block
        limits["blocks"] = arch.max_blocks_per_sm

        if registers_per_thread > 0:
            unit = arch.register_allocation_unit
            regs_per_warp = registers_per_thread * arch.warp_size
            regs_per_warp = math.ceil(regs_per_warp / unit) * unit
            regs_per_block = regs_per_warp * warps_per_block
            limits["registers"] = arch.registers_per_sm // regs_per_block if regs_per_block else limits["blocks"]
        else:
            limits["registers"] = limits["blocks"]

        if shared_memory_per_block > 0:
            unit = arch.shared_memory_allocation_unit
            smem = math.ceil(shared_memory_per_block / unit) * unit
            limits["shared_memory"] = arch.shared_memory_per_sm // smem
        else:
            limits["shared_memory"] = limits["blocks"]

        limiter = min(limits, key=lambda key: limits[key])
        blocks = max(0, limits[limiter])
        return blocks, limiter

    def calculate(
        self,
        grid_blocks: int,
        threads_per_block: int,
        registers_per_thread: int = 32,
        shared_memory_per_block: int = 0,
    ) -> OccupancyResult:
        """Compute the occupancy of a launch configuration."""
        arch = self.architecture
        blocks_limit, limiter = self.blocks_per_sm_limit(
            threads_per_block, registers_per_thread, shared_memory_per_block
        )
        if blocks_limit == 0:
            raise ValueError(
                "launch configuration exceeds per-SM resources; no block fits"
            )

        warps_per_block = math.ceil(threads_per_block / arch.warp_size)

        # Blocks actually available to each SM given the grid size.
        blocks_from_grid = math.ceil(grid_blocks / arch.num_sms)
        blocks_per_sm = min(blocks_limit, blocks_from_grid)
        if blocks_from_grid < blocks_limit:
            limiter = "grid"

        warps_per_sm = blocks_per_sm * warps_per_block
        warps_per_scheduler = warps_per_sm / arch.schedulers_per_sm
        occupancy = warps_per_sm / arch.max_warps_per_sm
        waves = grid_blocks / (blocks_limit * arch.num_sms)

        return OccupancyResult(
            blocks_per_sm=blocks_per_sm,
            warps_per_sm=warps_per_sm,
            warps_per_scheduler=warps_per_scheduler,
            occupancy=occupancy,
            limiter=limiter,
            grid_blocks=grid_blocks,
            waves=waves,
            blocks_per_sm_limit=blocks_limit,
        )
