"""Architectural feature descriptions (the paper's "GPU Arch Features" box).

GPA's static analyzer reads the architecture flag encoded in each CUBIN and
fetches hardware configuration — instruction latencies, warp size, register
limits, scheduler counts — for use by the blamer (latency-based pruning), the
optimizers (occupancy reasoning) and the estimators (issue-rate modelling).
"""

from repro.arch.machine import (
    ArchitectureError,
    GpuArchitecture,
    KeplerLike,
    PascalLike,
    VoltaV100,
    get_architecture,
    register_architecture,
)
from repro.arch.occupancy import OccupancyCalculator, OccupancyResult

__all__ = [
    "ArchitectureError",
    "GpuArchitecture",
    "KeplerLike",
    "OccupancyCalculator",
    "OccupancyResult",
    "PascalLike",
    "VoltaV100",
    "get_architecture",
    "register_architecture",
]
