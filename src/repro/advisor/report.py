"""The advice report (Figure 8).

``AdviceReport`` collects, for one kernel launch, the matched advice of every
optimizer ranked by estimated speedup, plus the launch/kernel statistics that
give the numbers context.  ``render_report`` produces the ASCII text GPA
emits today; ``AdviceReport.to_dict`` produces a JSON-friendly form a GUI
could ingest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.blame.attribution import BlameResult
from repro.optimizers.base import OptimizationAdvice
from repro.sampling.sample import KernelProfile
from repro.sampling.stall_reasons import StallReason


@dataclass
class AdviceReport:
    """The ranked advice for one kernel."""

    kernel: str
    profile: KernelProfile
    blame: BlameResult
    #: Advice from every applicable optimizer, sorted by estimated speedup
    #: (descending).
    advice: List[OptimizationAdvice] = field(default_factory=list)

    def top(self, count: int = 5) -> List[OptimizationAdvice]:
        """The ``count`` most promising optimizations."""
        return self.advice[:count]

    def advice_for(self, optimizer_name: str) -> Optional[OptimizationAdvice]:
        for item in self.advice:
            if item.optimizer == optimizer_name:
                return item
        return None

    def to_dict(self) -> dict:
        """A lossless JSON-friendly description (inverse: :meth:`from_dict`).

        The ``statistics``/``totals``/``stalls_by_reason`` summaries are kept
        for display consumers, but the full profile and the blame tree are
        carried too, so a report dumped by a worker process reloads into an
        equal report (same ranked advice, speedups and blame records).
        """
        from repro.api.schema import API_SCHEMA_VERSION

        return {
            "schema_version": API_SCHEMA_VERSION,
            "kind": "advice_report",
            "kernel": self.kernel,
            "statistics": self.profile.statistics.to_dict(),
            "totals": {
                "total_samples": self.profile.total_samples,
                "active_samples": self.profile.active_samples,
                "latency_samples": self.profile.latency_samples,
                "stall_ratio": self.profile.stall_ratio,
            },
            "stalls_by_reason": {
                reason.value: count for reason, count in self.profile.stalls_by_reason().items()
            },
            "profile": self.profile.to_dict(),
            "blame": self.blame.to_dict(),
            "advice": [item.to_dict() for item in self.advice],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AdviceReport":
        """Rebuild a report dumped by :meth:`to_dict`.

        ``dump -> load -> dump`` is a fixed point: the summary blocks are
        recomputed from the reloaded profile, which round-trips exactly.
        """
        from repro.api.schema import check_envelope

        payload = check_envelope(payload, "advice_report")
        return cls(
            kernel=payload["kernel"],
            profile=KernelProfile.from_dict(payload["profile"]),
            blame=BlameResult.from_dict(payload["blame"]),
            advice=[OptimizationAdvice.from_dict(entry) for entry in payload["advice"]],
        )


def render_report(report: AdviceReport, top: int = 5, hotspots_per_advice: int = 5) -> str:
    """Render the report in the ASCII format of Figure 8."""
    profile = report.profile
    stats = profile.statistics
    lines: List[str] = []
    lines.append("=" * 78)
    lines.append(f"GPA advice report for kernel {report.kernel}")
    lines.append("=" * 78)
    lines.append(
        f"Launch: grid={stats.config.grid_blocks} blocks x "
        f"{stats.config.threads_per_block} threads, "
        f"{stats.registers_per_thread} registers/thread, "
        f"occupancy {stats.occupancy * 100:.1f}% (limited by {stats.occupancy_limiter})"
    )
    lines.append(
        f"Samples: total {profile.total_samples}, active {profile.active_samples}, "
        f"latency {profile.latency_samples} (stall ratio {profile.stall_ratio * 100:.1f}%)"
    )
    stalls = profile.stalls_by_reason()
    if stalls:
        ranked = sorted(stalls.items(), key=lambda item: item[1], reverse=True)
        summary = ", ".join(f"{reason.value} {count}" for reason, count in ranked[:5])
        lines.append(f"Top stall reasons: {summary}")
    lines.append("")

    shown = [item for item in report.advice if item.applicable][:top]
    if not shown:
        lines.append("No applicable optimization found.")
    for rank, item in enumerate(shown, start=1):
        lines.append("-" * 78)
        lines.append(
            f"{rank}. Apply {item.optimizer} optimization, "
            f"ratio {item.ratio * 100:.3f}%, estimate speedup {item.estimated_speedup:.3f}x"
        )
        for suggestion in item.suggestions:
            lines.append(f"   {suggestion}")
        if item.details:
            interesting = {
                key: value
                for key, value in item.details.items()
                if not isinstance(value, (list, dict))
            }
            if interesting:
                detail_text = ", ".join(f"{key}={value}" for key, value in interesting.items())
                lines.append(f"   [{detail_text}]")
        for index, hotspot in enumerate(item.hotspots[:hotspots_per_advice], start=1):
            lines.append(
                f"   {index}. Hot BLAME GINS:LAT_IDEP_DEP code, "
                f"ratio {hotspot.ratio * 100:.3f}%, speedup {hotspot.speedup:.3f}x, "
                f"distance {hotspot.distance if hotspot.distance is not None else '?'}"
            )
            lines.append(
                f"      From {hotspot.source.function} at "
                f"{hotspot.source.file or '<unknown>'}"
            )
            lines.append(f"        {hotspot.source.describe()}")
            lines.append(
                f"      To {hotspot.dest.function} at {hotspot.dest.file or '<unknown>'}"
            )
            lines.append(f"        {hotspot.dest.describe()}")
    lines.append("=" * 78)
    return "\n".join(lines)
