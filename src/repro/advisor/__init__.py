"""The GPA advisor: static analyzer, dynamic analyzer, report and CLI.

This package glues the pipeline of Figure 2 together:

* :class:`~repro.advisor.static_analyzer.StaticAnalyzer` — recovers control
  flow, program structure and architectural features from a CUBIN;
* :class:`~repro.advisor.dynamic_analyzer.DynamicAnalyzer` — runs the
  instruction blamer, matches every registered optimizer and estimates its
  speedup;
* :class:`~repro.advisor.advisor.GPA` — the user-facing facade that combines
  the profiler, the static analyzer and the dynamic analyzer;
* :mod:`repro.advisor.report` — the ASCII advice report (Figure 8 format);
* :mod:`repro.advisor.cli` — the ``gpa-advise`` command line tool.
"""

from repro.advisor.static_analyzer import StaticAnalysis, StaticAnalyzer
from repro.advisor.dynamic_analyzer import DynamicAnalyzer
from repro.advisor.report import AdviceReport, render_report
from repro.advisor.advisor import GPA

__all__ = [
    "AdviceReport",
    "DynamicAnalyzer",
    "GPA",
    "StaticAnalysis",
    "StaticAnalyzer",
    "render_report",
]
