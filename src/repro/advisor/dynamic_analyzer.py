"""The dynamic analyzer (the right half of Figure 2).

For each kernel launch the dynamic analyzer

1. runs the instruction blamer to attribute dependent stalls to their source
   instructions,
2. matches every registered performance optimizer against the blamed stalls
   and the program structure,
3. lets the performance estimators quantify each optimizer's speedup, and
4. assembles the ranked advice report.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.advisor.report import AdviceReport
from repro.arch.machine import GpuArchitecture, VoltaV100
from repro.blame.attribution import InstructionBlamer
from repro.optimizers.base import AnalysisContext, OptimizationAdvice, Optimizer
from repro.optimizers.registry import OptimizerRegistry
from repro.sampling.sample import KernelProfile
from repro.structure.program import ProgramStructure


class DynamicAnalyzer:
    """Runs the blame + match + estimate pipeline on one kernel profile."""

    def __init__(
        self,
        architecture: Optional[GpuArchitecture] = None,
        optimizers: Optional[Iterable[Optimizer]] = None,
    ):
        self.architecture = architecture or VoltaV100
        self.registry = (
            optimizers
            if isinstance(optimizers, OptimizerRegistry)
            else OptimizerRegistry(optimizers)
        )
        self.blamer = InstructionBlamer(self.architecture)

    # ------------------------------------------------------------------
    def analyze(self, profile: KernelProfile, structure: ProgramStructure) -> AdviceReport:
        """Produce the ranked advice report for one kernel launch."""
        blame = self.blamer.blame(profile, structure)
        context = AnalysisContext(
            profile=profile,
            structure=structure,
            blame=blame,
            architecture=self.architecture,
        )

        advice: List[OptimizationAdvice] = []
        for optimizer in self.registry:
            result = optimizer.match(context)
            advice.append(result)

        advice.sort(key=lambda item: (item.applicable, item.estimated_speedup), reverse=True)
        return AdviceReport(kernel=profile.kernel, profile=profile, blame=blame, advice=advice)
