"""The ``gpa-advise`` command line tool.

The paper's GPA is a command-line tool that automates the profiling and
analysis stages for a CUDA application.  Without a GPU, the CLI operates on
the built-in synthetic workloads (or on a previously dumped profile + binary
pair):

.. code-block:: console

   # List the available benchmark cases (Table 3 rows).
   gpa-advise --list

   # Profile a benchmark's baseline kernel and print its advice report.
   gpa-advise --case rodinia/hotspot:strength_reduction

   # Same, as JSON (for GUI ingestion).
   gpa-advise --case ExaTENSOR:strength_reduction --json

   # Analyze an offline profile dumped by the profiler.
   gpa-advise --profile profile.json --cubin module.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.advisor.advisor import GPA
from repro.advisor.report import render_report
from repro.cubin.binary import Cubin
from repro.sampling.sample import KernelProfile
from repro.structure.program import build_program_structure
from repro.workloads.registry import all_cases, case_by_name, case_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpa-advise",
        description="GPU Performance Advisor (simulator-backed reproduction)",
    )
    parser.add_argument("--list", action="store_true", help="list the built-in benchmark cases")
    parser.add_argument("--case", help="benchmark case to profile and analyze (see --list)")
    parser.add_argument("--optimized", action="store_true",
                        help="analyze the hand-optimized variant instead of the baseline")
    parser.add_argument("--profile", help="path to a dumped kernel profile (JSON)")
    parser.add_argument("--cubin", help="path to a dumped binary (JSON), required with --profile")
    parser.add_argument("--top", type=int, default=5, help="number of optimizers to show")
    parser.add_argument("--sample-period", type=int, default=8,
                        help="PC sampling period in cycles")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def _report_for_case(args: argparse.Namespace) -> "AdviceReport":
    case = case_by_name(args.case)
    setup = case.build_optimized() if args.optimized else case.build_baseline()
    gpa = GPA(sample_period=args.sample_period)
    return gpa.advise(setup.cubin, setup.kernel, setup.config, setup.workload)


def _report_for_profile(args: argparse.Namespace) -> "AdviceReport":
    if not args.cubin:
        raise SystemExit("--profile requires --cubin")
    profile = KernelProfile.from_json(Path(args.profile).read_text())
    cubin = Cubin.from_json(Path(args.cubin).read_text())
    structure = build_program_structure(cubin)
    gpa = GPA(sample_period=args.sample_period)
    return gpa.analyze(profile, structure)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``gpa-advise``."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in case_names():
            case = case_by_name(name)
            print(f"{name:55s} kernel={case.kernel:30s} optimizer={case.optimizer_name}")
        return 0

    if args.case:
        report = _report_for_case(args)
    elif args.profile:
        report = _report_for_profile(args)
    else:
        parser.print_help()
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_report(report, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
