"""The ``gpa-advise`` command line tool.

The paper's GPA is a command-line tool that automates the profiling and
analysis stages for a CUDA application.  Without a GPU, the CLI operates on
the built-in synthetic workloads (or on a previously dumped profile + binary
pair), driving the staged pipeline of :mod:`repro.pipeline`:

.. code-block:: console

   # List the available benchmark cases (Table 3 rows).
   gpa-advise --list

   # Profile a benchmark's baseline kernel and print its advice report.
   gpa-advise --case rodinia/hotspot:strength_reduction

   # Same, as JSON (for GUI ingestion).
   gpa-advise --case ExaTENSOR:strength_reduction --json

   # Sweep the full case registry across 4 worker processes with an
   # on-disk profile cache, on the Ampere machine model.
   gpa-advise --all --jobs 4 --cache-dir .gpa-cache --arch sm_80

   # Analyze an offline profile dumped by the profiler.
   gpa-advise --profile profile.json --cubin module.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.advisor.report import AdviceReport, render_report
from repro.arch.machine import architecture_flags
from repro.cubin.binary import Cubin
from repro.pipeline.batch import (
    BatchAdvisor,
    BatchConfig,
    advise_case_report,
    error_summary,
)
from repro.pipeline.runner import ProgressEvent
from repro.sampling.sample import KernelProfile
from repro.structure.program import build_program_structure
from repro.workloads.registry import case_by_name, case_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpa-advise",
        description="GPU Performance Advisor (simulator-backed reproduction)",
    )
    parser.add_argument("--list", action="store_true", help="list the built-in benchmark cases")
    parser.add_argument("--case", help="benchmark case to profile and analyze (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="sweep every benchmark case in the registry")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="with --all: only sweep the first N cases")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for --all sweeps (default 1)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="directory of the on-disk profile cache; repeated "
                             "runs replay profiles instead of re-simulating")
    parser.add_argument("--arch", default="sm_70", choices=architecture_flags(),
                        help="architecture model to profile on (default sm_70)")
    parser.add_argument("--optimized", action="store_true",
                        help="analyze the hand-optimized variant instead of the baseline")
    parser.add_argument("--profile", help="path to a dumped kernel profile (JSON)")
    parser.add_argument("--cubin", help="path to a dumped binary (JSON), required with --profile")
    parser.add_argument("--top", type=int, default=5, help="number of optimizers to show")
    parser.add_argument("--sample-period", type=int, default=8,
                        help="PC sampling period in cycles")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def _batch_config(args: argparse.Namespace) -> BatchConfig:
    """The one pipeline configuration both --case and --all run on."""
    return BatchConfig(
        arch_flag=args.arch,
        sample_period=args.sample_period,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
    )


def _report_for_case(args: argparse.Namespace) -> AdviceReport:
    _, report = advise_case_report(_batch_config(args), args.case, args.optimized)
    return report


def _report_for_profile(args: argparse.Namespace) -> AdviceReport:
    if not args.cubin:
        raise SystemExit("--profile requires --cubin")
    profile = KernelProfile.from_json(Path(args.profile).read_text())
    cubin = Cubin.from_json(Path(args.cubin).read_text())
    structure = build_program_structure(cubin)
    gpa = _batch_config(args).build_gpa()
    return gpa.analyze(profile, structure)


def _progress_printer(stream):
    """A progress callback that logs one line per finished case.

    The counter tracks *completions*, not submission indices: pool workers
    finish out of order, and a counter that jumps around reads as lost cases.
    """
    finished = 0

    def on_event(event: ProgressEvent) -> None:
        nonlocal finished
        if event.status == "start":
            return
        finished += 1
        status = "ok" if event.status == "done" else "FAILED"
        print(
            f"[{finished:3d}/{event.total}] {event.step:55s} "
            f"{status} ({event.duration:.2f}s)",
            file=stream,
        )

    return on_event


def _sweep_all(args: argparse.Namespace) -> int:
    """Run the full-registry sweep through :class:`BatchAdvisor`."""
    ids = case_names()
    if args.limit is not None:
        ids = ids[: args.limit]
    advisor = BatchAdvisor(_batch_config(args))
    results = advisor.advise(
        ids, optimized=args.optimized, progress=_progress_printer(sys.stderr)
    )

    failures = [result for result in results if not result.ok]
    if args.json:
        payload = [
            {
                "case": result.case_id,
                "ok": result.ok,
                "duration": result.duration,
                "error": result.error,
                **(result.value or {}),
            }
            for result in results
        ]
        print(json.dumps(payload, indent=2))
    else:
        header = (
            f"{'Case':55s} {'Kernel':28s} {'Top advice':35s} "
            f"{'Speedup':>8s} {'Time':>7s}"
        )
        print(header)
        print("-" * len(header))
        for result in results:
            if not result.ok:
                print(f"{result.case_id:55s} FAILED: {error_summary(result.error)}")
                continue
            advice = [
                item for item in result.value["report"]["advice"] if item["applicable"]
            ]
            top_name = advice[0]["optimizer"] if advice else "-"
            top_speedup = advice[0]["estimated_speedup"] if advice else 1.0
            print(
                f"{result.case_id:55s} {result.value['kernel']:28s} {top_name:35s} "
                f"{top_speedup:7.2f}x {result.duration:6.2f}s"
            )
        print(
            f"\n{len(results) - len(failures)}/{len(results)} cases ok "
            f"on {args.arch} ({args.jobs} job{'s' if args.jobs != 1 else ''})"
        )
        for result in failures:
            print(f"\n{result.case_id} failed:\n{result.error}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``gpa-advise``."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.all and args.case:
        parser.error("--case cannot be combined with --all (pick one scope)")
    if args.all and (args.profile or args.cubin):
        parser.error("--profile/--cubin cannot be combined with --all")
    if args.case and (args.profile or args.cubin):
        parser.error("--case cannot be combined with --profile/--cubin (pick one scope)")
    if args.limit is not None and not args.all:
        parser.error("--limit only applies to --all sweeps")
    if args.limit is not None and args.limit < 0:
        parser.error("--limit must be non-negative")

    if args.list:
        for name in case_names():
            case = case_by_name(name)
            print(f"{name:55s} kernel={case.kernel:30s} optimizer={case.optimizer_name}")
        return 0

    if args.all:
        return _sweep_all(args)

    if args.case:
        report = _report_for_case(args)
    elif args.profile:
        report = _report_for_profile(args)
    else:
        parser.print_help()
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_report(report, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
