"""The ``gpa-advise`` command line tool.

The paper's GPA is a command-line tool that automates the profiling and
analysis stages for a CUDA application.  Without a GPU, the CLI operates on
the built-in synthetic workloads (or on a previously dumped profile + binary
pair).  It is a thin adapter over the service-layer API: every invocation
builds an :class:`~repro.api.session.AdvisingSession`, describes the work as
:class:`~repro.api.request.AdvisingRequest` objects and renders the typed
:class:`~repro.api.result.AdvisingResult` objects that come back:

.. code-block:: console

   # List the available benchmark cases (Table 3 rows).
   gpa-advise --list

   # Profile a benchmark's baseline kernel and print its advice report.
   gpa-advise --case rodinia/hotspot:strength_reduction

   # Same, as JSON (for GUI or service ingestion).
   gpa-advise --case ExaTENSOR:strength_reduction --output json

   # Sweep the full case registry across 4 worker processes with an
   # on-disk profile cache, streaming one JSON line per finished case.
   gpa-advise --all --jobs 4 --cache-dir .gpa-cache --output jsonl

   # Analyze an offline profile dumped by the profiler.
   gpa-advise --profile profile.json --cubin module.json

   # Run the persistent advising daemon, then submit jobs to it.  Reports
   # coming back from the daemon are bit-identical to inline runs.
   gpa-advise serve --port 8765 --workers 4 --cache-dir .gpa-cache
   gpa-advise submit --url http://127.0.0.1:8765 --case rodinia/hotspot:strength_reduction
   gpa-advise submit --url http://127.0.0.1:8765 --all --limit 3 --output json

   # Static lint (dataflow over the CFG, no simulation): one case as text,
   # or the full registry as the golden-report JSON layout.
   gpa-advise lint --case rodinia/nw:warp_balance
   gpa-advise lint --all --output json --output-dir lint-reports

   # Lint real disassembly: one nvdisasm/cuobjdump listing, or the committed
   # SASS corpus in the golden-report layout CI byte-diffs.
   gpa-advise lint --sass kernel.sass
   gpa-advise lint --sass-corpus --output json --output-dir sass-lint-reports
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.advisor.report import render_report
from repro.api.request import AdvisingRequest, request_for_case
from repro.api.result import AdvisingResult, dump_jsonl
from repro.api.session import AdvisingSession
from repro.arch.machine import ArchitectureError, architecture_flags
from repro.cubin.binary import Cubin
from repro.pipeline.batch import error_summary
from repro.pipeline.runner import ProgressEvent
from repro.sampling.memory import MEMORY_MODELS
from repro.sampling.profiler import SIMULATION_SCOPES
from repro.sampling.vector import SIMULATOR_BACKENDS
from repro.sampling.sample import KernelProfile
from repro.workloads.registry import case_by_name, case_names

OUTPUT_FORMATS = ("text", "json", "jsonl")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpa-advise",
        description="GPU Performance Advisor (simulator-backed reproduction)",
        epilog="Subcommands: 'gpa-advise serve' runs the persistent advising "
               "daemon; 'gpa-advise submit' sends jobs to it (see "
               "'gpa-advise serve --help' / 'gpa-advise submit --help' and "
               "docs/SERVICE.md); 'gpa-advise lint' runs the static checker "
               "without simulating (see docs/STATIC_ANALYSIS.md).",
    )
    parser.add_argument("--list", action="store_true", help="list the built-in benchmark cases")
    parser.add_argument("--case", help="benchmark case to profile and analyze (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="sweep every benchmark case in the registry")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="with --all: only sweep the first N cases")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for --all sweeps (default 1)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="directory of the on-disk profile cache; repeated "
                             "runs replay profiles instead of re-simulating")
    parser.add_argument("--arch", default="sm_70", choices=architecture_flags(),
                        help="architecture model to profile on (default sm_70)")
    parser.add_argument("--scope", default="single_wave", choices=SIMULATION_SCOPES,
                        dest="simulation_scope", metavar="SCOPE",
                        help="simulation scope: 'single_wave' extrapolates one "
                             "simulated wave (default), 'whole_gpu' measures the "
                             "full grid across every SM (slower, sees tail waves "
                             "and cross-SM imbalance)")
    parser.add_argument("--memory-model", default="flat", choices=MEMORY_MODELS,
                        dest="memory_model", metavar="MODEL",
                        help="memory model: 'flat' services every access at its "
                             "opcode latency (default), 'hierarchy' coalesces "
                             "warp accesses into 32-byte sectors and runs them "
                             "through L1/L2/DRAM with MSHR and bandwidth "
                             "backpressure (reports hit-rate statistics)")
    parser.add_argument("--simulator-backend", default=None, choices=SIMULATOR_BACKENDS,
                        dest="simulator_backend", metavar="BACKEND",
                        help="simulator core: 'vector' steps warps through "
                             "packed arrays (default when numpy is available), "
                             "'object' is the reference object-model core; "
                             "both produce bit-identical profiles")
    parser.add_argument("--optimized", action="store_true",
                        help="analyze the hand-optimized variant instead of the baseline")
    parser.add_argument("--profile", help="path to a dumped kernel profile (JSON)")
    parser.add_argument("--cubin", help="path to a dumped binary (JSON), required with --profile")
    parser.add_argument("--top", type=int, default=5, help="number of optimizers to show")
    parser.add_argument("--sample-period", type=int, default=8,
                        help="PC sampling period in cycles")
    parser.add_argument("--output", choices=OUTPUT_FORMATS, default=None,
                        help="output format: the ASCII Figure 8 report (text, "
                             "default), one JSON document (json), or one JSON "
                             "line per result as it completes (jsonl)")
    parser.add_argument("--json", action="store_true",
                        help="deprecated alias for --output json")
    return parser


def _session(args: argparse.Namespace) -> AdvisingSession:
    """The one advising session every CLI scope runs on."""
    return AdvisingSession(
        architecture=args.arch,
        sample_period=args.sample_period,
        cache=args.cache_dir,
        jobs=args.jobs,
        simulation_scope=args.simulation_scope,
        memory_model=args.memory_model,
        simulator_backend=args.simulator_backend,
    )


def _request_for_args(args: argparse.Namespace) -> AdvisingRequest:
    """The request described by --case or --profile/--cubin."""
    if args.case:
        return request_for_case(
            args.case,
            "optimized" if args.optimized else "baseline",
            arch_flag=args.arch,
        )
    profile = KernelProfile.from_json(Path(args.profile).read_text())
    cubin = Cubin.from_json(Path(args.cubin).read_text())
    return AdvisingRequest(
        source="profile", profile=profile, cubin=cubin,
        label=str(args.profile),
    )


def _emit_single(result: AdvisingResult, args: argparse.Namespace) -> int:
    """Render one result in the chosen output format."""
    if args.output == "jsonl":
        for line in dump_jsonl([result]):
            print(line)
        return 0 if result.ok else 1
    report = result.require_report()
    if args.output == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_report(report, top=args.top))
    return 0


def _progress_printer(stream):
    """A progress callback that logs one line per finished case.

    The counter tracks *completions*, not submission indices: pool workers
    finish out of order, and a counter that jumps around reads as lost cases.
    """
    finished = 0

    def on_event(event: ProgressEvent) -> None:
        nonlocal finished
        if event.status == "start":
            return
        finished += 1
        status = "ok" if event.status == "done" else "FAILED"
        print(
            f"[{finished:3d}/{event.total}] {event.step:55s} "
            f"{status} ({event.duration:.2f}s)",
            file=stream,
        )

    return on_event


def _emit_jsonl(results) -> int:
    """Stream one compact JSON line per result as it becomes available —
    shared by the inline ``--all`` sweep (completion order) and
    ``submit --all`` (submission order)."""
    failures = 0
    for result in results:
        (line,) = dump_jsonl([result])
        print(line, flush=True)
        failures += 0 if result.ok else 1
    return 1 if failures else 0


def _emit_batch_results(
    results: List[AdvisingResult],
    variant: str,
    arch: str,
    output: str,
    engine_note: str,
) -> int:
    """Render a finished batch (``json`` or ``text``) — shared between the
    inline ``--all`` sweep and ``submit --all``, so the two produce the same
    shapes and the CI smoke can diff them field for field."""
    failures = [result for result in results if not result.ok]
    if output == "json":
        payload = []
        for result in results:
            entry = {
                "case": result.label,
                "ok": result.ok,
                "duration": result.duration,
                "error": result.error,
            }
            if result.ok:
                entry.update(
                    kernel=result.report.kernel,
                    variant=variant,
                    arch=arch,
                    report=result.report.to_dict(),
                )
            payload.append(entry)
        print(json.dumps(payload, indent=2))
    else:
        header = (
            f"{'Case':55s} {'Kernel':28s} {'Top advice':35s} "
            f"{'Speedup':>8s} {'Time':>7s}"
        )
        print(header)
        print("-" * len(header))
        for result in results:
            if not result.ok:
                print(f"{result.label:55s} FAILED: {error_summary(result.error)}")
                continue
            applicable = [item for item in result.report.advice if item.applicable]
            top_name = applicable[0].optimizer if applicable else "-"
            top_speedup = applicable[0].estimated_speedup if applicable else 1.0
            print(
                f"{result.label:55s} {result.report.kernel:28s} {top_name:35s} "
                f"{top_speedup:7.2f}x {result.duration:6.2f}s"
            )
        print(
            f"\n{len(results) - len(failures)}/{len(results)} cases ok "
            f"on {arch} ({engine_note})"
        )
        for result in failures:
            print(f"\n{result.label} failed:\n{result.error}", file=sys.stderr)
    return 1 if failures else 0


def _sweep_all(args: argparse.Namespace) -> int:
    """Run the full-registry sweep through one session."""
    ids = case_names()
    if args.limit is not None:
        ids = ids[: args.limit]
    variant = "optimized" if args.optimized else "baseline"
    session = _session(args)
    requests = [request_for_case(case_id, variant, arch_flag=args.arch) for case_id in ids]

    if args.output == "jsonl":
        return _emit_jsonl(session.stream(requests))

    results = session.advise_many(requests, progress=_progress_printer(sys.stderr))
    return _emit_batch_results(
        results, variant, args.arch, args.output,
        f"{args.jobs} job{'s' if args.jobs != 1 else ''}",
    )


# ----------------------------------------------------------------------
# The service subcommands: `gpa-advise serve` / `gpa-advise submit`
# ----------------------------------------------------------------------
def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpa-advise serve",
        description="Run the persistent advising daemon (see docs/SERVICE.md). "
                    "SIGTERM/SIGINT drain every admitted job, persist the "
                    "profile cache and exit 0.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="TCP port (default 8765; 0 picks a free port)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes/threads executing jobs (default 2)")
    parser.add_argument("--queue-size", type=int, default=64, metavar="N",
                        help="bounded job-queue capacity; submissions beyond it "
                             "are rejected with HTTP 429 (default 64)")
    parser.add_argument("--job-ttl", type=float, default=900.0, metavar="SECONDS",
                        help="how long finished job results stay queryable "
                             "(default 900)")
    parser.add_argument("--inline", action="store_true",
                        help="execute jobs in worker threads instead of a "
                             "process pool (serialized; for debugging/tests)")
    parser.add_argument("--ready-file", metavar="PATH",
                        help="write 'host port pid' to PATH once the socket is "
                             "bound (for scripts that must wait for readiness)")
    parser.add_argument("--verbose", action="store_true",
                        help="log one line per HTTP request to stderr")
    parser.add_argument("--arch", default="sm_70", choices=architecture_flags(),
                        help="architecture model jobs run on by default")
    parser.add_argument("--sample-period", type=int, default=8)
    parser.add_argument("--scope", default="single_wave", choices=SIMULATION_SCOPES,
                        dest="simulation_scope", metavar="SCOPE")
    parser.add_argument("--memory-model", default="flat", choices=MEMORY_MODELS,
                        dest="memory_model", metavar="MODEL")
    parser.add_argument("--simulator-backend", default=None, choices=SIMULATOR_BACKENDS,
                        dest="simulator_backend", metavar="BACKEND",
                        help="simulator core jobs run on by default "
                             "(default: vector when numpy is available)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="on-disk profile cache shared by every worker "
                             "(flock-guarded: safe to share between daemons)")
    parser.add_argument("--store", metavar="PATH", dest="store",
                        help="SQLite job store: jobs and results survive "
                             "daemon restarts and are replayed byte-identically "
                             "(default: in-memory, lost on exit)")
    parser.add_argument("--eviction-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="also evict expired results on this fixed period "
                             "(default: only when the store is accessed)")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable request coalescing (identical concurrent "
                             "submissions each run their own simulation)")
    parser.add_argument("--auth-token", action="append", default=[],
                        metavar="CLIENT=TOKEN", dest="auth_tokens",
                        help="require bearer-token auth; repeatable, one "
                             "client name + token per flag (anonymous mode "
                             "when absent)")
    parser.add_argument("--rate-limit", type=float, default=None, metavar="N",
                        help="per-client submission rate limit in requests/s "
                             "(token bucket; default: unlimited)")
    parser.add_argument("--rate-burst", type=int, default=None, metavar="N",
                        help="token-bucket burst depth (default: max(1, "
                             "int(--rate-limit)))")
    return parser


def _serve_main(argv: List[str], stop: Optional[threading.Event] = None) -> int:
    """``gpa-advise serve``: run the daemon until SIGTERM/SIGINT (or ``stop``)."""
    from repro.service import AdvisingDaemon, ServiceConfig, ServiceHTTPServer
    from repro.service.errors import ServiceError

    parser = _build_serve_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.queue_size < 1:
        parser.error("--queue-size must be at least 1")
    if args.job_ttl <= 0:
        parser.error("--job-ttl must be positive")
    if args.sample_period <= 0:
        parser.error("--sample-period must be positive")
    if args.eviction_interval is not None and args.eviction_interval <= 0:
        parser.error("--eviction-interval must be positive")
    if args.rate_limit is not None and args.rate_limit <= 0:
        parser.error("--rate-limit must be positive")
    if args.rate_burst is not None and args.rate_burst < 1:
        parser.error("--rate-burst must be at least 1")
    if args.rate_burst is not None and args.rate_limit is None:
        parser.error("--rate-burst requires --rate-limit")
    tokens = {}
    for spec in args.auth_tokens:
        client_name, sep, token = spec.partition("=")
        if not sep or not client_name or not token:
            parser.error(
                f"--auth-token expects CLIENT=TOKEN, got {spec!r}"
            )
        if token in tokens:
            parser.error(f"--auth-token: token for {tokens[token]!r} reused")
        tokens[token] = client_name

    from repro.service.auth import AuthPolicy

    auth = AuthPolicy(
        tokens=tokens or None,
        rate=args.rate_limit,
        burst=args.rate_burst,
    )

    try:
        config = ServiceConfig(
            arch_flag=args.arch,
            sample_period=args.sample_period,
            simulation_scope=args.simulation_scope,
            memory_model=args.memory_model,
            simulator_backend=args.simulator_backend,
            cache_dir=args.cache_dir,
        )
        daemon = AdvisingDaemon(
            config,
            workers=args.workers,
            queue_capacity=args.queue_size,
            job_ttl=args.job_ttl,
            use_pool=not args.inline,
            store_path=args.store,
            eviction_interval=args.eviction_interval,
            coalesce=not args.no_coalesce,
        )
        # Bind the socket *before* forking the worker pool: a taken port
        # fails with a one-line message and nothing to tear down.
        server = ServiceHTTPServer(
            (args.host, args.port), daemon, quiet=not args.verbose,
            auth=auth,
        )
    except ServiceError as exc:
        print(f"gpa-advise serve: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"gpa-advise serve: cannot listen on "
            f"{args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    try:
        daemon.start()
    except Exception as exc:
        server.server_close()
        print(f"gpa-advise serve: {exc}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    print(
        f"gpa-advise service listening on http://{host}:{port} "
        f"(workers={args.workers}, queue={args.queue_size}, arch={args.arch}, "
        f"scope={args.simulation_scope}, memory_model={args.memory_model}, "
        f"cache={args.cache_dir or 'off'}, store={args.store or 'memory'}, "
        f"auth={'on' if not auth.anonymous else 'anonymous'})",
        file=sys.stderr, flush=True,
    )
    if args.ready_file:
        import os

        Path(args.ready_file).write_text(f"{host} {port} {os.getpid()}\n")

    if stop is None:
        stop = threading.Event()
    # SIGTERM and SIGINT both trigger the graceful drain.  Handlers can only
    # be installed from the main thread; embedded callers (tests) pass their
    # own `stop` event instead.
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop.set())
    except ValueError:
        pass

    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    try:
        # Event.wait() would not return when a signal handler merely sets the
        # flag, so poll in short slices.
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        print("gpa-advise service draining...", file=sys.stderr, flush=True)
        server.shutdown()
        server.server_close()
        summary = daemon.shutdown(drain=True)
        print(
            f"gpa-advise service stopped: {summary['jobs_served']} jobs served "
            f"({summary['jobs_failed']} failed, {summary['jobs_aborted']} aborted)",
            file=sys.stderr, flush=True,
        )
    return 0


def _build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpa-advise submit",
        description="Submit advising jobs to a running gpa-advise daemon and "
                    "wait for the results (bit-identical to inline runs).",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8765",
                        help="base URL of the daemon (default http://127.0.0.1:8765)")
    parser.add_argument("--token", default=None,
                        help="bearer token for daemons started with "
                             "--auth-token (default: anonymous)")
    parser.add_argument("--healthz", action="store_true",
                        help="print the daemon's health document and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print the daemon's stats document and exit")
    parser.add_argument("--case", help="benchmark case to submit (see --list)")
    parser.add_argument("--optimized", action="store_true",
                        help="submit the hand-optimized variant instead of the baseline")
    parser.add_argument("--all", action="store_true",
                        help="submit every registry case as one atomic batch")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="with --all: only submit the first N cases")
    parser.add_argument("--arch", default="sm_70", choices=architecture_flags(),
                        help="architecture model to pin on each request (default sm_70)")
    parser.add_argument("--sample-period", type=int, default=None,
                        help="pin a PC sampling period per request "
                             "(default: the daemon's configured period)")
    parser.add_argument("--scope", default=None, choices=SIMULATION_SCOPES,
                        dest="simulation_scope", metavar="SCOPE",
                        help="pin a simulation scope per request "
                             "(default: the daemon's configured scope)")
    parser.add_argument("--memory-model", default=None, choices=MEMORY_MODELS,
                        dest="memory_model", metavar="MODEL",
                        help="pin a memory model per request "
                             "(default: the daemon's configured model)")
    parser.add_argument("--simulator-backend", default=None, choices=SIMULATOR_BACKENDS,
                        dest="simulator_backend", metavar="BACKEND",
                        help="pin a simulator core per request "
                             "(default: the daemon's configured core)")
    parser.add_argument("--top", type=int, default=5, help="number of optimizers to show")
    parser.add_argument("--output", choices=OUTPUT_FORMATS, default="text",
                        help="output format, mirroring the inline CLI")
    parser.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                        help="how long to wait for completion (default 600)")
    parser.add_argument("--poll", type=float, default=0.1, metavar="SECONDS",
                        help="job polling interval (default 0.1)")
    return parser


def _submit_main(argv: List[str]) -> int:
    """``gpa-advise submit``: drive one daemon round-trip from the shell."""
    from repro.service import ServiceClient
    from repro.service.errors import ServiceError

    parser = _build_submit_parser()
    args = parser.parse_args(argv)
    actions = sum(bool(flag) for flag in (args.healthz, args.stats, args.case, args.all))
    if actions == 0:
        parser.error("nothing to do: pass --case, --all, --healthz or --stats")
    if actions > 1:
        parser.error("--case, --all, --healthz and --stats are mutually exclusive")
    if args.limit is not None and not args.all:
        parser.error("--limit only applies to --all batches")
    if args.limit is not None and args.limit < 0:
        parser.error("--limit must be non-negative")
    if args.top <= 0:
        parser.error("--top must be positive")
    if args.sample_period is not None and args.sample_period <= 0:
        parser.error("--sample-period must be positive")
    if args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.poll <= 0:
        parser.error("--poll must be positive")
    if args.case:
        try:
            case_by_name(args.case)
        except KeyError:
            parser.error(
                f"unknown benchmark case {args.case!r}; run gpa-advise --list "
                "to see the available cases"
            )

    client = ServiceClient(args.url, token=args.token)
    variant = "optimized" if args.optimized else "baseline"

    def build_request(case_id: str) -> AdvisingRequest:
        return request_for_case(
            case_id, variant,
            arch_flag=args.arch,
            sample_period=args.sample_period,
            simulation_scope=args.simulation_scope,
            memory_model=args.memory_model,
            simulator_backend=args.simulator_backend,
        )

    try:
        if args.healthz:
            print(json.dumps(client.healthz(), indent=2))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.case:
            result = client.advise(
                build_request(args.case), timeout=args.timeout,
                poll_interval=args.poll,
            )
            if not result.ok and args.output != "jsonl":
                print(result.error, file=sys.stderr)
                return 1
            return _emit_single(result, args)
        # --all: one atomic batch, results in submission order.  An empty
        # selection (--limit 0) renders an empty sweep like the inline CLI
        # does, instead of posting a batch the daemon would reject.
        ids = case_names()
        if args.limit is not None:
            ids = ids[: args.limit]
        results = client.advise_many(
            [build_request(case_id) for case_id in ids],
            timeout=args.timeout, poll_interval=args.poll,
        ) if ids else []
        if args.output == "jsonl":
            return _emit_jsonl(results)
        return _emit_batch_results(results, variant, args.arch, args.output, "service")
    except ServiceError as exc:
        print(f"gpa-advise submit: {exc}", file=sys.stderr)
        return 1


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpa-advise lint",
        description="Static lint over kernel CFGs — dataflow analyses and "
                    "typed diagnostics, no simulation (see docs/STATIC_ANALYSIS.md)",
    )
    parser.add_argument("--list", action="store_true",
                        help="list the built-in benchmark cases")
    parser.add_argument("--case", help="benchmark case to lint (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="lint every benchmark case in the registry")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="with --all: only lint the first N cases")
    parser.add_argument("--optimized", action="store_true",
                        help="lint the case's optimized variant instead of the baseline")
    parser.add_argument("--sass", metavar="FILE",
                        help="lint a real nvdisasm/cuobjdump disassembly "
                             "listing instead of a registry case (ingested "
                             "through repro.sass; unknown opcodes degrade to "
                             "conservative diagnostics, never a crash)")
    parser.add_argument("--sass-corpus", metavar="DIR", nargs="?", const="",
                        default=None,
                        help="lint every listing in the committed SASS corpus "
                             "manifest (repro.sass.corpus); DIR overrides the "
                             "default tests/sass/corpus directory")
    parser.add_argument("--arch", choices=architecture_flags(), default=None,
                        help="retarget the binary to another architecture "
                             "(with --sass: the fallback when the listing "
                             "does not declare one)")
    parser.add_argument("--strict-arch", action="store_true",
                        help="fail instead of falling back when the binary's "
                             "architecture flag is unknown")
    parser.add_argument("--output", choices=("text", "json"), default="text",
                        help="report format (default text)")
    parser.add_argument("--output-dir", metavar="DIR", default=None,
                        help="with --all or --sass-corpus and --output json: "
                             "write one <case>.json per case into DIR (the "
                             "layout CI's lint-smoke job diffs against the "
                             "golden reports)")
    parser.add_argument("--crosscheck", action="store_true",
                        help="with --case --output text: also run the dynamic "
                             "advisor and print the static cross-check "
                             "annotations")
    return parser


def _lint_slug(case_id: str) -> str:
    """Filesystem-safe golden-report name of one case id."""
    return case_id.replace("/", "__").replace(":", "__")


def _lint_sass_main(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``--sass`` / ``--sass-corpus`` scopes of ``gpa-advise lint``.

    Real disassembly never goes through the registry: ``--sass FILE`` ingests
    one listing, ``--sass-corpus`` sweeps the committed corpus manifest and —
    with ``--output json --output-dir`` — reproduces the golden-report layout
    CI byte-diffs against.
    """
    from repro.sass.corpus import SASS_CORPUS, lint_corpus_case
    from repro.sass.lint import lint_file
    from repro.staticcheck.report import render_static_report

    if args.sass:
        try:
            report = lint_file(args.sass, default_arch=args.arch or "sm_70")
        except OSError as exc:
            print(f"gpa-advise lint: cannot read {args.sass}: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"gpa-advise lint: {args.sass}: {exc}", file=sys.stderr)
            return 1
        if args.output == "json":
            sys.stdout.write(report.to_json())
        else:
            print(render_static_report(report))
            if report.ingest:
                print(
                    f"Ingest: {report.ingest['decoded']}/{report.ingest['total']} "
                    f"instructions decoded (coverage "
                    f"{report.ingest['coverage']:.2%}, "
                    f"dialect {report.ingest['dialect']})"
                )
        return 0

    directory = args.sass_corpus or None
    try:
        reports = [
            (case, lint_corpus_case(case, directory)) for case in SASS_CORPUS
        ]
    except (OSError, ValueError) as exc:
        print(f"gpa-advise lint: {exc}", file=sys.stderr)
        return 1
    if args.output_dir is not None:
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for case, report in reports:
            (out_dir / f"{case.golden_name}.json").write_text(report.to_json())
        print(f"wrote {len(reports)} SASS lint reports to {out_dir}", file=sys.stderr)
    elif args.output == "json":
        document = {case.case_id: report.to_dict() for case, report in reports}
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for _case, report in reports:
            print(render_static_report(report))
        totals = {"info": 0, "warning": 0, "error": 0}
        for _case, report in reports:
            for severity, count in report.counts_by_severity().items():
                totals[severity] += count
        coverage = min(report.ingest["coverage"] for _case, report in reports)
        print(
            f"Linted {len(reports)} SASS listings "
            f"(worst decode coverage {coverage:.2%}): "
            + ", ".join(f"{count} {severity}" for severity, count in totals.items())
        )
    return 0


def _lint_main(argv: List[str]) -> int:
    """``gpa-advise lint``: run the static checker from the shell."""
    from repro.staticcheck.crosscheck import cross_check
    from repro.staticcheck.report import render_static_report

    parser = _build_lint_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in case_names():
            print(name)
        return 0
    scopes = sum(
        bool(flag)
        for flag in (args.case, args.all, args.sass, args.sass_corpus is not None)
    )
    if scopes > 1:
        parser.error(
            "--case, --all, --sass and --sass-corpus are mutually exclusive "
            "(pick one scope)"
        )
    if scopes == 0:
        parser.error("nothing to do: pass --case, --all, --sass, --sass-corpus or --list")
    if args.limit is not None and not args.all:
        parser.error("--limit only applies to --all sweeps")
    if args.limit is not None and args.limit < 0:
        parser.error("--limit must be non-negative")
    if args.output_dir is not None and not (
        (args.all or args.sass_corpus is not None) and args.output == "json"
    ):
        parser.error("--output-dir requires --all or --sass-corpus with --output json")
    if args.crosscheck and (not args.case or args.output != "text"):
        parser.error("--crosscheck requires --case --output text")
    if args.optimized and (args.sass or args.sass_corpus is not None):
        parser.error("--optimized only applies to registry cases")
    if args.sass or args.sass_corpus is not None:
        return _lint_sass_main(args, parser)
    if args.case:
        try:
            case_by_name(args.case)
        except KeyError:
            parser.error(
                f"unknown benchmark case {args.case!r}; run gpa-advise lint "
                "--list to see the available cases"
            )

    session = AdvisingSession()
    variant = "optimized" if args.optimized else "baseline"

    def lint_one(case_id: str):
        request = request_for_case(case_id, variant, arch_flag=args.arch)
        return session.lint(request, strict_architecture=args.strict_arch)

    try:
        if args.case:
            report = lint_one(args.case)
            if args.output == "json":
                sys.stdout.write(report.to_json())
            else:
                print(render_static_report(report))
                if args.crosscheck:
                    result = session.advise(
                        request_for_case(args.case, variant, arch_flag=args.arch)
                    )
                    if not result.ok:
                        print(result.error, file=sys.stderr)
                        return 1
                    print("Cross-check against the dynamic advisor:")
                    notes = cross_check(result.report, report)
                    for note in notes or ["(no overlapping findings)"]:
                        print(f"  {note}")
            return 0

        ids = case_names()
        if args.limit is not None:
            ids = ids[: args.limit]
        reports = [(case_id, lint_one(case_id)) for case_id in ids]
        if args.output_dir is not None:
            out_dir = Path(args.output_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            for case_id, report in reports:
                (out_dir / f"{_lint_slug(case_id)}.json").write_text(report.to_json())
            print(f"wrote {len(reports)} lint reports to {out_dir}", file=sys.stderr)
        elif args.output == "json":
            document = {case_id: report.to_dict() for case_id, report in reports}
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            for _case_id, report in reports:
                print(render_static_report(report))
            totals = {"info": 0, "warning": 0, "error": 0}
            for _case_id, report in reports:
                for severity, count in report.counts_by_severity().items():
                    totals[severity] += count
            print(
                f"Linted {len(reports)} cases: "
                + ", ".join(f"{count} {severity}" for severity, count in totals.items())
            )
        return 0
    except ArchitectureError as exc:
        print(f"gpa-advise lint: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``gpa-advise``."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve_main(list(argv[1:]))
    if argv and argv[0] == "submit":
        return _submit_main(list(argv[1:]))
    if argv and argv[0] == "lint":
        return _lint_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.json and args.output not in (None, "json"):
        parser.error("--json conflicts with --output; use --output alone")
    if args.output is None:
        args.output = "json" if args.json else "text"

    if args.all and args.case:
        parser.error("--case cannot be combined with --all (pick one scope)")
    if args.all and (args.profile or args.cubin):
        parser.error("--profile/--cubin cannot be combined with --all")
    if args.case and (args.profile or args.cubin):
        parser.error("--case cannot be combined with --profile/--cubin (pick one scope)")
    if args.profile and not args.cubin:
        parser.error("--profile requires --cubin")
    if args.limit is not None and not args.all:
        parser.error("--limit only applies to --all sweeps")
    if args.limit is not None and args.limit < 0:
        parser.error("--limit must be non-negative")
    if args.top <= 0:
        parser.error("--top must be positive")
    if args.sample_period <= 0:
        parser.error("--sample-period must be positive")
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    if args.case:
        # Fail with a clean usage error, not a captured traceback, when the
        # case label does not resolve.
        try:
            case_by_name(args.case)
        except KeyError:
            parser.error(
                f"unknown benchmark case {args.case!r}; run --list to see "
                "the available cases"
            )

    if args.list:
        for name in case_names():
            case = case_by_name(name)
            print(f"{name:55s} kernel={case.kernel:30s} optimizer={case.optimizer_name}")
        return 0

    if args.all:
        return _sweep_all(args)

    if not args.case and not args.profile:
        parser.print_help()
        return 2

    session = _session(args)
    result = session.advise(_request_for_args(args))
    if not result.ok and args.output != "jsonl":
        # Fail loudly with the captured traceback, like the pre-API CLI did.
        print(result.error, file=sys.stderr)
        return 1
    return _emit_single(result, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
