"""The static analyzer (the left half of Figure 2).

From a CUBIN the static analyzer recovers:

* control flow graphs (our nvdisasm substitute decodes instructions; super
  blocks are split into basic blocks and loop nests are recovered — the role
  Dyninst plays in the paper),
* the program structure file (function symbols with visibility, inline
  stacks, loop nests, source-line mappings),
* architectural features, fetched from the architecture flag encoded in the
  binary (instruction latencies, warp size, register limits, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.machine import ArchitectureError, GpuArchitecture, VoltaV100, get_architecture
from repro.cubin.binary import Cubin
from repro.cubin.disasm import DisassembledFunction, disassemble_cubin
from repro.structure.program import ProgramStructure, build_program_structure


@dataclass
class StaticAnalysis:
    """Everything the static analyzer recovers from one binary."""

    cubin: Cubin
    structure: ProgramStructure
    architecture: GpuArchitecture
    disassembly: Dict[str, DisassembledFunction]

    def listing(self, function_name: str) -> str:
        """The nvdisasm-style listing of one function."""
        return self.disassembly[function_name].listing


class StaticAnalyzer:
    """Analyzes CUBINs offline, before any profile is consulted."""

    def __init__(self, default_architecture: Optional[GpuArchitecture] = None):
        self.default_architecture = default_architecture or VoltaV100

    def analyze(self, cubin: Cubin, from_bytes: bool = False) -> StaticAnalysis:
        """Recover structure, architecture features and disassembly."""
        try:
            architecture = get_architecture(cubin.arch_flag)
        except ArchitectureError:
            architecture = self.default_architecture
        structure = build_program_structure(cubin)
        disassembly = disassemble_cubin(cubin, from_bytes=from_bytes)
        return StaticAnalysis(
            cubin=cubin,
            structure=structure,
            architecture=architecture,
            disassembly=disassembly,
        )
