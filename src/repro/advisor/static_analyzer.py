"""The static analyzer (the left half of Figure 2).

From a CUBIN the static analyzer recovers:

* control flow graphs (our nvdisasm substitute decodes instructions; super
  blocks are split into basic blocks and loop nests are recovered — the role
  Dyninst plays in the paper),
* the program structure file (function symbols with visibility, inline
  stacks, loop nests, source-line mappings),
* architectural features, fetched from the architecture flag encoded in the
  binary (instruction latencies, warp size, register limits, ...).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.machine import ArchitectureError, GpuArchitecture, VoltaV100, get_architecture
from repro.cubin.binary import Cubin
from repro.cubin.disasm import DisassembledFunction, disassemble_cubin
from repro.structure.program import ProgramStructure, build_program_structure


@dataclass
class StaticAnalysis:
    """Everything the static analyzer recovers from one binary."""

    cubin: Cubin
    structure: ProgramStructure
    architecture: GpuArchitecture
    disassembly: Dict[str, DisassembledFunction]
    #: The unknown architecture flag :attr:`architecture` was substituted
    #: for, or ``None`` when the binary's flag resolved cleanly.
    architecture_fallback: Optional[str] = None

    def listing(self, function_name: str) -> str:
        """The nvdisasm-style listing of one function."""
        return self.disassembly[function_name].listing


class StaticAnalyzer:
    """Analyzes CUBINs offline, before any profile is consulted.

    A binary whose architecture flag is unknown falls back to
    ``default_architecture`` — the fallback is recorded on the analysis and
    warned about, because latency figures from the wrong machine model are
    quietly misleading.  ``strict=True`` turns the fallback into the
    underlying :class:`~repro.arch.machine.ArchitectureError` instead.
    """

    def __init__(
        self,
        default_architecture: Optional[GpuArchitecture] = None,
        strict: bool = False,
    ):
        self.default_architecture = default_architecture or VoltaV100
        self.strict = strict

    def analyze(self, cubin: Cubin, from_bytes: bool = False) -> StaticAnalysis:
        """Recover structure, architecture features and disassembly."""
        architecture_fallback: Optional[str] = None
        try:
            architecture = get_architecture(cubin.arch_flag)
        except ArchitectureError:
            if self.strict:
                raise
            architecture = self.default_architecture
            architecture_fallback = cubin.arch_flag
            warnings.warn(
                f"unknown architecture flag {cubin.arch_flag!r}; analyzing "
                f"against {architecture.name} — latency and occupancy figures "
                "may not match the real target",
                stacklevel=2,
            )
        structure = build_program_structure(cubin)
        disassembly = disassemble_cubin(cubin, from_bytes=from_bytes)
        return StaticAnalysis(
            cubin=cubin,
            structure=structure,
            architecture=architecture,
            disassembly=disassembly,
            architecture_fallback=architecture_fallback,
        )
