"""The GPA facade (a thin adapter over :class:`~repro.api.session.AdvisingSession`).

``GPA`` is the paper-era entry point — "GPA is a command line tool that
automates profiling and analysis stages".  Since the service-layer API
landed it is a compatibility shim: construction builds an
:class:`~repro.api.session.AdvisingSession` (exposed as ``GPA.session``)
and every method delegates to it.  New code should hold a session and
speak :class:`~repro.api.request.AdvisingRequest` /
:class:`~repro.api.result.AdvisingResult`; see ``docs/MIGRATION.md``.

* :meth:`GPA.advise` — profile a kernel launch on the simulator and analyze
  the resulting profile in one call (deprecated: build a binary-source
  request and call ``session.advise``);
* :meth:`GPA.analyze` — analyze an existing profile + binary, for offline
  analysis of dumped profiles.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional

from repro.advisor.report import AdviceReport, render_report
from repro.advisor.static_analyzer import StaticAnalysis, StaticAnalyzer
from repro.arch.machine import GpuArchitecture
from repro.cubin.binary import Cubin
from repro.optimizers.base import Optimizer
from repro.sampling.profiler import ProfiledKernel
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import ProgramStructure


class GPA:
    """GPU Performance Advisor."""

    def __init__(
        self,
        architecture: Optional[GpuArchitecture] = None,
        optimizers: Optional[Iterable[Optimizer]] = None,
        sample_period: int = 32,
        cache=None,
    ):
        # Imported lazily: the session module imports the analyzer pieces
        # from this package, so a module-level import would be circular.
        from repro.api.session import AdvisingSession

        self.session = AdvisingSession(
            architecture=architecture,
            optimizers=optimizers,
            sample_period=sample_period,
            cache=cache,
        )
        self.architecture = self.session.architecture
        self.profiler = self.session.profiler
        self.profile_stage = self.session.profile_stage
        self.analyze_stage = self.session.analyze_stage
        self.static_analyzer = StaticAnalyzer(self.architecture)
        self.dynamic_analyzer = self.analyze_stage.analyzer

    @property
    def cache(self):
        """The profile cache the profiling stage consults (or ``None``)."""
        return self.session.cache

    # ------------------------------------------------------------------
    def profile(
        self,
        cubin: Cubin,
        kernel_name: str,
        config: LaunchConfig,
        workload: Optional[WorkloadSpec] = None,
    ) -> ProfiledKernel:
        """Run the profiling stage only."""
        from repro.pipeline.stages import ProfileRequest

        return self.session.profile_stage.run(
            ProfileRequest(cubin=cubin, kernel=kernel_name, config=config, workload=workload)
        )

    def analyze(self, profile: KernelProfile, structure: ProgramStructure) -> AdviceReport:
        """Run the dynamic analyzer on an existing profile."""
        return self.session.analyze(profile, structure)

    def analyze_binary(self, cubin: Cubin) -> StaticAnalysis:
        """Run the static analyzer only."""
        return self.static_analyzer.analyze(cubin)

    def advise(
        self,
        cubin: Cubin,
        kernel_name: str,
        config: LaunchConfig,
        workload: Optional[WorkloadSpec] = None,
    ) -> AdviceReport:
        """Profile a kernel launch and produce its ranked advice report.

        .. deprecated:: 1.1
           Build an :class:`~repro.api.request.AdvisingRequest` and call
           :meth:`AdvisingSession.advise <repro.api.session.AdvisingSession.advise>`.
        """
        warnings.warn(
            "GPA.advise is deprecated; build an AdvisingRequest and call "
            "AdvisingSession.advise (see docs/MIGRATION.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.request import AdvisingRequest

        request = AdvisingRequest(
            source="binary", cubin=cubin, kernel=kernel_name,
            config=config, workload=workload,
        )
        # Delegate without error capture so callers keep seeing the original
        # exception types this method always raised.
        profiled = self.session.profile(request)
        return self.session.advise_profiled(profiled)

    def advise_profiled(self, profiled: ProfiledKernel) -> AdviceReport:
        """Analyze an already-profiled kernel launch."""
        return self.session.advise_profiled(profiled)

    # ------------------------------------------------------------------
    @staticmethod
    def render(report: AdviceReport, top: int = 5) -> str:
        """Render a report as ASCII text (Figure 8 format)."""
        return render_report(report, top=top)
