"""The GPA facade.

``GPA`` combines the profiler (PC sampling), the static analyzer and the
dynamic analyzer behind two entry points:

* :meth:`GPA.advise` — profile a kernel launch on the simulator and analyze
  the resulting profile in one call (the command-line workflow of the paper:
  "GPA is a command line tool that automates profiling and analysis stages");
* :meth:`GPA.analyze` — analyze an existing profile + binary, for offline
  analysis of dumped profiles.

Internally both entry points delegate to the staged pipeline
(:mod:`repro.pipeline.stages`): ``advise`` is ``ProfileStage`` →
``AnalyzeStage``, and passing ``cache`` (a directory path or a
:class:`~repro.pipeline.cache.ProfileCache`) lets repeated launches replay
their profiles from disk instead of re-simulating.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.advisor.report import AdviceReport, render_report
from repro.advisor.static_analyzer import StaticAnalysis, StaticAnalyzer
from repro.arch.machine import GpuArchitecture, VoltaV100
from repro.cubin.binary import Cubin
from repro.optimizers.base import Optimizer
from repro.sampling.profiler import ProfiledKernel, Profiler
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import ProgramStructure


class GPA:
    """GPU Performance Advisor."""

    def __init__(
        self,
        architecture: Optional[GpuArchitecture] = None,
        optimizers: Optional[Iterable[Optimizer]] = None,
        sample_period: int = 32,
        cache=None,
    ):
        # Imported lazily: the stage modules import the analyzer pieces from
        # this package, so a module-level import would be circular.
        from repro.pipeline.stages import AnalyzeStage, ProfileStage

        self.architecture = architecture or VoltaV100
        self.profiler = Profiler(self.architecture, sample_period=sample_period)
        self.profile_stage = ProfileStage(profiler=self.profiler, cache=cache)
        self.analyze_stage = AnalyzeStage(self.architecture, optimizers)
        self.static_analyzer = StaticAnalyzer(self.architecture)
        self.dynamic_analyzer = self.analyze_stage.analyzer

    @property
    def cache(self):
        """The profile cache the profiling stage consults (or ``None``)."""
        return self.profile_stage.cache

    # ------------------------------------------------------------------
    def profile(
        self,
        cubin: Cubin,
        kernel_name: str,
        config: LaunchConfig,
        workload: Optional[WorkloadSpec] = None,
    ) -> ProfiledKernel:
        """Run the profiling stage only."""
        from repro.pipeline.stages import ProfileRequest

        return self.profile_stage.run(
            ProfileRequest(cubin=cubin, kernel=kernel_name, config=config, workload=workload)
        )

    def analyze(self, profile: KernelProfile, structure: ProgramStructure) -> AdviceReport:
        """Run the dynamic analyzer on an existing profile."""
        from repro.pipeline.stages import AnalyzeRequest

        return self.analyze_stage.run(AnalyzeRequest(profile=profile, structure=structure))

    def analyze_binary(self, cubin: Cubin) -> StaticAnalysis:
        """Run the static analyzer only."""
        return self.static_analyzer.analyze(cubin)

    def advise(
        self,
        cubin: Cubin,
        kernel_name: str,
        config: LaunchConfig,
        workload: Optional[WorkloadSpec] = None,
    ) -> AdviceReport:
        """Profile a kernel launch and produce its ranked advice report."""
        profiled = self.profile(cubin, kernel_name, config, workload)
        return self.analyze(profiled.profile, profiled.structure)

    def advise_profiled(self, profiled: ProfiledKernel) -> AdviceReport:
        """Analyze an already-profiled kernel launch."""
        return self.analyze(profiled.profile, profiled.structure)

    # ------------------------------------------------------------------
    @staticmethod
    def render(report: AdviceReport, top: int = 5) -> str:
        """Render a report as ASCII text (Figure 8 format)."""
        return render_report(report, top=top)
