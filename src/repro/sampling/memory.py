"""The per-SM memory-hierarchy model behind ``memory_model="hierarchy"``.

The flat memory model services every global access with its per-opcode
latency and a single outstanding-transaction budget — MEMORY_DEPENDENCY and
MEMORY_THROTTLE samples carry no locality or coalescing signal.  This module
models the path a warp's memory request actually takes, the way detailed GPU
pipeline simulators structure their memory stages:

1. **Coalescing** — the 32 per-thread addresses of a warp access are merged
   into unique 32-byte *sector* transactions.  A unit-stride float access
   touches 4 sectors (one 128-byte cache line); a 128-byte stride touches 32.
2. **L1** — a per-SM set-associative sector cache with LRU replacement.
   Hits complete at the L1 hit latency; misses allocate a miss-status
   holding register (MSHR) and fall through to L2.  When every MSHR is in
   flight the memory pipeline stalls the issuing warp with MEMORY_THROTTLE —
   backpressure from real resource exhaustion, not a global counter.
3. **L2 slice** — this SM's slice of the shared L2 (capacity = total L2 /
   SM count), also a set-associative sector cache.
4. **DRAM** — misses pay the DRAM latency *and* serialize on a per-cycle
   byte bandwidth, so saturating workloads see queueing delay grow with the
   transaction rate.

The model is deterministic (no randomness; state depends only on the access
sequence) and observation-neutral: :meth:`MemoryHierarchy.backpressure` has
a read-only probe mode, and :meth:`MemoryHierarchy.access` is only invoked
when an instruction actually issues — so PC sampling can never perturb the
simulated timing, the same property the rest of the simulator guarantees.

:class:`MemoryStatistics` is the aggregate the profiler surfaces through
:class:`~repro.sampling.sample.LaunchStatistics`: warp-level requests,
sector transactions, per-level hit rates and DRAM traffic — the signal the
Memory Coalescing optimizer consumes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.machine import MemoryHierarchyParameters
from repro.isa.registers import MemorySpace

#: The two memory models: "flat" (per-opcode latency + global transaction
#: budget, the historical behaviour) and "hierarchy" (this module).
MEMORY_MODELS = ("flat", "hierarchy")

#: Memory spaces serviced by the hierarchy (and throttled by the flat
#: model's outstanding-transaction budget).
THROTTLED_SPACES = (
    MemorySpace.GLOBAL, MemorySpace.GENERIC, MemorySpace.LOCAL, MemorySpace.TEXTURE,
)

#: Bytes accessed per thread per memory instruction (a 32-bit word; wider
#: vector loads are modelled as larger strides by the workload).
ACCESS_BYTES = 4


def check_memory_model(model: str) -> str:
    """``model`` if valid, else a uniform ``ValueError``."""
    if model not in MEMORY_MODELS:
        raise ValueError(
            f"unknown memory model {model!r}; expected one of {MEMORY_MODELS}"
        )
    return model


@dataclass
class MemoryStatistics:
    """Aggregate memory-hierarchy counters of one simulation.

    All counters are sector-granular except ``requests`` (warp-level memory
    instructions).  ``l2_*`` and ``dram_*`` only count traffic that missed
    the level above, so ``l1_hits + l1_misses == sectors`` and
    ``l2_hits + l2_misses == l1_misses``.

    Scope caveat: like the profile's stall/issue sample counts, the
    absolute counters cover what was *simulated* — one representative wave
    on one SM under ``simulation_scope="single_wave"`` (whose
    ``kernel_cycles`` is an extrapolation), every SM of every wave under
    ``"whole_gpu"``.  Derived *rates* (:attr:`l1_hit_rate`,
    :attr:`l2_hit_rate`, :attr:`transactions_per_request`) are comparable
    across scopes; to estimate whole-kernel byte totals from a single-wave
    profile, scale by ``statistics.waves``.
    """

    #: Warp-level memory requests serviced by the hierarchy.
    requests: int = 0
    #: 32-byte sector transactions after coalescing.
    sectors: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    #: Bytes moved over the DRAM channel (sector size is per-architecture,
    #: so the byte count is recorded rather than derived).
    dram_bytes: int = 0

    # ------------------------------------------------------------------
    @property
    def dram_sectors(self) -> int:
        """Sectors serviced by DRAM: exactly the sectors that missed L2."""
        return self.l2_misses

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    @property
    def transactions_per_request(self) -> float:
        """Average sectors per warp-level request (the coalescing figure)."""
        return self.sectors / self.requests if self.requests else 0.0

    # ------------------------------------------------------------------
    def merge(self, other: "MemoryStatistics") -> None:
        """Accumulate another simulation's counters (multi-SM merges)."""
        self.requests += other.requests
        self.sectors += other.sectors
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.dram_bytes += other.dram_bytes

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "sectors": self.sectors,
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "dram_bytes": self.dram_bytes,
            # Derived counters/rates are included for human consumers
            # (reports, CI smoke checks) and ignored by from_dict.
            "dram_sectors": self.dram_sectors,
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "transactions_per_request": self.transactions_per_request,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MemoryStatistics":
        return cls(
            requests=payload.get("requests", 0),
            sectors=payload.get("sectors", 0),
            l1_hits=payload.get("l1_hits", 0),
            l1_misses=payload.get("l1_misses", 0),
            l2_hits=payload.get("l2_hits", 0),
            l2_misses=payload.get("l2_misses", 0),
            dram_bytes=payload.get("dram_bytes", 0),
        )


class SectorCache:
    """A set-associative cache of 32-byte sectors with LRU replacement.

    Tags are sector addresses; there is no data (the simulator only needs
    hit/miss timing).  Misses allocate immediately (allocate-on-miss), which
    models the MSHR merging a second access to an in-flight sector.
    """

    def __init__(self, capacity_bytes: int, ways: int, sector_bytes: int):
        if capacity_bytes < ways * sector_bytes:
            raise ValueError("cache capacity must hold at least one full set")
        self.sector_bytes = sector_bytes
        self.ways = ways
        self.num_sets = max(1, capacity_bytes // (ways * sector_bytes))
        #: set index -> sector tags in LRU order (last = most recent).
        self._sets: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0

    def access(self, sector_address: int) -> bool:
        """Look up (and allocate) one sector; returns whether it hit."""
        index = (sector_address // self.sector_bytes) % self.num_sets
        entries = self._sets.get(index)
        if entries is None:
            entries = []
            self._sets[index] = entries
        if sector_address in entries:
            entries.remove(sector_address)
            entries.append(sector_address)
            self.hits += 1
            return True
        entries.append(sector_address)
        if len(entries) > self.ways:
            entries.pop(0)
        self.misses += 1
        return False


class MemoryHierarchy:
    """One SM's view of the memory system: L1, an L2 slice, and DRAM."""

    def __init__(self, parameters: MemoryHierarchyParameters, warp_size: int = 32):
        self.parameters = parameters
        self.warp_size = warp_size
        self.l1 = SectorCache(
            parameters.l1_bytes, parameters.l1_ways, parameters.sector_bytes
        )
        self.l2 = SectorCache(
            parameters.l2_slice_bytes, parameters.l2_ways, parameters.sector_bytes
        )
        self.statistics = MemoryStatistics()
        #: Completion cycles of in-flight L1 sector misses (the MSHRs).
        self._mshrs: List[int] = []
        #: Cycle until which the DRAM channel is busy transferring.
        self._dram_busy_until = 0
        #: Rolling cursor for accesses without address information.
        self._fallback_cursor = 0

    # ------------------------------------------------------------------
    def backpressure(self, now: int, commit: bool = True) -> Optional[int]:
        """The cycle to recheck at if the pipeline cannot accept a request.

        Returns ``None`` when a request can issue.  ``commit=True`` retires
        completed MSHRs as a side effect; ``commit=False`` is the PC
        sampler's observation mode — a pure count, so sampling never
        perturbs MSHR state.
        """
        limit = self.parameters.l1_mshr_entries
        if commit:
            while self._mshrs and self._mshrs[0] <= now:
                heapq.heappop(self._mshrs)
            if len(self._mshrs) >= limit:
                return self._mshrs[0]
            return None
        in_flight = sum(1 for completion in self._mshrs if completion > now)
        if in_flight >= limit:
            return now + 1
        return None

    # ------------------------------------------------------------------
    def fallback_sectors(self, transactions: int) -> List[int]:
        """Sectors of an access without address information.

        Hand-built traces carry no base address; their accesses fall back to
        ``transactions`` consecutive sectors at a rolling cursor, so the
        transaction *count* still matches the flat model.  The cursor is
        hierarchy state: callers must consume fallback sectors in issue
        order (both cores do — sectors are resolved when the op issues).
        """
        sector = self.parameters.sector_bytes
        count = max(1, transactions or 1)
        base = self._fallback_cursor
        self._fallback_cursor += count * sector
        return [base + i * sector for i in range(count)]

    # ------------------------------------------------------------------
    def sector_addresses(self, op) -> List[int]:
        """The unique 32-byte sectors touched by one warp-level access.

        Coalescing proper: thread ``t`` accesses ``address + t * stride``
        for :data:`ACCESS_BYTES` bytes; the footprint collapses into unique
        sectors (first-seen order, which for positive strides equals sorted
        order — the vector core's pack-time precompute relies on this).
        """
        sector = self.parameters.sector_bytes
        stride = getattr(op, "stride_bytes", 0)
        if stride <= 0:
            return self.fallback_sectors(getattr(op, "transactions", 1))
        base = getattr(op, "address", 0)
        sectors = []
        seen = set()
        for thread in range(self.warp_size):
            first = (base + thread * stride) // sector
            last = (base + thread * stride + ACCESS_BYTES - 1) // sector
            for index in range(first, last + 1):
                if index not in seen:
                    seen.add(index)
                    sectors.append(index * sector)
        return sectors

    # ------------------------------------------------------------------
    def access(self, op, now: int) -> int:
        """Service one warp-level access; returns its completion cycle."""
        return self.access_sectors(self.sector_addresses(op), now)

    # ------------------------------------------------------------------
    def access_sectors(self, sectors: List[int], now: int) -> int:
        """Service one warp-level access given its coalesced sectors.

        Sectors issue into the L1 pipeline at ``l1_sectors_per_cycle``; each
        is serviced by the first level that holds it; the request completes
        when its slowest sector does.
        """
        parameters = self.parameters
        stats = self.statistics
        stats.requests += 1
        stats.sectors += len(sectors)

        completion = now + 1
        for position, sector_address in enumerate(sectors):
            issued = now + position // parameters.l1_sectors_per_cycle
            if self.l1.access(sector_address):
                stats.l1_hits += 1
                done = issued + parameters.l1_hit_latency
            else:
                stats.l1_misses += 1
                if self.l2.access(sector_address):
                    stats.l2_hits += 1
                    done = issued + parameters.l2_hit_latency
                else:
                    stats.l2_misses += 1
                    stats.dram_bytes += parameters.sector_bytes
                    # DRAM serializes transfers on the per-SM bandwidth
                    # share; queueing delay grows when requests outpace it.
                    transfer = max(
                        1, parameters.sector_bytes // parameters.dram_bytes_per_cycle
                    )
                    start = max(issued, self._dram_busy_until)
                    self._dram_busy_until = start + transfer
                    done = start + transfer + parameters.dram_latency
                heapq.heappush(self._mshrs, done)
            if done > completion:
                completion = done
        return completion
