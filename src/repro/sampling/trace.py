"""Per-warp dynamic trace generation.

``generate_warp_trace`` walks one warp's execution path through a function's
control flow graph using the :class:`~repro.sampling.workload.WorkloadSpec`:
loops iterate for their configured trip counts, data-dependent forward
branches are decided by a deterministic per-warp random stream, and ``CAL``
instructions descend into device functions.  Each executed instruction
becomes a :class:`TraceOp` annotated with its dynamic memory latency, the
number of memory transactions it issues, and any instruction-fetch stall
charged to it (present when the executed code footprint exceeds the
instruction cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.machine import GpuArchitecture
from repro.isa.instruction import Instruction
from repro.isa.registers import MemorySpace
from repro.sampling.memory import THROTTLED_SPACES
from repro.sampling.stall_reasons import StallReason
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import FunctionStructure, ProgramStructure


@dataclass(slots=True)
class TraceOp:
    """One dynamically executed instruction of one warp."""

    #: Function the instruction belongs to (kernel or device function).
    function: str
    instruction: Instruction
    #: Completion latency for variable-latency instructions (cycles).
    latency: int = 0
    #: Memory transactions issued (0 for non-memory instructions).
    transactions: int = 0
    #: Instruction-fetch stall charged before this op issues (cycles).
    fetch_stall: int = 0
    #: Base byte address of the warp's access (hierarchy memory model);
    #: thread ``t`` accesses ``address + t * stride_bytes``.
    address: int = 0
    #: Per-thread stride in bytes; 0 marks an op without address
    #: information (non-memory, or a hand-built trace).
    stride_bytes: int = 0

    @property
    def offset(self) -> int:
        return self.instruction.offset

    @property
    def opcode(self) -> str:
        return self.instruction.opcode


class TraceError(RuntimeError):
    """Raised when a trace cannot be generated (e.g. unresolved call)."""


# ----------------------------------------------------------------------
# Packed static instruction metadata
# ----------------------------------------------------------------------
class OpMeta:
    """Packed static metadata of one :class:`~repro.isa.instruction.Instruction`.

    Both simulator cores consult the same per-instruction facts on every
    dynamic execution of an op — the control code's barrier fields, the
    def/use register sets, whether the op is throttled memory, the stall
    reason a dependent warp reports while waiting on it.  Deriving them
    through the instruction's ``cached_property`` chain costs an attribute
    dispatch per access per dynamic op; an :class:`OpMeta` resolves them
    once per *static* instruction (memoized by object identity, since
    instructions are immutable) into plain slots the hot loops read
    directly.

    ``wait_mask`` preserves the iteration order of the control code's
    frozenset: the cores break latest-barrier ties by scan order, so the
    packed order must match what iterating the frozenset produced.
    """

    __slots__ = (
        "opcode", "offset", "wait_mask", "write_barrier", "read_barrier",
        "stall_cycles", "is_bar", "is_memory", "is_throttled_memory",
        "used_regs", "defined_regs", "is_variable_latency", "barrier_reason",
    )

    def __init__(self, instruction: Instruction):
        control = instruction.control
        info = instruction.info
        self.opcode = instruction.opcode
        self.offset = instruction.offset
        self.wait_mask = tuple(control.wait_mask)
        self.write_barrier = control.write_barrier
        self.read_barrier = control.read_barrier
        self.stall_cycles = control.stall_cycles
        self.is_bar = info.is_synchronization and instruction.opcode == "BAR"
        self.is_memory = info.is_memory
        self.is_throttled_memory = (
            info.is_memory and instruction.memory_space in THROTTLED_SPACES
        )
        self.used_regs = tuple(reg.index for reg in instruction.used_registers)
        self.defined_regs = tuple(reg.index for reg in instruction.defined_registers)
        self.is_variable_latency = info.is_variable_latency
        self.barrier_reason = self._classify_barrier(instruction)

    @staticmethod
    def _classify_barrier(instruction: Instruction) -> StallReason:
        """Stall reason of a warp waiting on a barrier this op holds."""
        space = instruction.memory_space
        if space in (MemorySpace.GLOBAL, MemorySpace.GENERIC, MemorySpace.LOCAL,
                     MemorySpace.CONSTANT):
            if instruction.is_load:
                return StallReason.MEMORY_DEPENDENCY
            # Stores hold a read barrier: a later overwrite waits -> WAR hazard.
            return StallReason.EXECUTION_DEPENDENCY
        if space is MemorySpace.TEXTURE:
            return StallReason.TEXTURE
        return StallReason.EXECUTION_DEPENDENCY


#: id(instruction) -> (instruction, OpMeta).  The instruction is pinned in
#: the entry so a hit can verify identity (a recycled ``id`` after garbage
#: collection must never alias another instruction's metadata).
_META_CACHE: Dict[int, Tuple[Instruction, OpMeta]] = {}
_META_CACHE_LIMIT = 1 << 20

#: (id(architecture), opcode) -> (architecture, latency); identity-pinned
#: like :data:`_META_CACHE`.
_LATENCY_CACHE: Dict[Tuple[int, str], Tuple[object, int]] = {}
_LATENCY_CACHE_LIMIT = 1 << 16


def instruction_meta(instruction: Instruction) -> OpMeta:
    """The packed metadata of ``instruction`` (memoized by identity)."""
    key = id(instruction)
    entry = _META_CACHE.get(key)
    if entry is not None and entry[0] is instruction:
        return entry[1]
    meta = OpMeta(instruction)
    if len(_META_CACHE) >= _META_CACHE_LIMIT:
        _META_CACHE.clear()
    _META_CACHE[key] = (instruction, meta)
    return meta


def cached_latency(architecture: GpuArchitecture, opcode: str) -> int:
    """``architecture.latency(opcode)`` memoized per architecture object."""
    key = (id(architecture), opcode)
    entry = _LATENCY_CACHE.get(key)
    if entry is not None and entry[0] is architecture:
        return entry[1]
    value = architecture.latency(opcode)
    if len(_LATENCY_CACHE) >= _LATENCY_CACHE_LIMIT:
        _LATENCY_CACHE.clear()
    _LATENCY_CACHE[key] = (architecture, value)
    return value


#: Latency scale classes of :func:`_dynamic_latency` (packed per block).
_SCALE_NONE, _SCALE_MEMORY, _SCALE_CONSTANT, _SCALE_SHARED = range(4)

#: Memory spaces that scale with :attr:`WorkloadSpec.memory_latency_scale`.
_MEMORY_SCALED_SPACES = (
    MemorySpace.GLOBAL, MemorySpace.GENERIC, MemorySpace.LOCAL, MemorySpace.TEXTURE,
)


def _dynamic_latency(
    instruction: Instruction,
    architecture: GpuArchitecture,
    workload: WorkloadSpec,
    rng,
    transactions: int,
) -> int:
    """Completion latency of a variable-latency instruction for this execution."""
    base = cached_latency(architecture, instruction.opcode)
    space = instruction.memory_space
    jitter = rng.uniform(0.85, 1.25)
    scale = 1.0
    if space in _MEMORY_SCALED_SPACES:
        scale = workload.memory_latency_scale
        if transactions > 1:
            # Uncoalesced accesses serialize transactions at the memory pipe.
            scale *= 1.0 + 0.15 * (transactions - 1)
    elif space is MemorySpace.CONSTANT:
        scale = workload.constant_latency_scale
    elif space is MemorySpace.SHARED:
        scale = workload.shared_latency_scale
    return max(1, int(base * scale * jitter))


def _scale_kind(space: Optional[MemorySpace]) -> int:
    if space in _MEMORY_SCALED_SPACES:
        return _SCALE_MEMORY
    if space is MemorySpace.CONSTANT:
        return _SCALE_CONSTANT
    if space is MemorySpace.SHARED:
        return _SCALE_SHARED
    return _SCALE_NONE


#: id(block) -> (block, records): per-instruction static tuples the walk
#: consumes.  Identity-pinned like :data:`_META_CACHE`; blocks live as long
#: as the program structure they belong to, so the memo amortizes the
#: per-instruction attribute dispatch across every warp of a launch.
_BLOCK_CACHE: Dict[int, Tuple[object, list]] = {}
_BLOCK_CACHE_LIMIT = 1 << 18


def _block_records(block) -> list:
    """Packed per-instruction walk records of one basic block.

    One record per instruction:
    ``(instruction, needs_dynamic, is_memory, throttled, line, is_call,
    is_exit, scale_kind, opcode)``.
    """
    key = id(block)
    entry = _BLOCK_CACHE.get(key)
    if entry is not None and entry[0] is block:
        return entry[1]
    records = []
    for instruction in block.instructions:
        is_memory = instruction.is_memory
        is_variable = instruction.info.is_variable_latency
        records.append((
            instruction,
            is_memory or is_variable,
            is_memory,
            is_memory and instruction.memory_space in THROTTLED_SPACES,
            instruction.line,
            instruction.is_call,
            instruction.is_exit,
            _scale_kind(instruction.memory_space),
            instruction.opcode,
        ))
    if len(_BLOCK_CACHE) >= _BLOCK_CACHE_LIMIT:
        _BLOCK_CACHE.clear()
    _BLOCK_CACHE[key] = (block, records)
    return records


def generate_warp_trace(
    structure: ProgramStructure,
    kernel_name: str,
    workload: WorkloadSpec,
    architecture: GpuArchitecture,
    warp_id: int,
    num_warps: int,
) -> List[TraceOp]:
    """Generate the dynamic instruction trace of one warp."""
    rng = workload.rng_for_warp(warp_id)
    uniform = rng.uniform
    ops: List[TraceOp] = []
    append_op = ops.append
    executed_functions: Set[str] = set()
    sector_bytes = architecture.memory.sector_bytes
    warp_size = architecture.warp_size
    max_trace_ops = workload.max_trace_ops
    memory_scale = workload.memory_latency_scale
    #: scale_kind -> base latency scale (memory transactions add on top).
    kind_scales = (
        1.0, memory_scale, workload.constant_latency_scale,
        workload.shared_latency_scale,
    )
    #: Per-call memos: line -> transactions / stride, and stride -> the
    #: address-generation constants of :meth:`WorkloadSpec.address_for`
    #: (request bytes, working set, partition, this warp's base).
    line_transactions: Dict[Optional[int], int] = {}
    line_stride: Dict[Optional[int], int] = {}
    stride_layout: Dict[int, Tuple[int, int, int, int]] = {}
    #: Per-warp count of hierarchy-visible memory accesses, used to walk
    #: the warp through its working-set partition deterministically.
    memory_accesses = 0

    def walk(function_name: str, depth: int) -> None:
        nonlocal memory_accesses
        if depth > 8:
            raise TraceError(f"call depth limit exceeded while tracing {kernel_name}")
        function_structure = structure.function(function_name)
        executed_functions.add(function_name)
        cfg = function_structure.cfg
        block = cfg.entry
        back_edge_taken: Dict[int, int] = {}

        while True:
            if len(ops) >= max_trace_ops:
                return
            for record in _block_records(block):
                if len(ops) >= max_trace_ops:
                    return
                (instruction, needs_dynamic, is_memory, throttled, line,
                 is_call, is_exit, scale_kind, opcode) = record
                transactions = 0
                latency = 0
                address = 0
                stride = 0
                if needs_dynamic:
                    if is_memory:
                        transactions = line_transactions.get(line)
                        if transactions is None:
                            transactions = workload.transactions(line)
                            line_transactions[line] = transactions
                        if throttled:
                            # Address generation is a pure function of the
                            # access count — it consumes no randomness, so
                            # the flat model's traces stay bit-identical.
                            stride = line_stride.get(line)
                            if stride is None:
                                stride = workload.access_stride(
                                    line, sector_bytes, warp_size
                                )
                                line_stride[line] = stride
                            layout = stride_layout.get(stride)
                            if layout is None:
                                request_bytes = max(1, warp_size * stride)
                                working_set = max(
                                    request_bytes, workload.working_set_bytes
                                )
                                partition = max(
                                    request_bytes, working_set // max(1, num_warps)
                                )
                                layout = (
                                    request_bytes, working_set, partition,
                                    (warp_id * partition) % working_set,
                                )
                                stride_layout[stride] = layout
                            request_bytes, working_set, partition, base = layout
                            address = (
                                base + (memory_accesses * request_bytes) % partition
                            ) % working_set
                            memory_accesses += 1
                    # Inline of :func:`_dynamic_latency` over the packed
                    # record (identical arithmetic, identical rng draws).
                    jitter = uniform(0.85, 1.25)
                    scale = kind_scales[scale_kind]
                    if scale_kind == _SCALE_MEMORY and transactions > 1:
                        scale *= 1.0 + 0.15 * (transactions - 1)
                    base_latency = cached_latency(architecture, opcode)
                    latency = max(1, int(base_latency * scale * jitter))
                append_op(
                    TraceOp(
                        function=function_name,
                        instruction=instruction,
                        latency=latency,
                        transactions=transactions,
                        address=address,
                        stride_bytes=stride,
                    )
                )
                if is_call:
                    callee = workload.call_target(line)
                    if callee is not None and callee in structure.functions:
                        walk(callee, depth + 1)
                if is_exit:
                    return

            terminator = block.terminator
            successors = cfg.successors.get(block.index, [])
            if terminator is None or not successors:
                return

            if terminator.is_branch and terminator.target is not None:
                target_block = None
                try:
                    target_block = cfg.block_containing(terminator.target)
                except KeyError:
                    target_block = None

                is_back_edge = terminator.target <= terminator.offset
                if is_back_edge and target_block is not None:
                    header_instruction = cfg.instruction_at(terminator.target)
                    trips = workload.trip_count(header_instruction.line, warp_id, num_warps)
                    taken = back_edge_taken.get(terminator.offset, 0)
                    if taken + 1 < trips:
                        back_edge_taken[terminator.offset] = taken + 1
                        block = target_block
                        continue
                    back_edge_taken[terminator.offset] = 0
                    fall_through = [s for s in successors if s != target_block.index]
                    if fall_through:
                        block = cfg.blocks[fall_through[0]]
                        continue
                    return
                # Forward branch.
                if target_block is None:
                    block = cfg.blocks[successors[0]]
                    continue
                if not terminator.is_predicated or len(successors) == 1:
                    block = target_block
                    continue
                probability = workload.branch_probability(terminator.line)
                if rng.random() < probability:
                    block = target_block
                else:
                    fall_through = [s for s in successors if s != target_block.index]
                    block = cfg.blocks[fall_through[0]] if fall_through else target_block
                continue

            # Fall through (non-branch terminator or branch without target).
            block = cfg.blocks[successors[0]]

    walk(kernel_name, depth=0)

    _charge_fetch_stalls(ops, executed_functions, structure, architecture)
    return ops


def _charge_fetch_stalls(
    ops: List[TraceOp],
    executed_functions: Set[str],
    structure: ProgramStructure,
    architecture: GpuArchitecture,
) -> None:
    """Charge instruction-fetch stalls when the code footprint exceeds the i-cache.

    The footprint is the total code size of every function the warp executed.
    Pressure above 1.0 causes periodic fetch stalls whose frequency and size
    grow with the pressure — the signal the Function Split optimizer matches
    (Table 2: "Match instruction fetch stalls").
    """
    footprint = sum(
        structure.function(name).function.code_size for name in executed_functions
    )
    pressure = footprint / architecture.instruction_cache_bytes
    if pressure <= 1.0 or not ops:
        return
    period = max(6, int(48 / pressure))
    stall = max(4, int(8 * min(pressure, 4.0)))
    for index in range(period, len(ops), period):
        ops[index].fetch_stall = stall
