"""Per-warp dynamic trace generation.

``generate_warp_trace`` walks one warp's execution path through a function's
control flow graph using the :class:`~repro.sampling.workload.WorkloadSpec`:
loops iterate for their configured trip counts, data-dependent forward
branches are decided by a deterministic per-warp random stream, and ``CAL``
instructions descend into device functions.  Each executed instruction
becomes a :class:`TraceOp` annotated with its dynamic memory latency, the
number of memory transactions it issues, and any instruction-fetch stall
charged to it (present when the executed code footprint exceeds the
instruction cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.arch.machine import GpuArchitecture
from repro.isa.instruction import Instruction
from repro.isa.registers import MemorySpace
from repro.sampling.memory import THROTTLED_SPACES
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import FunctionStructure, ProgramStructure


@dataclass
class TraceOp:
    """One dynamically executed instruction of one warp."""

    #: Function the instruction belongs to (kernel or device function).
    function: str
    instruction: Instruction
    #: Completion latency for variable-latency instructions (cycles).
    latency: int = 0
    #: Memory transactions issued (0 for non-memory instructions).
    transactions: int = 0
    #: Instruction-fetch stall charged before this op issues (cycles).
    fetch_stall: int = 0
    #: Base byte address of the warp's access (hierarchy memory model);
    #: thread ``t`` accesses ``address + t * stride_bytes``.
    address: int = 0
    #: Per-thread stride in bytes; 0 marks an op without address
    #: information (non-memory, or a hand-built trace).
    stride_bytes: int = 0

    @property
    def offset(self) -> int:
        return self.instruction.offset

    @property
    def opcode(self) -> str:
        return self.instruction.opcode


class TraceError(RuntimeError):
    """Raised when a trace cannot be generated (e.g. unresolved call)."""


def _dynamic_latency(
    instruction: Instruction,
    architecture: GpuArchitecture,
    workload: WorkloadSpec,
    rng,
    transactions: int,
) -> int:
    """Completion latency of a variable-latency instruction for this execution."""
    info = instruction.info
    base = architecture.latency(instruction.opcode)
    space = instruction.memory_space
    jitter = rng.uniform(0.85, 1.25)
    scale = 1.0
    if space in (MemorySpace.GLOBAL, MemorySpace.GENERIC, MemorySpace.LOCAL, MemorySpace.TEXTURE):
        scale = workload.memory_latency_scale
        if transactions > 1:
            # Uncoalesced accesses serialize transactions at the memory pipe.
            scale *= 1.0 + 0.15 * (transactions - 1)
    elif space is MemorySpace.CONSTANT:
        scale = workload.constant_latency_scale
    elif space is MemorySpace.SHARED:
        scale = workload.shared_latency_scale
    return max(1, int(base * scale * jitter))


def generate_warp_trace(
    structure: ProgramStructure,
    kernel_name: str,
    workload: WorkloadSpec,
    architecture: GpuArchitecture,
    warp_id: int,
    num_warps: int,
) -> List[TraceOp]:
    """Generate the dynamic instruction trace of one warp."""
    rng = workload.rng_for_warp(warp_id)
    ops: List[TraceOp] = []
    executed_functions: Set[str] = set()
    sector_bytes = architecture.memory.sector_bytes
    warp_size = architecture.warp_size
    #: Per-warp count of hierarchy-visible memory accesses, used to walk
    #: the warp through its working-set partition deterministically.
    memory_accesses = 0

    def walk(function_name: str, depth: int) -> None:
        nonlocal memory_accesses
        if depth > 8:
            raise TraceError(f"call depth limit exceeded while tracing {kernel_name}")
        function_structure = structure.function(function_name)
        executed_functions.add(function_name)
        cfg = function_structure.cfg
        block = cfg.entry
        back_edge_taken: Dict[int, int] = {}

        while True:
            if len(ops) >= workload.max_trace_ops:
                return
            for instruction in block.instructions:
                if len(ops) >= workload.max_trace_ops:
                    return
                transactions = 0
                latency = 0
                address = 0
                stride = 0
                if instruction.is_memory or instruction.info.is_variable_latency:
                    if instruction.is_memory:
                        transactions = workload.transactions(instruction.line)
                        if instruction.memory_space in THROTTLED_SPACES:
                            # Address generation is a pure function of the
                            # access count — it consumes no randomness, so
                            # the flat model's traces stay bit-identical.
                            stride = workload.access_stride(
                                instruction.line, sector_bytes, warp_size
                            )
                            address = workload.address_for(
                                warp_id, memory_accesses, stride,
                                num_warps, warp_size,
                            )
                            memory_accesses += 1
                    latency = _dynamic_latency(
                        instruction, architecture, workload, rng, max(1, transactions)
                    )
                ops.append(
                    TraceOp(
                        function=function_name,
                        instruction=instruction,
                        latency=latency,
                        transactions=transactions,
                        address=address,
                        stride_bytes=stride,
                    )
                )
                if instruction.is_call:
                    callee = workload.call_target(instruction.line)
                    if callee is not None and callee in structure.functions:
                        walk(callee, depth + 1)
                if instruction.is_exit:
                    return

            terminator = block.terminator
            successors = cfg.successors.get(block.index, [])
            if terminator is None or not successors:
                return

            if terminator.is_branch and terminator.target is not None:
                target_block = None
                try:
                    target_block = cfg.block_containing(terminator.target)
                except KeyError:
                    target_block = None

                is_back_edge = terminator.target <= terminator.offset
                if is_back_edge and target_block is not None:
                    header_instruction = cfg.instruction_at(terminator.target)
                    trips = workload.trip_count(header_instruction.line, warp_id, num_warps)
                    taken = back_edge_taken.get(terminator.offset, 0)
                    if taken + 1 < trips:
                        back_edge_taken[terminator.offset] = taken + 1
                        block = target_block
                        continue
                    back_edge_taken[terminator.offset] = 0
                    fall_through = [s for s in successors if s != target_block.index]
                    if fall_through:
                        block = cfg.blocks[fall_through[0]]
                        continue
                    return
                # Forward branch.
                if target_block is None:
                    block = cfg.blocks[successors[0]]
                    continue
                if not terminator.is_predicated or len(successors) == 1:
                    block = target_block
                    continue
                probability = workload.branch_probability(terminator.line)
                if rng.random() < probability:
                    block = target_block
                else:
                    fall_through = [s for s in successors if s != target_block.index]
                    block = cfg.blocks[fall_through[0]] if fall_through else target_block
                continue

            # Fall through (non-branch terminator or branch without target).
            block = cfg.blocks[successors[0]]

    walk(kernel_name, depth=0)

    _charge_fetch_stalls(ops, executed_functions, structure, architecture)
    return ops


def _charge_fetch_stalls(
    ops: List[TraceOp],
    executed_functions: Set[str],
    structure: ProgramStructure,
    architecture: GpuArchitecture,
) -> None:
    """Charge instruction-fetch stalls when the code footprint exceeds the i-cache.

    The footprint is the total code size of every function the warp executed.
    Pressure above 1.0 causes periodic fetch stalls whose frequency and size
    grow with the pressure — the signal the Function Split optimizer matches
    (Table 2: "Match instruction fetch stalls").
    """
    footprint = sum(
        structure.function(name).function.code_size for name in executed_functions
    )
    pressure = footprint / architecture.instruction_cache_bytes
    if pressure <= 1.0 or not ops:
        return
    period = max(6, int(48 / pressure))
    stall = max(4, int(8 * min(pressure, 4.0)))
    for index in range(period, len(ops), period):
        ops[index].fetch_stall = stall
