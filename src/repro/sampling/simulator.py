"""The SM execution simulator that produces PC samples.

The simulator executes per-warp dynamic traces on one streaming
multiprocessor of the configured architecture:

* each SM has ``schedulers_per_sm`` warp schedulers; resident warps are
  assigned to schedulers round-robin;
* every cycle each scheduler issues at most one instruction from a ready
  warp, picked with a loose round-robin policy;
* fixed-latency results are tracked with a per-warp register scoreboard;
  variable-latency results are tracked through the write/read barrier
  registers in each instruction's control code, exactly the mechanism the
  instruction blamer later reasons about;
* ``BAR.SYNC`` blocks a warp until every live warp of its thread block has
  arrived; waiting warps report ``SYNCHRONIZATION`` stalls;
* memory is serviced by one of two models: the *flat* model (per-opcode
  latency plus a shared outstanding-transaction budget, the default) or the
  *hierarchy* model (:mod:`repro.sampling.memory`: per-warp coalescing into
  32-byte sectors, L1/L2 caches, MSHR-limited misses and bandwidth-limited
  DRAM, with MEMORY_THROTTLE driven by real MSHR backpressure);
* instruction-fetch stalls charged by the trace generator block the warp
  with ``INSTRUCTION_FETCH``;
* every ``sample_period`` cycles one scheduler (round-robin across
  schedulers, as in Figure 1) records a PC sample: an *active* sample if the
  scheduler issued that cycle, otherwise a *latency* sample carrying the
  sampled warp's PC and stall reason.

Sampling is observation-neutral: recording a sample reads warp state through
a side-effect-free probe, so changing ``sample_period`` can never change the
simulated timing — the same property the hardware PC sampler has.

The main loop is event-driven per scheduler: a scheduler whose warps are all
blocked is skipped with a single integer comparison until the earliest cycle
at which one of its warps could issue, and when no scheduler can issue at all
the clock jumps straight to the next event (emitting the latency samples that
fall inside the gap).

The output is exactly what CUPTI hands GPA: per-instruction stall counts by
reason, per-instruction issue counts, and kernel-level totals.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.machine import GpuArchitecture
from repro.sampling.memory import (
    MemoryHierarchy,
    MemoryStatistics,
    check_memory_model,
)
from repro.sampling.sample import PCSample
from repro.sampling.stall_reasons import StallReason
from repro.sampling.trace import OpMeta, TraceOp, cached_latency, instruction_meta

#: Default bound on the simulation loop; shared by the profiler and the
#: pipeline cache key so a truncated simulation never replays as a full one.
DEFAULT_MAX_CYCLES = 4_000_000

_FAR_FUTURE = 1 << 60


@dataclass
class SimulationResult:
    """Raw output of one simulated wave on one SM."""

    kernel: str
    wave_cycles: int
    #: (function, offset) -> {reason: latency sample count}
    stall_counts: Dict[Tuple[str, int], Dict[StallReason, int]]
    #: (function, offset) -> active (issue) sample count
    issue_counts: Dict[Tuple[str, int], int]
    active_samples: int
    latency_samples: int
    #: Dynamic instructions actually issued (all warps).
    issued_instructions: int
    #: Raw samples, kept only when requested.
    samples: List[PCSample] = field(default_factory=list)
    #: Memory-hierarchy counters (``None`` under the flat memory model).
    memory: Optional[MemoryStatistics] = None

    @property
    def total_samples(self) -> int:
        return self.active_samples + self.latency_samples


class _WarpState:
    """Mutable execution state of one warp.

    ``metas`` packs each op's static instruction facts
    (:class:`~repro.sampling.trace.OpMeta`) in trace order so the hot
    scheduler loops index plain slots instead of walking the instruction's
    ``cached_property`` chain on every dynamic execution.  ``barrier_reason``
    replaces the old barrier *source op* bookkeeping: the only question ever
    asked of a barrier's source is its precomputed dependency classification.
    """

    __slots__ = (
        "warp_id", "block_id", "trace", "metas", "idx", "ready_cycle", "reg_ready",
        "barrier_clear", "barrier_reason", "sync_arrived", "sync_released",
        "fetch_ready", "fetch_done_idx", "blocked_until", "last_reason", "finished",
    )

    def __init__(self, warp_id: int, block_id: int, trace: List[TraceOp]):
        self.warp_id = warp_id
        self.block_id = block_id
        self.trace = trace
        self.metas: List[OpMeta] = [instruction_meta(op.instruction) for op in trace]
        self.idx = 0
        self.ready_cycle = 0
        self.reg_ready: Dict[int, int] = {}
        self.barrier_clear = [0, 0, 0, 0, 0, 0]
        # An unset barrier classifies as a plain execution dependency,
        # exactly like the former ``_classify_dependency(None)``.
        self.barrier_reason = [StallReason.EXECUTION_DEPENDENCY] * 6
        self.sync_arrived = False
        self.sync_released = False
        self.fetch_ready: Optional[int] = None
        self.fetch_done_idx = -1
        self.blocked_until = 0
        self.last_reason = StallReason.OTHER
        self.finished = not trace

    def current_op(self) -> TraceOp:
        return self.trace[self.idx]


class SMSimulator:
    """Simulates one SM and collects PC samples."""

    def __init__(
        self,
        architecture: GpuArchitecture,
        sample_period: int = 32,
        keep_samples: bool = False,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        memory_model: str = "flat",
    ):
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.architecture = architecture
        self.sample_period = sample_period
        self.keep_samples = keep_samples
        self.max_cycles = max_cycles
        self.memory_model = check_memory_model(memory_model)

    # ------------------------------------------------------------------
    def simulate(
        self,
        kernel: str,
        traces: Sequence[List[TraceOp]],
        block_of_warp: Sequence[int],
        sm_id: int = 0,
    ) -> SimulationResult:
        """Run one wave of warps to completion and return the sample aggregates."""
        if len(traces) != len(block_of_warp):
            raise ValueError("traces and block_of_warp must have the same length")
        if not traces:
            raise ValueError("cannot simulate an empty set of warps")

        arch = self.architecture
        num_schedulers = arch.schedulers_per_sm
        warps = [
            _WarpState(warp_id=i, block_id=block_of_warp[i], trace=list(traces[i]))
            for i in range(len(traces))
        ]
        scheduler_warps: List[List[int]] = [[] for _ in range(num_schedulers)]
        for index in range(len(warps)):
            scheduler_warps[index % num_schedulers].append(index)

        # Block barrier bookkeeping.
        barrier_arrived: Dict[int, set] = defaultdict(set)
        warps_of_block: Dict[int, List[int]] = defaultdict(list)
        for index, warp in enumerate(warps):
            warps_of_block[warp.block_id].append(index)

        # Outstanding memory transactions (completion-cycle min-heap) for
        # the flat model; the hierarchy model owns its own MSHR state.
        pending_memory: List[int] = []
        memory_limit = arch.max_outstanding_memory_requests
        hierarchy: Optional[MemoryHierarchy] = None
        if self.memory_model == "hierarchy":
            hierarchy = MemoryHierarchy(arch.memory, warp_size=arch.warp_size)

        stall_counts: Dict[Tuple[str, int], Dict[StallReason, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        issue_counts: Dict[Tuple[str, int], int] = defaultdict(int)
        samples: List[PCSample] = []
        active_samples = 0
        latency_samples = 0
        issued_instructions = 0

        last_issued_slot = [0] * num_schedulers
        sample_pointer = [0] * num_schedulers
        unfinished = sum(1 for warp in warps if not warp.finished)

        cycle = 0
        next_sample_cycle = 0
        sample_index = 0
        #: Set when a barrier arrival or a warp exit may have made a block
        #: barrier releasable; cleared after ``release_barriers`` runs.
        barrier_dirty = False

        # ------------------------------------------------------------------
        def check(
            warp: _WarpState, now: int, commit: bool = True
        ) -> Tuple[bool, StallReason, int]:
            """Whether ``warp`` can issue at ``now``; else (reason, recheck cycle).

            ``commit=False`` is the PC sampler's observation mode: the same
            classification runs, but nothing is mutated — no fetch-timer
            arming, no barrier-arrival registration, no outstanding-
            transaction pops — so sampling is observation-neutral and the
            simulated timing is bit-identical across sampling periods.
            Keeping one routine for both modes means the sampler's stall
            reasons can never drift from what the scheduler would see.
            """
            nonlocal barrier_dirty
            if warp.finished:
                return False, StallReason.IDLE, _FAR_FUTURE
            if now < warp.ready_cycle:
                return False, StallReason.EXECUTION_DEPENDENCY, warp.ready_cycle
            idx = warp.idx
            meta = warp.metas[idx]

            # Instruction fetch stall charged to this op.
            fetch_stall = warp.trace[idx].fetch_stall
            if fetch_stall and warp.fetch_done_idx != idx:
                fetch_ready = warp.fetch_ready
                if fetch_ready is None:
                    fetch_ready = now + fetch_stall
                    if commit:
                        warp.fetch_ready = fetch_ready
                if now < fetch_ready:
                    return False, StallReason.INSTRUCTION_FETCH, fetch_ready
                if commit:
                    warp.fetch_done_idx = idx
                    warp.fetch_ready = None

            # Barrier wait mask (variable-latency dependencies).
            wait_mask = meta.wait_mask
            if wait_mask:
                latest = -1
                latest_reason = StallReason.EXECUTION_DEPENDENCY
                barrier_clear = warp.barrier_clear
                for bar in wait_mask:
                    clear = barrier_clear[bar]
                    if clear > latest:
                        latest = clear
                        latest_reason = warp.barrier_reason[bar]
                if now < latest:
                    return False, latest_reason, latest
            # Register scoreboard (fixed-latency dependencies).
            reg_ready = warp.reg_ready
            if reg_ready:
                latest = 0
                for reg_index in meta.used_regs:
                    ready = reg_ready.get(reg_index, 0)
                    if ready > latest:
                        latest = ready
                if now < latest:
                    return False, StallReason.EXECUTION_DEPENDENCY, latest

            # Block-wide synchronization.
            if meta.is_bar:
                if not warp.sync_released:
                    if commit and not warp.sync_arrived:
                        warp.sync_arrived = True
                        barrier_arrived[warp.block_id].add(warp.warp_id)
                        barrier_dirty = True
                    return False, StallReason.SYNCHRONIZATION, _FAR_FUTURE

            # Memory throttle.
            if meta.is_throttled_memory:
                if hierarchy is not None:
                    # Real backpressure: every L1 MSHR holds an in-flight
                    # sector miss (DRAM queueing keeps them held longer).
                    recheck = hierarchy.backpressure(now, commit=commit)
                    if recheck is not None:
                        return False, StallReason.MEMORY_THROTTLE, recheck
                elif commit:
                    while pending_memory and pending_memory[0] <= now:
                        heapq.heappop(pending_memory)
                    if len(pending_memory) >= memory_limit:
                        return False, StallReason.MEMORY_THROTTLE, pending_memory[0]
                else:
                    in_flight = sum(
                        1 for completion in pending_memory if completion > now
                    )
                    if in_flight >= memory_limit:
                        return False, StallReason.MEMORY_THROTTLE, now + 1

            return True, StallReason.SELECTED, now

        # ------------------------------------------------------------------
        def issue(warp: _WarpState, now: int) -> None:
            nonlocal unfinished, issued_instructions, barrier_dirty
            op = warp.trace[warp.idx]
            meta = warp.metas[warp.idx]

            is_hierarchy_memory = hierarchy is not None and meta.is_throttled_memory
            if is_hierarchy_memory:
                # The hierarchy *measures* this access's completion from
                # coalescing + cache hits + DRAM queueing, replacing the
                # workload-assigned flat latency.
                memory_completion = hierarchy.access(op, now)

            write_barrier = meta.write_barrier
            if write_barrier is not None:
                if is_hierarchy_memory:
                    clear = max(now + 1, memory_completion)
                else:
                    clear = now + max(1, op.latency)
                warp.barrier_clear[write_barrier] = clear
                warp.barrier_reason[write_barrier] = meta.barrier_reason
            read_barrier = meta.read_barrier
            if read_barrier is not None:
                if is_hierarchy_memory:
                    # Stores release their read barrier once their sectors
                    # have entered the pipeline (bounded like the flat hold).
                    hold = max(1, min(memory_completion - now, 30))
                else:
                    hold = max(1, min(op.latency, 30)) if op.latency else 20
                warp.barrier_clear[read_barrier] = now + hold
                warp.barrier_reason[read_barrier] = meta.barrier_reason

            if not meta.is_variable_latency:
                latency = cached_latency(self.architecture, meta.opcode)
                reg_ready = warp.reg_ready
                for reg_index in meta.defined_regs:
                    reg_ready[reg_index] = now + latency

            if hierarchy is None and meta.is_throttled_memory:
                completion = now + max(1, op.latency)
                for _ in range(max(1, op.transactions)):
                    heapq.heappush(pending_memory, completion)

            if meta.is_bar:
                warp.sync_arrived = False
                warp.sync_released = False

            issued_instructions += 1
            warp.idx += 1
            warp.ready_cycle = now + max(1, meta.stall_cycles)
            warp.blocked_until = warp.ready_cycle
            if warp.idx >= len(warp.trace):
                warp.finished = True
                unfinished -= 1
                # A barrier waiting only on this warp is now releasable.
                barrier_dirty = True

        # ------------------------------------------------------------------
        def release_barriers(now: int) -> bool:
            """Release block barriers whose live warps have all arrived.

            Returns True when at least one barrier was released, so the main
            loop does not skip ahead past the newly-unblocked warps.
            """
            released = False
            for block_id, arrived in list(barrier_arrived.items()):
                if not arrived:
                    continue
                live = [
                    warps[w_index].warp_id
                    for w_index in warps_of_block[block_id]
                    if not warps[w_index].finished
                ]
                if live and set(live) <= arrived:
                    for w_index in warps_of_block[block_id]:
                        warp = warps[w_index]
                        if warp.warp_id in arrived:
                            warp.sync_released = True
                            warp.blocked_until = now
                            # Wake the released warp's scheduler: its skip-ahead
                            # horizon may sit far past the release.
                            sched_next[w_index % num_schedulers] = now
                    barrier_arrived[block_id] = set()
                    released = True
            return released

        # ------------------------------------------------------------------
        def record_sample(scheduler: int, now: int, issued_key: Optional[Tuple[str, int]]) -> None:
            nonlocal active_samples, latency_samples
            indices = scheduler_warps[scheduler]
            if not indices:
                return
            # Pick the sampled warp round-robin among unfinished warps.
            pointer = sample_pointer[scheduler]
            sampled: Optional[_WarpState] = None
            for probe in range(len(indices)):
                candidate = warps[indices[(pointer + probe) % len(indices)]]
                if not candidate.finished:
                    sampled = candidate
                    sample_pointer[scheduler] = (pointer + probe + 1) % len(indices)
                    break
            if sampled is None:
                return

            is_active = issued_key is not None
            if is_active:
                active_samples += 1
                issue_counts[issued_key] += 1
                reason = StallReason.SELECTED
                function, offset = issued_key
            else:
                latency_samples += 1
                op = sampled.current_op()
                reason = sampled.last_reason
                if reason in (StallReason.SELECTED, StallReason.IDLE, StallReason.OTHER):
                    # The cached reason is stale (the warp was not examined
                    # this cycle); probe its state in observation mode so
                    # sampling never perturbs execution.
                    _ready, reason, _recheck = check(sampled, now, commit=False)
                    if reason in (StallReason.SELECTED, StallReason.IDLE):
                        reason = StallReason.NOT_SELECTED
                function, offset = op.function, sampled.metas[sampled.idx].offset
                stall_counts[(function, offset)][reason] += 1

            if self.keep_samples:
                samples.append(
                    PCSample(
                        cycle=now,
                        sm_id=sm_id,
                        scheduler_id=scheduler,
                        warp_id=sampled.warp_id,
                        function=function,
                        offset=offset,
                        reason=reason,
                        is_active=is_active,
                    )
                )

        # ------------------------------------------------------------------
        # Main loop (event-driven per scheduler).
        #
        # ``sched_next[s]`` is the earliest cycle at which scheduler ``s``
        # could possibly issue: schedulers whose horizon lies in the future
        # are skipped with one comparison instead of rescanning every warp.
        # The horizon is exact for warp-local events (scoreboards, fetch
        # timers, control stalls); cross-warp wakeups (block barrier
        # releases) reset it explicitly in ``release_barriers``.
        # ------------------------------------------------------------------
        sched_next = [0] * num_schedulers
        issued_key_by_scheduler: List[Optional[Tuple[str, int]]] = [None] * num_schedulers
        sample_period = self.sample_period
        max_cycles = self.max_cycles

        while unfinished > 0 and cycle < max_cycles:
            any_issued = False

            for scheduler in range(num_schedulers):
                issued_key_by_scheduler[scheduler] = None
                if cycle < sched_next[scheduler]:
                    continue
                indices = scheduler_warps[scheduler]
                if not indices:
                    sched_next[scheduler] = _FAR_FUTURE
                    continue
                count = len(indices)
                start = last_issued_slot[scheduler]
                chosen_slot = -1
                min_next = _FAR_FUTURE
                for probe in range(count):
                    slot = (start + probe) % count
                    warp = warps[indices[slot]]
                    if warp.finished:
                        continue
                    if cycle < warp.blocked_until:
                        if warp.blocked_until < min_next:
                            min_next = warp.blocked_until
                        continue
                    ready, reason, recheck = check(warp, cycle)
                    warp.last_reason = reason
                    if ready:
                        chosen_slot = slot
                        break
                    warp.blocked_until = recheck
                    if recheck < min_next:
                        min_next = recheck
                if chosen_slot >= 0:
                    warp = warps[indices[chosen_slot]]
                    op = warp.current_op()
                    issued_key_by_scheduler[scheduler] = (
                        op.function, warp.metas[warp.idx].offset
                    )
                    issue(warp, cycle)
                    last_issued_slot[scheduler] = (chosen_slot + 1) % count
                    any_issued = True
                    # An issuing scheduler may pick another warp next cycle.
                    sched_next[scheduler] = cycle + 1
                else:
                    sched_next[scheduler] = min_next

            if barrier_dirty:
                barrier_dirty = False
                released = release_barriers(cycle)
            else:
                released = False

            if cycle >= next_sample_cycle:
                scheduler = sample_index % num_schedulers
                record_sample(scheduler, cycle, issued_key_by_scheduler[scheduler])
                sample_index += 1
                next_sample_cycle += sample_period

            if any_issued or released:
                cycle += 1
            else:
                # Nothing can issue until the earliest scheduler horizon:
                # jump ahead, but emit the latency samples in the gap.
                target = min(min(sched_next), max_cycles)
                if target <= cycle:
                    target = cycle + 1
                while next_sample_cycle < target:
                    scheduler = sample_index % num_schedulers
                    record_sample(scheduler, next_sample_cycle, None)
                    sample_index += 1
                    next_sample_cycle += sample_period
                cycle = target

        return SimulationResult(
            kernel=kernel,
            wave_cycles=cycle,
            stall_counts={key: dict(value) for key, value in stall_counts.items()},
            issue_counts=dict(issue_counts),
            active_samples=active_samples,
            latency_samples=latency_samples,
            issued_instructions=issued_instructions,
            samples=samples,
            memory=hierarchy.statistics if hierarchy is not None else None,
        )
