"""Samples, per-instruction aggregates, kernel profiles and launch statistics.

A :class:`KernelProfile` is the unit of data GPA's dynamic analyzer consumes
for one kernel launch: per-instruction stall counts by reason, per-instruction
issue counts, kernel-level totals (total / active / latency samples) and the
launch statistics (grid, block, occupancy, simulated cycles).
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sampling.memory import MemoryStatistics
from repro.sampling.stall_reasons import StallReason


#: Key identifying one static instruction in a profile: (function, offset).
InstructionKey = Tuple[str, int]


@dataclass(frozen=True)
class PCSample:
    """One raw PC sample, as CUPTI would report it."""

    #: Cycle at which the sample was taken.
    cycle: int
    #: SM and scheduler that were sampled.
    sm_id: int
    scheduler_id: int
    #: Warp whose state was observed.
    warp_id: int
    #: Function and byte offset of the sampled warp's current instruction.
    function: str
    offset: int
    #: Stall reason of the sampled warp (``SELECTED`` when it issued).
    reason: StallReason
    #: Whether the scheduler issued *any* instruction this cycle.  Samples
    #: with ``is_active=False`` are latency samples (Figure 1).
    is_active: bool

    @property
    def is_latency(self) -> bool:
        return not self.is_active


@dataclass
class InstructionSamples:
    """Aggregated samples for one static instruction."""

    function: str
    offset: int
    #: Latency (stall) samples by reason, taken while the sampled warp sat at
    #: this instruction and the scheduler was not issuing.
    stalls: Dict[StallReason, int] = field(default_factory=dict)
    #: Active samples in which this instruction was the one being issued.
    issue_samples: int = 0

    @property
    def key(self) -> InstructionKey:
        return (self.function, self.offset)

    @property
    def total_stalls(self) -> int:
        return sum(self.stalls.values())

    @property
    def total_samples(self) -> int:
        return self.total_stalls + self.issue_samples

    def stall_count(self, reason: StallReason) -> int:
        return self.stalls.get(reason, 0)

    def add_stall(self, reason: StallReason, count: int = 1) -> None:
        self.stalls[reason] = self.stalls.get(reason, 0) + count

    def merge(self, other: "InstructionSamples") -> None:
        if other.key != self.key:
            raise ValueError("cannot merge samples of different instructions")
        for reason, count in other.stalls.items():
            self.add_stall(reason, count)
        self.issue_samples += other.issue_samples


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch configuration."""

    grid_blocks: int
    threads_per_block: int
    shared_memory_bytes: int = 0

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ValueError("grid_blocks must be positive")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block

    def with_blocks(self, grid_blocks: int) -> "LaunchConfig":
        return LaunchConfig(grid_blocks, self.threads_per_block, self.shared_memory_bytes)

    def with_threads(self, threads_per_block: int) -> "LaunchConfig":
        return LaunchConfig(self.grid_blocks, threads_per_block, self.shared_memory_bytes)

    def to_dict(self) -> dict:
        return {
            "grid_blocks": self.grid_blocks,
            "threads_per_block": self.threads_per_block,
            "shared_memory_bytes": self.shared_memory_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LaunchConfig":
        return cls(
            grid_blocks=payload["grid_blocks"],
            threads_per_block=payload["threads_per_block"],
            shared_memory_bytes=payload.get("shared_memory_bytes", 0),
        )


@dataclass
class LaunchStatistics:
    """Statistics of one simulated kernel launch."""

    kernel: str
    config: LaunchConfig
    registers_per_thread: int
    blocks_per_sm: int
    warps_per_sm: int
    warps_per_scheduler: float
    occupancy: float
    occupancy_limiter: str
    waves: float
    #: Cycles taken by the simulated wave on one SM (the first full dispatch
    #: wave under the whole-GPU scope).
    wave_cycles: int
    #: Total kernel cycles: ``wave_cycles * waves`` extrapolation under the
    #: single-wave scope, the *measured* sum of per-wave maxima under the
    #: whole-GPU scope.
    kernel_cycles: float
    sample_period: int
    #: Which simulation engine produced these statistics ("single_wave" or
    #: "whole_gpu"); see :data:`repro.sampling.profiler.SIMULATION_SCOPES`.
    simulation_scope: str = "single_wave"
    #: Which memory model serviced global accesses ("flat" or "hierarchy");
    #: see :data:`repro.sampling.memory.MEMORY_MODELS`.
    memory_model: str = "flat"
    #: Coalescing and cache statistics (``None`` under the flat model).
    memory: Optional[MemoryStatistics] = None

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "grid_blocks": self.config.grid_blocks,
            "threads_per_block": self.config.threads_per_block,
            "shared_memory_bytes": self.config.shared_memory_bytes,
            "registers_per_thread": self.registers_per_thread,
            "blocks_per_sm": self.blocks_per_sm,
            "warps_per_sm": self.warps_per_sm,
            "warps_per_scheduler": self.warps_per_scheduler,
            "occupancy": self.occupancy,
            "occupancy_limiter": self.occupancy_limiter,
            "waves": self.waves,
            "wave_cycles": self.wave_cycles,
            "kernel_cycles": self.kernel_cycles,
            "sample_period": self.sample_period,
            "simulation_scope": self.simulation_scope,
            "memory_model": self.memory_model,
            "memory": self.memory.to_dict() if self.memory is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LaunchStatistics":
        return cls(
            kernel=payload["kernel"],
            config=LaunchConfig(
                payload["grid_blocks"],
                payload["threads_per_block"],
                payload.get("shared_memory_bytes", 0),
            ),
            registers_per_thread=payload["registers_per_thread"],
            blocks_per_sm=payload["blocks_per_sm"],
            warps_per_sm=payload["warps_per_sm"],
            warps_per_scheduler=payload["warps_per_scheduler"],
            occupancy=payload["occupancy"],
            occupancy_limiter=payload["occupancy_limiter"],
            waves=payload["waves"],
            wave_cycles=payload["wave_cycles"],
            kernel_cycles=payload["kernel_cycles"],
            sample_period=payload["sample_period"],
            simulation_scope=payload.get("simulation_scope", "single_wave"),
            memory_model=payload.get("memory_model", "flat"),
            memory=(
                MemoryStatistics.from_dict(payload["memory"])
                if payload.get("memory") is not None
                else None
            ),
        )


@dataclass
class KernelProfile:
    """The profile GPA analyzes for one kernel launch."""

    kernel: str
    statistics: LaunchStatistics
    instructions: Dict[InstructionKey, InstructionSamples] = field(default_factory=dict)
    #: Kernel-level totals.
    total_samples: int = 0
    active_samples: int = 0
    latency_samples: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def record_stall(self, function: str, offset: int, reason: StallReason, count: int = 1) -> None:
        """Record latency samples at an instruction with a stall reason."""
        key = (function, offset)
        entry = self.instructions.get(key)
        if entry is None:
            entry = InstructionSamples(function=function, offset=offset)
            self.instructions[key] = entry
        entry.add_stall(reason, count)
        self.latency_samples += count
        self.total_samples += count

    def record_issue(self, function: str, offset: int, count: int = 1) -> None:
        """Record active samples for the instruction that was issuing."""
        key = (function, offset)
        entry = self.instructions.get(key)
        if entry is None:
            entry = InstructionSamples(function=function, offset=offset)
            self.instructions[key] = entry
        entry.issue_samples += count
        self.active_samples += count
        self.total_samples += count

    # ------------------------------------------------------------------
    # Queries used by the blamer, optimizers and estimators
    # ------------------------------------------------------------------
    def samples_at(self, function: str, offset: int) -> Optional[InstructionSamples]:
        return self.instructions.get((function, offset))

    def issue_samples_at(self, function: str, offset: int) -> int:
        entry = self.instructions.get((function, offset))
        return entry.issue_samples if entry else 0

    def stall_samples(self) -> List[InstructionSamples]:
        """All per-instruction aggregates that carry at least one stall."""
        return [entry for entry in self.instructions.values() if entry.total_stalls > 0]

    def stalls_by_reason(self) -> Dict[StallReason, int]:
        """Kernel-level stall totals by reason."""
        totals: Dict[StallReason, int] = defaultdict(int)
        for entry in self.instructions.values():
            for reason, count in entry.stalls.items():
                totals[reason] += count
        return dict(totals)

    def functions(self) -> List[str]:
        """Functions that appear in the profile (kernel + device functions)."""
        names = []
        for function, _offset in self.instructions:
            if function not in names:
                names.append(function)
        return names

    @property
    def stall_ratio(self) -> float:
        """Latency samples / total samples (the kernel stall ratio of §2.1)."""
        return self.latency_samples / self.total_samples if self.total_samples else 0.0

    @property
    def active_ratio(self) -> float:
        """Active samples / total samples."""
        return self.active_samples / self.total_samples if self.total_samples else 0.0

    @property
    def issue_rate(self) -> float:
        """Alias of :attr:`active_ratio`, the R_I of Equation 8."""
        return self.active_ratio

    # ------------------------------------------------------------------
    # Serialization (profiles are dumped for offline analysis)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "statistics": self.statistics.to_dict(),
            "totals": {
                "total_samples": self.total_samples,
                "active_samples": self.active_samples,
                "latency_samples": self.latency_samples,
            },
            "instructions": [
                {
                    "function": entry.function,
                    "offset": entry.offset,
                    "issue_samples": entry.issue_samples,
                    "stalls": {reason.value: count for reason, count in entry.stalls.items()},
                }
                for entry in sorted(
                    self.instructions.values(), key=lambda e: (e.function, e.offset)
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelProfile":
        profile = cls(
            kernel=payload["kernel"],
            statistics=LaunchStatistics.from_dict(payload["statistics"]),
        )
        for entry in payload["instructions"]:
            key = (entry["function"], entry["offset"])
            samples = InstructionSamples(
                function=entry["function"],
                offset=entry["offset"],
                issue_samples=entry["issue_samples"],
                stalls={
                    StallReason(reason): count for reason, count in entry["stalls"].items()
                },
            )
            profile.instructions[key] = samples
        totals = payload["totals"]
        profile.total_samples = totals["total_samples"]
        profile.active_samples = totals["active_samples"]
        profile.latency_samples = totals["latency_samples"]
        return profile

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "KernelProfile":
        return cls.from_dict(json.loads(text))
