"""The array-based (``simulator_backend="vector"``) SM simulator core.

:class:`VectorSMSimulator` is a drop-in replacement for
:class:`~repro.sampling.simulator.SMSimulator` that keeps *no per-op
objects* on its hot path.  At the start of a ``simulate()`` call every
warp's trace is packed once into a structure of flat arrays:

* **Op streams** — one packed record per dynamic op, carrying the
  precomputed facts both scheduler phases need: a check-phase flag word
  (fetch-stall / wait-mask / BAR / throttled-memory bits), the wait mask as
  a plain tuple, used/defined register indices, the control-code barrier
  slots, precomputed fixed-op latency (``architecture.latency`` never runs
  inside the loop), precomputed ``max(1, ...)`` latency/stall increments,
  and — under the hierarchy memory model — the access's coalesced sector
  addresses resolved at pack time with numpy (:func:`coalesced_sectors`).
  Records are interned aggressively: the static prefix is memoized per
  instruction, ops with no dynamic state (the common fixed-latency ALU op)
  share one record tuple outright, and coalesced sector lists are memoized
  per ``(address, stride)`` — so packing a trace costs little more than one
  dict hit per op.
* **Warp state** — PC indices, ready/blocked cycles, fetch timers, barrier
  membership and finished flags live in flat per-warp arrays; the
  fixed-latency scoreboard is a dense ``warps x registers`` table of
  ready-cycles (materialized as a 2-D ``int64`` numpy array by
  :meth:`VectorSMSimulator.scoreboard_array` for inspection) instead of
  per-warp dicts.

The event loop itself is a transliteration of the object core — same
scheduler scan order, same skip-ahead horizons, same observation-neutral
sampling probe — so the two cores stay *bit-identical* on every output
(``wave_cycles``, stall/issue counts, samples, memory statistics).  The
speed comes from the packing: one tuple index replaces every chain of
attribute dispatches, the scheduler scan tests one flag word and walks the
register scoreboard inline on the common path, and all per-op
``max()``/latency/coalescing work is hoisted out of the loop.  Numpy does
the batch work at the edges (sector coalescing, register-file sizing, the
scoreboard view); the stepping itself stays a tight scalar loop because
per-SM warp populations (8–64) sit far below numpy's vectorization
break-even for this access pattern.

``docs/SIMULATOR.md`` documents the record layout and how to extend both
cores together.
"""

from __future__ import annotations

import heapq
import os
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised indirectly via backend fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.arch.machine import GpuArchitecture
from repro.sampling.memory import ACCESS_BYTES, MemoryHierarchy, check_memory_model
from repro.sampling.sample import PCSample
from repro.sampling.simulator import DEFAULT_MAX_CYCLES, SimulationResult, SMSimulator
from repro.sampling.stall_reasons import StallReason
from repro.sampling.trace import TraceOp, cached_latency, instruction_meta

_FAR_FUTURE = 1 << 60

#: The two simulator cores.  "vector" is the packed-array core in this
#: module; "object" is the original :class:`SMSimulator`.
SIMULATOR_BACKENDS = ("object", "vector")

#: Environment override consulted when no backend is requested explicitly;
#: lets CI run the whole tier-1 matrix once per backend without threading a
#: parameter through every test.
BACKEND_ENV_VAR = "REPRO_SIMULATOR_BACKEND"

#: The default backend when neither the caller nor the environment chose.
DEFAULT_BACKEND = "vector"

# ----------------------------------------------------------------------
# Packed-record layout (one tuple per dynamic op).
#
# Check-phase flag bits — ops with none of these (the common ALU op) take
# a single ``flags & _CHECK_MASK`` branch through the scheduler's ready
# test instead of four attribute probes.
_F_FETCH = 1
_F_WAIT = 2
_F_BAR = 4
_F_THROTTLE = 8
_CHECK_MASK = _F_FETCH | _F_WAIT | _F_BAR | _F_THROTTLE
# Issue-phase flag bits.
_F_WRITE_BAR = 16
_F_READ_BAR = 32
_F_FIXED = 64  # fixed-latency op: write the dense scoreboard

# Record tuple positions (static prefix 0-9 is memoized per instruction,
# dynamic tail 10-15 varies per op):
#   0 flags          1 wait_mask     2 used_regs     3 write_barrier
#   4 read_barrier   5 stall_inc     6 fixed_latency 7 defined_regs
#   8 barrier_reason 9 offset       10 fetch_stall  11 mem_inc
#  12 read_hold     13 transactions 14 function     15 sectors


def vector_backend_available() -> bool:
    """Whether the vector core can run in this interpreter (numpy present)."""
    return _np is not None


def check_simulator_backend(backend: str) -> str:
    """``backend`` if valid, else a uniform ``ValueError``."""
    if backend not in SIMULATOR_BACKENDS:
        raise ValueError(
            f"unknown simulator backend {backend!r}; "
            f"expected one of {SIMULATOR_BACKENDS}"
        )
    return backend


def resolve_simulator_backend(backend: Optional[str] = None) -> str:
    """The backend to actually run.

    ``None`` resolves to the :data:`BACKEND_ENV_VAR` environment override
    when set, else :data:`DEFAULT_BACKEND`.  A resolved ``"vector"`` falls
    back to ``"object"`` automatically when numpy is unavailable — both
    cores are bit-identical, so the fallback only changes speed (and the
    profile-cache key, which digests the *resolved* backend).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    check_simulator_backend(backend)
    if backend == "vector" and not vector_backend_available():
        return "object"
    return backend


def make_sm_simulator(
    architecture: GpuArchitecture,
    sample_period: int = 32,
    keep_samples: bool = False,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    memory_model: str = "flat",
    simulator_backend: Optional[str] = None,
):
    """Construct the SM simulator for the resolved backend."""
    cls = (
        VectorSMSimulator
        if resolve_simulator_backend(simulator_backend) == "vector"
        else SMSimulator
    )
    return cls(
        architecture,
        sample_period=sample_period,
        keep_samples=keep_samples,
        max_cycles=max_cycles,
        memory_model=memory_model,
    )


# ----------------------------------------------------------------------
def coalesced_sectors(
    address: int, stride: int, warp_size: int, sector_bytes: int
) -> Tuple[int, ...]:
    """Pack-time coalescing of one positive-stride warp access.

    Replicates :meth:`MemoryHierarchy.sector_addresses` for ``stride > 0``:
    each thread's ``ACCESS_BYTES`` footprint contributes its first and last
    sector index, and because both sequences are nondecreasing in the
    thread id, first-seen order equals sorted order — so a sorted unique
    (one vectorized ``np.unique``) reproduces the scalar loop's ordering
    exactly, including the L1-pipeline positions and DRAM queueing order
    that depend on it.
    """
    starts = address + _np.arange(warp_size, dtype=_np.int64) * stride
    firsts = starts // sector_bytes
    lasts = (starts + (ACCESS_BYTES - 1)) // sector_bytes
    unique = _np.unique(_np.concatenate((firsts, lasts)))
    return tuple((unique * sector_bytes).tolist())


def _pack_warp(
    trace: Sequence[TraceOp],
    architecture: GpuArchitecture,
    hierarchy: bool,
    sector_bytes: int,
    warp_size: int,
    static_memo: dict,
    sector_memo: dict,
) -> Tuple[list, int]:
    """One warp's packed op records plus its highest register index.

    ``static_memo`` interns, per instruction: the record's static prefix,
    a complete default record (shared outright by ops with no dynamic
    state — the common case), and the instruction's highest register
    index.  ``sector_memo`` interns coalesced sector tuples per
    ``(address, stride)``.  Both memos are per-``simulate()`` dicts keyed
    by ``id(instruction)`` — the instructions are pinned by the traces for
    the duration of the call, so ids cannot be recycled underneath them.
    """
    records = []
    append = records.append
    max_reg = -1
    for op in trace:
        instruction = op.instruction
        entry = static_memo.get(id(instruction))
        if entry is None:
            meta = instruction_meta(instruction)
            flags = 0
            if meta.wait_mask:
                flags |= _F_WAIT
            if meta.is_bar:
                flags |= _F_BAR
            if meta.is_throttled_memory:
                flags |= _F_THROTTLE
            if meta.write_barrier is not None:
                flags |= _F_WRITE_BAR
            if meta.read_barrier is not None:
                flags |= _F_READ_BAR
            fixed_latency = 0
            if not meta.is_variable_latency:
                flags |= _F_FIXED
                fixed_latency = cached_latency(architecture, meta.opcode)
            top = -1
            if meta.used_regs:
                top = max(meta.used_regs)
            if meta.defined_regs:
                top = max(top, max(meta.defined_regs))
            static = (
                flags,
                meta.wait_mask,
                meta.used_regs,
                meta.write_barrier,
                meta.read_barrier,
                max(1, meta.stall_cycles),
                fixed_latency,
                meta.defined_regs,
                meta.barrier_reason,
                meta.offset,
            )
            # Default record for ops with no dynamic state: latency 0
            # (mem_inc 1, read_hold 20), no transactions, no fetch stall.
            default_rec = static + (0, 1, 20, 1, op.function, None)
            entry = (static, default_rec, top)
            static_memo[id(instruction)] = entry
        static, default_rec, top = entry
        if top > max_reg:
            max_reg = top

        latency = op.latency
        transactions = op.transactions
        fetch = op.fetch_stall
        flags = static[0]
        needs_sectors = hierarchy and flags & _F_THROTTLE
        if not (latency or transactions or fetch or needs_sectors):
            append(default_rec)
            continue

        sectors = None
        if needs_sectors and op.stride_bytes > 0:
            skey = (op.address, op.stride_bytes)
            sectors = sector_memo.get(skey)
            if sectors is None:
                sectors = coalesced_sectors(
                    op.address, op.stride_bytes, warp_size, sector_bytes
                )
                sector_memo[skey] = sectors
        if fetch:
            static = (flags | _F_FETCH,) + static[1:]
        append(static + (
            fetch,
            latency if latency >= 1 else 1,
            (latency if latency < 30 else 30) if latency >= 1 else 20,
            transactions if transactions >= 1 else 1,
            op.function,
            sectors,
        ))
    return records, max_reg


class VectorSMSimulator:
    """Packed-array SM simulator core (bit-identical to :class:`SMSimulator`)."""

    def __init__(
        self,
        architecture: GpuArchitecture,
        sample_period: int = 32,
        keep_samples: bool = False,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        memory_model: str = "flat",
    ):
        if _np is None:
            raise RuntimeError(
                "the vector simulator backend requires numpy; "
                "use simulator_backend='object'"
            )
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.architecture = architecture
        self.sample_period = sample_period
        self.keep_samples = keep_samples
        self.max_cycles = max_cycles
        self.memory_model = check_memory_model(memory_model)
        #: Dense per-warp fixed-latency scoreboards of the *last* simulate
        #: call (lists while stepping; see :meth:`scoreboard_array`).
        self._reg_ready: List[List[int]] = []

    # ------------------------------------------------------------------
    def scoreboard_array(self):
        """The last call's register scoreboard as a 2-D ``int64`` array.

        Shape ``(num_warps, num_registers)``; entry ``[w, r]`` is the cycle
        at which warp ``w``'s register ``r`` was last scheduled to become
        ready.  Diagnostic view of the dense per-warp ready-cycle tables.
        """
        if not self._reg_ready:
            return _np.zeros((0, 0), dtype=_np.int64)
        return _np.array(self._reg_ready, dtype=_np.int64)

    # ------------------------------------------------------------------
    def simulate(
        self,
        kernel: str,
        traces: Sequence[List[TraceOp]],
        block_of_warp: Sequence[int],
        sm_id: int = 0,
    ) -> SimulationResult:
        """Run one wave of warps to completion and return the sample aggregates."""
        if len(traces) != len(block_of_warp):
            raise ValueError("traces and block_of_warp must have the same length")
        if not traces:
            raise ValueError("cannot simulate an empty set of warps")

        arch = self.architecture
        num_schedulers = arch.schedulers_per_sm
        num_warps = len(traces)
        hierarchy: Optional[MemoryHierarchy] = None
        if self.memory_model == "hierarchy":
            hierarchy = MemoryHierarchy(arch.memory, warp_size=arch.warp_size)
        sector_bytes = arch.memory.sector_bytes

        # ---- pack phase: per-op records + register-file sizing ----------
        recs_of_warp: List[list] = []
        static_memo: dict = {}
        sector_memo: dict = {}
        max_reg = -1
        for trace in traces:
            records, warp_max_reg = _pack_warp(
                trace, arch, hierarchy is not None, sector_bytes,
                arch.warp_size, static_memo, sector_memo,
            )
            recs_of_warp.append(records)
            if warp_max_reg > max_reg:
                max_reg = warp_max_reg
        num_regs = max_reg + 1

        # ---- flat warp-state arrays ------------------------------------
        op_count = [len(records) for records in recs_of_warp]
        idx = [0] * num_warps
        ready_cycle = [0] * num_warps
        blocked_until = [0] * num_warps
        finished = [count == 0 for count in op_count]
        fetch_ready: List[Optional[int]] = [None] * num_warps
        fetch_done_idx = [-1] * num_warps
        sync_arrived = [False] * num_warps
        sync_released = [False] * num_warps
        last_reason = [StallReason.OTHER] * num_warps
        barrier_clear = [[0, 0, 0, 0, 0, 0] for _ in range(num_warps)]
        barrier_reason = [
            [StallReason.EXECUTION_DEPENDENCY] * 6 for _ in range(num_warps)
        ]
        #: Dense scoreboard: reg_ready[w][r] = cycle register r is ready.
        reg_ready = [[0] * num_regs for _ in range(num_warps)]
        self._reg_ready = reg_ready

        scheduler_warps: List[List[int]] = [[] for _ in range(num_schedulers)]
        for w in range(num_warps):
            scheduler_warps[w % num_schedulers].append(w)
        warps_of_block: Dict[int, List[int]] = defaultdict(list)
        for w in range(num_warps):
            warps_of_block[block_of_warp[w]].append(w)
        barrier_arrived: Dict[int, set] = defaultdict(set)

        pending_memory: List[int] = []
        memory_limit = arch.max_outstanding_memory_requests

        stall_counts: Dict[Tuple[str, int], Dict[StallReason, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        issue_counts: Dict[Tuple[str, int], int] = defaultdict(int)
        samples: List[PCSample] = []
        active_samples = 0
        latency_samples = 0
        issued_instructions = 0

        last_issued_slot = [0] * num_schedulers
        sample_pointer = [0] * num_schedulers
        unfinished = sum(1 for done in finished if not done)

        cycle = 0
        next_sample_cycle = 0
        sample_index = 0
        barrier_dirty = False

        EXEC_DEP = StallReason.EXECUTION_DEPENDENCY
        SELECTED = StallReason.SELECTED
        IDLE = StallReason.IDLE

        # ------------------------------------------------------------------
        def check(w: int, now: int, commit: bool = True) -> Tuple[bool, StallReason, int]:
            """Whether warp ``w`` can issue at ``now``; else (reason, recheck).

            Mirrors the object core's single check routine, including the
            observation-neutral ``commit=False`` probe the PC sampler uses.
            The scheduler scan inlines the common path (no flags, register
            scoreboard only) and only calls in here for flagged ops and
            sampling probes.
            """
            nonlocal barrier_dirty
            if finished[w]:
                return False, IDLE, _FAR_FUTURE
            if now < ready_cycle[w]:
                return False, EXEC_DEP, ready_cycle[w]
            i = idx[w]
            rec = recs_of_warp[w][i]
            flags = rec[0]

            if flags & _CHECK_MASK:
                # Instruction fetch stall charged to this op.
                if flags & _F_FETCH and fetch_done_idx[w] != i:
                    ready_at = fetch_ready[w]
                    if ready_at is None:
                        ready_at = now + rec[10]
                        if commit:
                            fetch_ready[w] = ready_at
                    if now < ready_at:
                        return False, StallReason.INSTRUCTION_FETCH, ready_at
                    if commit:
                        fetch_done_idx[w] = i
                        fetch_ready[w] = None

                # Barrier wait mask (variable-latency dependencies).
                if flags & _F_WAIT:
                    latest = -1
                    latest_reason = EXEC_DEP
                    clears = barrier_clear[w]
                    for bar in rec[1]:
                        clear = clears[bar]
                        if clear > latest:
                            latest = clear
                            latest_reason = barrier_reason[w][bar]
                    if now < latest:
                        return False, latest_reason, latest

            # Register scoreboard (fixed-latency dependencies).
            latest = 0
            regs = reg_ready[w]
            for r in rec[2]:
                ready = regs[r]
                if ready > latest:
                    latest = ready
            if now < latest:
                return False, EXEC_DEP, latest

            if flags & _CHECK_MASK:
                # Block-wide synchronization.
                if flags & _F_BAR:
                    if not sync_released[w]:
                        if commit and not sync_arrived[w]:
                            sync_arrived[w] = True
                            barrier_arrived[block_of_warp[w]].add(w)
                            barrier_dirty = True
                        return False, StallReason.SYNCHRONIZATION, _FAR_FUTURE

                # Memory throttle.
                if flags & _F_THROTTLE:
                    if hierarchy is not None:
                        recheck = hierarchy.backpressure(now, commit=commit)
                        if recheck is not None:
                            return False, StallReason.MEMORY_THROTTLE, recheck
                    elif commit:
                        while pending_memory and pending_memory[0] <= now:
                            heapq.heappop(pending_memory)
                        if len(pending_memory) >= memory_limit:
                            return False, StallReason.MEMORY_THROTTLE, pending_memory[0]
                    else:
                        in_flight = sum(
                            1 for completion in pending_memory if completion > now
                        )
                        if in_flight >= memory_limit:
                            return False, StallReason.MEMORY_THROTTLE, now + 1

            return True, SELECTED, now

        # ------------------------------------------------------------------
        def issue(w: int, now: int) -> None:
            nonlocal unfinished, issued_instructions, barrier_dirty
            i = idx[w]
            (flags, _wait, _used, write_barrier, read_barrier, stall_inc,
             fixed_latency, defined, dep_reason, _offset, _fetch, mem_inc,
             read_hold, transactions, _function, sectors
             ) = recs_of_warp[w][i]

            is_hierarchy_memory = hierarchy is not None and flags & _F_THROTTLE
            if is_hierarchy_memory:
                if sectors is None:
                    sectors = hierarchy.fallback_sectors(transactions)
                memory_completion = hierarchy.access_sectors(sectors, now)

            if flags & _F_WRITE_BAR:
                if is_hierarchy_memory:
                    clear = max(now + 1, memory_completion)
                else:
                    clear = now + mem_inc
                barrier_clear[w][write_barrier] = clear
                barrier_reason[w][write_barrier] = dep_reason
            if flags & _F_READ_BAR:
                if is_hierarchy_memory:
                    hold = max(1, min(memory_completion - now, 30))
                else:
                    hold = read_hold
                barrier_clear[w][read_barrier] = now + hold
                barrier_reason[w][read_barrier] = dep_reason

            if flags & _F_FIXED:
                regs = reg_ready[w]
                done = now + fixed_latency
                for r in defined:
                    regs[r] = done

            if hierarchy is None and flags & _F_THROTTLE:
                completion = now + mem_inc
                for _ in range(transactions):
                    heapq.heappush(pending_memory, completion)

            if flags & _F_BAR:
                sync_arrived[w] = False
                sync_released[w] = False

            issued_instructions += 1
            idx[w] = i + 1
            ready_cycle[w] = now + stall_inc
            blocked_until[w] = ready_cycle[w]
            if i + 1 >= op_count[w]:
                finished[w] = True
                unfinished -= 1
                # A barrier waiting only on this warp is now releasable.
                barrier_dirty = True

        # ------------------------------------------------------------------
        def release_barriers(now: int) -> bool:
            """Release block barriers whose live warps have all arrived."""
            released = False
            for block_id, arrived in list(barrier_arrived.items()):
                if not arrived:
                    continue
                live = [
                    w for w in warps_of_block[block_id] if not finished[w]
                ]
                if live and set(live) <= arrived:
                    for w in warps_of_block[block_id]:
                        if w in arrived:
                            sync_released[w] = True
                            blocked_until[w] = now
                            # Wake the released warp's scheduler: its
                            # skip-ahead horizon may sit past the release.
                            sched_next[w % num_schedulers] = now
                    barrier_arrived[block_id] = set()
                    released = True
            return released

        # ------------------------------------------------------------------
        def record_sample(
            scheduler: int, now: int, issued_key: Optional[Tuple[str, int]]
        ) -> None:
            nonlocal active_samples, latency_samples
            indices = scheduler_warps[scheduler]
            if not indices:
                return
            pointer = sample_pointer[scheduler]
            sampled = -1
            for probe in range(len(indices)):
                candidate = indices[(pointer + probe) % len(indices)]
                if not finished[candidate]:
                    sampled = candidate
                    sample_pointer[scheduler] = (pointer + probe + 1) % len(indices)
                    break
            if sampled < 0:
                return

            is_active = issued_key is not None
            if is_active:
                active_samples += 1
                issue_counts[issued_key] += 1
                reason = SELECTED
                function, offset = issued_key
            else:
                latency_samples += 1
                rec = recs_of_warp[sampled][idx[sampled]]
                reason = last_reason[sampled]
                if reason in (SELECTED, IDLE, StallReason.OTHER):
                    # Stale cached reason: probe in observation mode so
                    # sampling never perturbs execution.
                    _ready, reason, _recheck = check(sampled, now, commit=False)
                    if reason in (SELECTED, IDLE):
                        reason = StallReason.NOT_SELECTED
                function, offset = rec[14], rec[9]
                stall_counts[(function, offset)][reason] += 1

            if self.keep_samples:
                samples.append(
                    PCSample(
                        cycle=now,
                        sm_id=sm_id,
                        scheduler_id=scheduler,
                        warp_id=sampled,
                        function=function,
                        offset=offset,
                        reason=reason,
                        is_active=is_active,
                    )
                )

        # ------------------------------------------------------------------
        # Main loop — the object core's event-driven scan over flat arrays.
        # The ready test for unflagged ops (the common case) is inlined:
        # one flag word test plus a walk of the op's used registers.
        # ------------------------------------------------------------------
        sched_next = [0] * num_schedulers
        issued_key_by_scheduler: List[Optional[Tuple[str, int]]] = [None] * num_schedulers
        sample_period = self.sample_period
        max_cycles = self.max_cycles

        while unfinished > 0 and cycle < max_cycles:
            any_issued = False

            for scheduler in range(num_schedulers):
                issued_key_by_scheduler[scheduler] = None
                if cycle < sched_next[scheduler]:
                    continue
                indices = scheduler_warps[scheduler]
                if not indices:
                    sched_next[scheduler] = _FAR_FUTURE
                    continue
                count = len(indices)
                start = last_issued_slot[scheduler]
                chosen_slot = -1
                min_next = _FAR_FUTURE
                for probe in range(count):
                    slot = (start + probe) % count
                    w = indices[slot]
                    if finished[w]:
                        continue
                    until = blocked_until[w]
                    if cycle < until:
                        if until < min_next:
                            min_next = until
                        continue
                    # Inline of check(w, cycle) for the unflagged fast path.
                    if cycle < ready_cycle[w]:
                        ready = False
                        reason = EXEC_DEP
                        recheck = ready_cycle[w]
                    else:
                        rec = recs_of_warp[w][idx[w]]
                        if rec[0] & _CHECK_MASK:
                            ready, reason, recheck = check(w, cycle)
                        else:
                            latest = 0
                            regs = reg_ready[w]
                            for r in rec[2]:
                                t = regs[r]
                                if t > latest:
                                    latest = t
                            if cycle < latest:
                                ready = False
                                reason = EXEC_DEP
                                recheck = latest
                            else:
                                ready = True
                                reason = SELECTED
                                recheck = cycle
                    last_reason[w] = reason
                    if ready:
                        chosen_slot = slot
                        break
                    blocked_until[w] = recheck
                    if recheck < min_next:
                        min_next = recheck
                if chosen_slot >= 0:
                    w = indices[chosen_slot]
                    rec = recs_of_warp[w][idx[w]]
                    issued_key_by_scheduler[scheduler] = (rec[14], rec[9])
                    issue(w, cycle)
                    last_issued_slot[scheduler] = (chosen_slot + 1) % count
                    any_issued = True
                    # An issuing scheduler may pick another warp next cycle.
                    sched_next[scheduler] = cycle + 1
                else:
                    sched_next[scheduler] = min_next

            if barrier_dirty:
                barrier_dirty = False
                released = release_barriers(cycle)
            else:
                released = False

            if cycle >= next_sample_cycle:
                scheduler = sample_index % num_schedulers
                record_sample(scheduler, cycle, issued_key_by_scheduler[scheduler])
                sample_index += 1
                next_sample_cycle += sample_period

            if any_issued or released:
                cycle += 1
            else:
                # Nothing can issue until the earliest scheduler horizon:
                # jump ahead, but emit the latency samples in the gap.
                target = min(min(sched_next), max_cycles)
                if target <= cycle:
                    target = cycle + 1
                while next_sample_cycle < target:
                    scheduler = sample_index % num_schedulers
                    record_sample(scheduler, next_sample_cycle, None)
                    sample_index += 1
                    next_sample_cycle += sample_period
                cycle = target

        return SimulationResult(
            kernel=kernel,
            wave_cycles=cycle,
            stall_counts={key: dict(value) for key, value in stall_counts.items()},
            issue_counts=dict(issue_counts),
            active_samples=active_samples,
            latency_samples=latency_samples,
            issued_instructions=issued_instructions,
            samples=samples,
            memory=hierarchy.statistics if hierarchy is not None else None,
        )
