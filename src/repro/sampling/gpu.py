"""The whole-GPU simulation engine.

The paper's profiler observes PC samples from *every* SM across the whole
kernel run; a single simulated wave on a single SM cannot see tail waves,
grid imbalance, or cross-SM variation.  :class:`GpuSimulator` closes that
gap: it dispatches the full grid across ``architecture.num_sms`` simulated
SMs in waves — each wave fills every SM up to its per-SM block residency
limit, the final (possibly partial) tail wave spreads its remaining blocks
round-robin so some SMs idle — runs one :class:`~repro.sampling.simulator
.SMSimulator` per occupied SM per wave, and merges the per-SM
:class:`~repro.sampling.simulator.SimulationResult` outputs into a single
whole-kernel aggregate.

Time is wave-synchronous: a wave's duration is the *maximum* cycle count of
its SMs (an SM that finishes its blocks early waits for the wave, exactly
the imbalance penalty the Warp/Grid balance optimizers reason about), and
the kernel duration is the sum of wave durations.  That replaces the
``wave_cycles * waves`` extrapolation of the single-wave scope with a
measured whole-kernel cycle count that includes tail-wave and imbalance
effects.  Everything stays deterministic: block dispatch, warp traces and
sampling depend only on the launch description, never on wall-clock state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.machine import GpuArchitecture
from repro.sampling.memory import MemoryStatistics
from repro.sampling.sample import PCSample
from repro.sampling.simulator import DEFAULT_MAX_CYCLES
from repro.sampling.stall_reasons import StallReason
from repro.sampling.trace import TraceOp
from repro.sampling.vector import make_sm_simulator, resolve_simulator_backend

#: A callable producing the dynamic trace of one warp, keyed by the warp's
#: *global* id (``block_id * warps_per_block + warp_in_block``).
TraceProvider = Callable[[int], List[TraceOp]]


@dataclass
class WaveStatistics:
    """Aggregate of one dispatch wave across all SMs it occupied."""

    #: Position of the wave in the dispatch sequence (0 = first).
    index: int
    #: Grid blocks dispatched in this wave.
    blocks: int
    #: SMs that received at least one block.
    occupied_sms: int
    #: Duration of the wave: the slowest occupied SM's cycle count.
    cycles: int
    #: Cycle count of the fastest occupied SM (idle-tail visibility).
    fastest_sm_cycles: int


@dataclass
class GpuSimulationResult:
    """Merged output of a whole-GPU simulation.

    Field-compatible with :class:`~repro.sampling.simulator
    .SimulationResult` for everything the profiler aggregates
    (``stall_counts``, ``issue_counts``, sample totals,
    ``issued_instructions``, ``samples``), plus the whole-kernel quantities
    only a multi-SM simulation can measure.
    """

    kernel: str
    #: Measured whole-kernel duration: the sum of per-wave maxima.
    kernel_cycles: int
    #: Duration of the first (full) wave — the quantity the single-wave
    #: scope reports, kept for comparison and for ``LaunchStatistics``.
    wave_cycles: int
    #: Per-wave dispatch statistics, in dispatch order.
    waves: List[WaveStatistics]
    #: (function, offset) -> {reason: latency sample count}, all SMs merged.
    stall_counts: Dict[Tuple[str, int], Dict[StallReason, int]]
    #: (function, offset) -> active (issue) sample count, all SMs merged.
    issue_counts: Dict[Tuple[str, int], int]
    active_samples: int
    latency_samples: int
    issued_instructions: int
    #: Total cycles walked by the per-SM simulators (the sum of every SM's
    #: cycle count across every wave) — the simulator-throughput
    #: denominator, as opposed to :attr:`kernel_cycles` which is wall time
    #: on the simulated GPU.
    simulated_sm_cycles: int = 0
    #: Raw samples (kept only when requested); cycles are rebased onto the
    #: whole-kernel timeline, ``sm_id`` identifies the simulated SM.
    samples: List[PCSample] = field(default_factory=list)
    #: Memory-hierarchy counters merged across every SM of every wave
    #: (``None`` under the flat memory model).
    memory: Optional[MemoryStatistics] = None

    @property
    def total_samples(self) -> int:
        return self.active_samples + self.latency_samples

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def tail_blocks(self) -> int:
        """Blocks dispatched in the final wave (== full capacity when the
        grid divides evenly)."""
        return self.waves[-1].blocks if self.waves else 0

    @property
    def extrapolated_kernel_cycles(self) -> float:
        """What the single-wave scope would have estimated from wave 0."""
        if not self.waves:
            return 0.0
        capacity = max(1, self.waves[0].blocks)
        total_blocks = sum(wave.blocks for wave in self.waves)
        return self.wave_cycles * (total_blocks / capacity)


class GpuSimulator:
    """Simulates every SM of the GPU across every dispatch wave."""

    def __init__(
        self,
        architecture: GpuArchitecture,
        sample_period: int = 32,
        keep_samples: bool = False,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        memory_model: str = "flat",
        simulator_backend: Optional[str] = None,
    ):
        self.architecture = architecture
        self.sample_period = sample_period
        self.keep_samples = keep_samples
        self.max_cycles = max_cycles
        self.memory_model = memory_model
        self.simulator_backend = resolve_simulator_backend(simulator_backend)
        self._sm_simulator = make_sm_simulator(
            architecture,
            sample_period=sample_period,
            keep_samples=keep_samples,
            max_cycles=max_cycles,
            memory_model=memory_model,
            simulator_backend=self.simulator_backend,
        )

    # ------------------------------------------------------------------
    def simulate(
        self,
        kernel: str,
        trace_for_warp: TraceProvider,
        grid_blocks: int,
        warps_per_block: int,
        blocks_per_sm: int,
    ) -> GpuSimulationResult:
        """Run the whole grid and return the merged kernel aggregate.

        ``blocks_per_sm`` is the per-SM residency cap from hardware
        resources (``OccupancyResult.blocks_per_sm_limit``), *not* the
        grid-clamped figure: grid-limited launches simply under-fill their
        single wave.
        """
        if grid_blocks < 1:
            raise ValueError("grid_blocks must be positive")
        if warps_per_block < 1:
            raise ValueError("warps_per_block must be positive")
        blocks_per_sm = max(1, blocks_per_sm)
        num_sms = self.architecture.num_sms
        capacity = num_sms * blocks_per_sm

        stall_counts: Dict[Tuple[str, int], Dict[StallReason, int]] = {}
        issue_counts: Dict[Tuple[str, int], int] = {}
        samples: List[PCSample] = []
        active_samples = 0
        latency_samples = 0
        issued_instructions = 0
        waves: List[WaveStatistics] = []
        kernel_cycles = 0
        first_wave_cycles = 0
        simulated_sm_cycles = 0
        memory = MemoryStatistics() if self.memory_model == "hierarchy" else None

        for wave_index in range(math.ceil(grid_blocks / capacity)):
            wave_start = wave_index * capacity
            wave_blocks = range(wave_start, min(grid_blocks, wave_start + capacity))
            # Round-robin dispatch spreads a partial tail wave across SMs the
            # way the hardware's greedy block scheduler would, leaving the
            # remaining SMs idle for the wave.
            blocks_of_sm: List[List[int]] = [[] for _ in range(num_sms)]
            for position, block in enumerate(wave_blocks):
                blocks_of_sm[position % num_sms].append(block)

            wave_cycles = 0
            fastest = None
            occupied = 0
            for sm_id, resident_blocks in enumerate(blocks_of_sm):
                if not resident_blocks:
                    continue
                occupied += 1
                traces: List[List[TraceOp]] = []
                block_of_warp: List[int] = []
                for local_block, block in enumerate(resident_blocks):
                    for warp_in_block in range(warps_per_block):
                        traces.append(
                            trace_for_warp(block * warps_per_block + warp_in_block)
                        )
                        block_of_warp.append(local_block)
                result = self._sm_simulator.simulate(
                    kernel, traces, block_of_warp, sm_id=sm_id
                )

                for key, reasons in result.stall_counts.items():
                    merged = stall_counts.setdefault(key, {})
                    for reason, count in reasons.items():
                        merged[reason] = merged.get(reason, 0) + count
                for key, count in result.issue_counts.items():
                    issue_counts[key] = issue_counts.get(key, 0) + count
                active_samples += result.active_samples
                latency_samples += result.latency_samples
                issued_instructions += result.issued_instructions
                simulated_sm_cycles += result.wave_cycles
                if memory is not None and result.memory is not None:
                    memory.merge(result.memory)
                if self.keep_samples:
                    samples.extend(
                        replace(sample, cycle=sample.cycle + kernel_cycles)
                        for sample in result.samples
                    )

                if result.wave_cycles > wave_cycles:
                    wave_cycles = result.wave_cycles
                if fastest is None or result.wave_cycles < fastest:
                    fastest = result.wave_cycles

            waves.append(
                WaveStatistics(
                    index=wave_index,
                    blocks=len(wave_blocks),
                    occupied_sms=occupied,
                    cycles=wave_cycles,
                    fastest_sm_cycles=fastest or 0,
                )
            )
            if wave_index == 0:
                first_wave_cycles = wave_cycles
            kernel_cycles += wave_cycles

        return GpuSimulationResult(
            kernel=kernel,
            kernel_cycles=kernel_cycles,
            wave_cycles=first_wave_cycles,
            waves=waves,
            stall_counts=stall_counts,
            issue_counts=issue_counts,
            active_samples=active_samples,
            latency_samples=latency_samples,
            issued_instructions=issued_instructions,
            simulated_sm_cycles=simulated_sm_cycles,
            samples=samples,
            memory=memory,
        )
