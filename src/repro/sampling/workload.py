"""Workload specifications.

The reproduction has no functional GPU interpreter: instead of executing
values, each synthetic kernel is paired with a :class:`WorkloadSpec` that
describes the *dynamic behaviour* needed to walk a realistic execution trace
out of the control flow graph:

* loop trip counts (per loop header line, optionally varying per warp to
  model imbalanced workloads such as the bfs benchmark in Section 6.2),
* taken probabilities for data-dependent forward branches,
* call targets of ``CAL`` instructions (our ISA does not encode callees),
* memory behaviour: global-memory latency scaling, lines whose accesses are
  uncoalesced (more transactions per access, higher latency), and constant
  memory hit behaviour,
* a deterministic seed so traces — and therefore profiles — are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Set, Union

#: A trip count may be a plain integer or a callable of (warp_id, num_warps).
TripCount = Union[int, Callable[[int, int], int]]


@dataclass
class WorkloadSpec:
    """Dynamic behaviour of one kernel for trace generation."""

    name: str = "default"
    #: Trip count of each loop, keyed by the loop header's source line.
    loop_trip_counts: Dict[int, TripCount] = field(default_factory=dict)
    #: Trip count used for loops without an explicit entry.
    default_trip_count: int = 4
    #: Probability that a data-dependent forward branch is taken, keyed by
    #: the branch instruction's source line.
    branch_taken: Dict[int, float] = field(default_factory=dict)
    #: Default taken probability for unlisted forward branches.
    default_branch_taken: float = 0.5
    #: Callee function name for each ``CAL`` site, keyed by source line.
    call_targets: Dict[int, str] = field(default_factory=dict)
    #: Source lines whose global-memory accesses are uncoalesced.
    uncoalesced_lines: Set[int] = field(default_factory=set)
    #: Memory transactions per access for uncoalesced lines.
    uncoalesced_transactions: int = 8
    #: Multiplier applied to global/local memory latencies.
    memory_latency_scale: float = 1.0
    #: Multiplier applied to constant memory latency (values > 1 model
    #: constant-cache misses from divergent indices).
    constant_latency_scale: float = 1.0
    #: Extra latency scale for shared memory (bank conflicts).
    shared_latency_scale: float = 1.0
    #: Deterministic seed for per-warp randomness.
    seed: int = 2021
    #: Hard cap on the dynamic trace length per warp (protects against
    #: accidentally unbounded loops in workload definitions).
    max_trace_ops: int = 20000

    # ------------------------------------------------------------------
    # Queries used by the trace generator
    # ------------------------------------------------------------------
    def trip_count(self, header_line: Optional[int], warp_id: int, num_warps: int) -> int:
        """Trip count of the loop whose header maps to ``header_line``."""
        value: TripCount = self.default_trip_count
        if header_line is not None and header_line in self.loop_trip_counts:
            value = self.loop_trip_counts[header_line]
        if callable(value):
            value = value(warp_id, num_warps)
        return max(0, int(value))

    def branch_probability(self, line: Optional[int]) -> float:
        """Taken probability of the forward branch at ``line``."""
        if line is not None and line in self.branch_taken:
            return self.branch_taken[line]
        return self.default_branch_taken

    def call_target(self, line: Optional[int]) -> Optional[str]:
        """Name of the device function called at ``line``, if known."""
        if line is None:
            return None
        return self.call_targets.get(line)

    def transactions(self, line: Optional[int]) -> int:
        """Memory transactions issued per access at ``line``."""
        if line is not None and line in self.uncoalesced_lines:
            return self.uncoalesced_transactions
        return 1

    def rng_for_warp(self, warp_id: int) -> random.Random:
        """A deterministic random stream for one warp."""
        return random.Random((self.seed * 1000003 + warp_id) & 0xFFFFFFFF)

    # ------------------------------------------------------------------
    # Derivation helpers used by optimization transforms
    # ------------------------------------------------------------------
    def copy(self, **overrides) -> "WorkloadSpec":
        """A shallow copy with selected fields replaced."""
        data = dict(
            name=self.name,
            loop_trip_counts=dict(self.loop_trip_counts),
            default_trip_count=self.default_trip_count,
            branch_taken=dict(self.branch_taken),
            default_branch_taken=self.default_branch_taken,
            call_targets=dict(self.call_targets),
            uncoalesced_lines=set(self.uncoalesced_lines),
            uncoalesced_transactions=self.uncoalesced_transactions,
            memory_latency_scale=self.memory_latency_scale,
            constant_latency_scale=self.constant_latency_scale,
            shared_latency_scale=self.shared_latency_scale,
            seed=self.seed,
            max_trace_ops=self.max_trace_ops,
        )
        data.update(overrides)
        return WorkloadSpec(**data)
