"""Workload specifications.

The reproduction has no functional GPU interpreter: instead of executing
values, each synthetic kernel is paired with a :class:`WorkloadSpec` that
describes the *dynamic behaviour* needed to walk a realistic execution trace
out of the control flow graph:

* loop trip counts (per loop header line, optionally varying per warp to
  model imbalanced workloads such as the bfs benchmark in Section 6.2),
* taken probabilities for data-dependent forward branches,
* call targets of ``CAL`` instructions (our ISA does not encode callees),
* memory behaviour: global-memory latency scaling, lines whose accesses are
  uncoalesced (more transactions per access, higher latency), and constant
  memory hit behaviour,
* a deterministic seed so traces — and therefore profiles — are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Set, Union

#: A trip count may be a plain integer or a callable of (warp_id, num_warps).
TripCount = Union[int, Callable[[int, int], int]]


@dataclass
class WorkloadSpec:
    """Dynamic behaviour of one kernel for trace generation."""

    name: str = "default"
    #: Trip count of each loop, keyed by the loop header's source line.
    loop_trip_counts: Dict[int, TripCount] = field(default_factory=dict)
    #: Trip count used for loops without an explicit entry.
    default_trip_count: int = 4
    #: Probability that a data-dependent forward branch is taken, keyed by
    #: the branch instruction's source line.
    branch_taken: Dict[int, float] = field(default_factory=dict)
    #: Default taken probability for unlisted forward branches.
    default_branch_taken: float = 0.5
    #: Callee function name for each ``CAL`` site, keyed by source line.
    call_targets: Dict[int, str] = field(default_factory=dict)
    #: Source lines whose global-memory accesses are uncoalesced.
    uncoalesced_lines: Set[int] = field(default_factory=set)
    #: Memory transactions per access for uncoalesced lines.
    uncoalesced_transactions: int = 8
    #: Total bytes the kernel's global accesses cycle through.  Working sets
    #: smaller than the L1/L2 become cache-resident under the hierarchy
    #: memory model; larger ones stream through DRAM.
    working_set_bytes: int = 32 * 1024 * 1024
    #: Per-thread access stride in bytes, keyed by the access's source line
    #: (4 = unit-stride floats, fully coalesced; 32+ = one sector per
    #: thread, fully uncoalesced).
    access_strides: Dict[int, int] = field(default_factory=dict)
    #: Stride used for global accesses without an explicit entry.
    default_access_stride_bytes: int = 4
    #: Multiplier applied to global/local memory latencies.
    memory_latency_scale: float = 1.0
    #: Multiplier applied to constant memory latency (values > 1 model
    #: constant-cache misses from divergent indices).
    constant_latency_scale: float = 1.0
    #: Extra latency scale for shared memory (bank conflicts).
    shared_latency_scale: float = 1.0
    #: Deterministic seed for per-warp randomness.
    seed: int = 2021
    #: Hard cap on the dynamic trace length per warp (protects against
    #: accidentally unbounded loops in workload definitions).
    max_trace_ops: int = 20000

    # ------------------------------------------------------------------
    # Queries used by the trace generator
    # ------------------------------------------------------------------
    def trip_count(self, header_line: Optional[int], warp_id: int, num_warps: int) -> int:
        """Trip count of the loop whose header maps to ``header_line``."""
        value: TripCount = self.default_trip_count
        if header_line is not None and header_line in self.loop_trip_counts:
            value = self.loop_trip_counts[header_line]
        if callable(value):
            value = value(warp_id, num_warps)
        return max(0, int(value))

    def branch_probability(self, line: Optional[int]) -> float:
        """Taken probability of the forward branch at ``line``."""
        if line is not None and line in self.branch_taken:
            return self.branch_taken[line]
        return self.default_branch_taken

    def call_target(self, line: Optional[int]) -> Optional[str]:
        """Name of the device function called at ``line``, if known."""
        if line is None:
            return None
        return self.call_targets.get(line)

    def transactions(self, line: Optional[int]) -> int:
        """Memory transactions issued per access at ``line``."""
        if line is not None and line in self.uncoalesced_lines:
            return self.uncoalesced_transactions
        return 1

    def access_stride(self, line: Optional[int], sector_bytes: int = 32,
                      warp_size: int = 32) -> int:
        """Per-thread stride in bytes of the access at ``line``.

        Explicit :attr:`access_strides` entries win.  Lines marked
        uncoalesced derive their stride from :attr:`uncoalesced_transactions`,
        whose unit is 128-byte transactions (the flat model's): ``N``
        transactions means the warp's footprint spans ``N`` cache lines, a
        per-thread stride of ``N * 128 / warp_size`` bytes — so the
        hierarchy model's coalescer reproduces the flat model's transaction
        fan-out.
        """
        if line is not None and line in self.access_strides:
            return max(1, self.access_strides[line])
        if line is not None and line in self.uncoalesced_lines:
            line_bytes = 4 * sector_bytes  # one 128-byte transaction
            return max(
                self.default_access_stride_bytes,
                line_bytes * self.uncoalesced_transactions // warp_size,
            )
        return max(1, self.default_access_stride_bytes)

    def address_for(self, warp_id: int, access_index: int, stride: int,
                    num_warps: int, warp_size: int = 32) -> int:
        """Deterministic base address of one warp's ``access_index``-th access.

        Each warp streams through its own contiguous partition of the
        working set (wrapping when it runs off the end), so a working set
        smaller than a cache level yields reuse and a larger one streams —
        without consuming any randomness, which keeps the flat model's
        traces bit-identical.
        """
        request_bytes = max(1, warp_size * stride)
        working_set = max(request_bytes, self.working_set_bytes)
        partition = max(request_bytes, working_set // max(1, num_warps))
        base = (warp_id * partition) % working_set
        return (base + (access_index * request_bytes) % partition) % working_set

    def rng_for_warp(self, warp_id: int) -> random.Random:
        """A deterministic random stream for one warp."""
        return random.Random((self.seed * 1000003 + warp_id) & 0xFFFFFFFF)

    # ------------------------------------------------------------------
    # Serialization (requests carrying workloads cross process boundaries)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-friendly form (inverse: :meth:`from_dict`).

        Callable trip counts describe behaviour, not data, and cannot cross
        a serialization boundary; a spec holding one raises
        :class:`~repro.api.schema.ApiSerializationError` — send such
        workloads through the inline path (or a registry case id) instead.
        """
        from repro.api.schema import ApiSerializationError

        trip_counts = {}
        for line, value in self.loop_trip_counts.items():
            if callable(value):
                raise ApiSerializationError(
                    f"workload {self.name!r} has a callable trip count for loop "
                    f"line {line}; callable workload parameters cannot be "
                    "serialized — use a registry case or the inline path"
                )
            trip_counts[str(line)] = int(value)
        return {
            "name": self.name,
            "loop_trip_counts": trip_counts,
            "default_trip_count": self.default_trip_count,
            "branch_taken": {str(line): prob for line, prob in self.branch_taken.items()},
            "default_branch_taken": self.default_branch_taken,
            "call_targets": {str(line): name for line, name in self.call_targets.items()},
            "uncoalesced_lines": sorted(self.uncoalesced_lines),
            "uncoalesced_transactions": self.uncoalesced_transactions,
            "working_set_bytes": self.working_set_bytes,
            "access_strides": {
                str(line): stride for line, stride in self.access_strides.items()
            },
            "default_access_stride_bytes": self.default_access_stride_bytes,
            "memory_latency_scale": self.memory_latency_scale,
            "constant_latency_scale": self.constant_latency_scale,
            "shared_latency_scale": self.shared_latency_scale,
            "seed": self.seed,
            "max_trace_ops": self.max_trace_ops,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        return cls(
            name=payload.get("name", "default"),
            loop_trip_counts={
                int(line): count
                for line, count in (payload.get("loop_trip_counts") or {}).items()
            },
            default_trip_count=payload.get("default_trip_count", 4),
            branch_taken={
                int(line): prob for line, prob in (payload.get("branch_taken") or {}).items()
            },
            default_branch_taken=payload.get("default_branch_taken", 0.5),
            call_targets={
                int(line): name for line, name in (payload.get("call_targets") or {}).items()
            },
            uncoalesced_lines=set(payload.get("uncoalesced_lines") or ()),
            uncoalesced_transactions=payload.get("uncoalesced_transactions", 8),
            working_set_bytes=payload.get("working_set_bytes", 32 * 1024 * 1024),
            access_strides={
                int(line): stride
                for line, stride in (payload.get("access_strides") or {}).items()
            },
            default_access_stride_bytes=payload.get("default_access_stride_bytes", 4),
            memory_latency_scale=payload.get("memory_latency_scale", 1.0),
            constant_latency_scale=payload.get("constant_latency_scale", 1.0),
            shared_latency_scale=payload.get("shared_latency_scale", 1.0),
            seed=payload.get("seed", 2021),
            max_trace_ops=payload.get("max_trace_ops", 20000),
        )

    # ------------------------------------------------------------------
    # Derivation helpers used by optimization transforms
    # ------------------------------------------------------------------
    def copy(self, **overrides) -> "WorkloadSpec":
        """A shallow copy with selected fields replaced."""
        data = dict(
            name=self.name,
            loop_trip_counts=dict(self.loop_trip_counts),
            default_trip_count=self.default_trip_count,
            branch_taken=dict(self.branch_taken),
            default_branch_taken=self.default_branch_taken,
            call_targets=dict(self.call_targets),
            uncoalesced_lines=set(self.uncoalesced_lines),
            uncoalesced_transactions=self.uncoalesced_transactions,
            working_set_bytes=self.working_set_bytes,
            access_strides=dict(self.access_strides),
            default_access_stride_bytes=self.default_access_stride_bytes,
            memory_latency_scale=self.memory_latency_scale,
            constant_latency_scale=self.constant_latency_scale,
            shared_latency_scale=self.shared_latency_scale,
            seed=self.seed,
            max_trace_ops=self.max_trace_ops,
        )
        data.update(overrides)
        return WorkloadSpec(**data)
