"""The profiler facade.

The paper's profiler collects PC samples and kernel launch statistics at
runtime, attributes them to the launch context, and dumps profiles plus
CUBINs for offline analysis.  Our :class:`Profiler` plays the same role on
top of the simulator: given a CUBIN, a kernel, a launch configuration and a
workload specification it

1. recovers the program structure (the static-analysis pre-pass it shares
   with the advisor),
2. computes the occupancy of the launch,
3. generates per-warp traces and simulates the launch — either one
   representative wave on one SM (``simulation_scope="single_wave"``, the
   fast default) or the full grid across every SM in dispatch waves
   (``simulation_scope="whole_gpu"``, which *measures* tail-wave and
   cross-SM imbalance effects instead of extrapolating),
4. aggregates the samples into a :class:`~repro.sampling.sample.KernelProfile`
   with launch statistics attached, and
5. can dump/load profiles as JSON for offline analysis.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.arch.machine import GpuArchitecture, VoltaV100, get_architecture
from repro.arch.occupancy import OccupancyCalculator, OccupancyResult
from repro.cubin.binary import Cubin
from repro.sampling.gpu import GpuSimulationResult, GpuSimulator
from repro.sampling.memory import MEMORY_MODELS, check_memory_model
from repro.sampling.sample import KernelProfile, LaunchConfig, LaunchStatistics
from repro.sampling.simulator import DEFAULT_MAX_CYCLES, SimulationResult
from repro.sampling.trace import generate_warp_trace
from repro.sampling.vector import make_sm_simulator, resolve_simulator_backend
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import ProgramStructure, build_program_structure

#: The two simulation scopes: one representative wave on one SM with
#: ``wave_cycles * waves`` extrapolation, or the full grid across every SM.
SIMULATION_SCOPES = ("single_wave", "whole_gpu")


def check_simulation_scope(scope: str) -> str:
    """``scope`` if valid, else a uniform ``ValueError``."""
    if scope not in SIMULATION_SCOPES:
        raise ValueError(
            f"unknown simulation scope {scope!r}; expected one of {SIMULATION_SCOPES}"
        )
    return scope


def representative_blocks(grid_blocks: int, blocks_per_sm: int) -> List[int]:
    """Distinct grid block ids spread across the grid for one simulated SM.

    The resident-block count is clamped to the grid: a launch whose per-SM
    residency exceeds its grid must not duplicate block ids (duplicated ids
    would simulate more resident blocks than the grid has).
    """
    count = max(1, min(blocks_per_sm, grid_blocks))
    return [(i * grid_blocks) // count for i in range(count)]


@dataclass
class ProfiledKernel:
    """Everything GPA's dynamic analyzer needs about one kernel launch."""

    kernel: str
    profile: KernelProfile
    structure: ProgramStructure
    cubin: Cubin
    config: LaunchConfig
    workload: WorkloadSpec
    occupancy: OccupancyResult
    #: Raw simulator output (:class:`~repro.sampling.simulator
    #: .SimulationResult` for the single-wave scope, :class:`~repro.sampling
    #: .gpu.GpuSimulationResult` for the whole-GPU scope); ``None`` when the
    #: profile was replayed from the pipeline's on-disk cache instead of
    #: being simulated.
    simulation: Optional[Union[SimulationResult, GpuSimulationResult]] = None

    @property
    def kernel_cycles(self) -> float:
        """Estimated kernel duration in cycles."""
        return self.profile.statistics.kernel_cycles


class Profiler:
    """Runs kernel launches on the simulator and produces profiles."""

    def __init__(
        self,
        architecture: Optional[GpuArchitecture] = None,
        sample_period: int = 32,
        keep_samples: bool = False,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        simulation_scope: str = "single_wave",
        memory_model: str = "flat",
        simulator_backend: Optional[str] = None,
    ):
        self.architecture = architecture or VoltaV100
        self.sample_period = sample_period
        self.keep_samples = keep_samples
        self.max_cycles = max_cycles
        self.simulation_scope = check_simulation_scope(simulation_scope)
        self.memory_model = check_memory_model(memory_model)
        #: The resolved simulator core ("vector" or "object") every launch
        #: profiled through this instance runs on.  Resolution happens once,
        #: here, so the cache key and the simulation always agree.
        self.simulator_backend = resolve_simulator_backend(simulator_backend)

    # ------------------------------------------------------------------
    def profile(
        self,
        cubin: Cubin,
        kernel_name: str,
        config: LaunchConfig,
        workload: Optional[WorkloadSpec] = None,
    ) -> ProfiledKernel:
        """Profile one kernel launch."""
        workload = workload or WorkloadSpec()
        architecture = self._architecture_for(cubin)
        structure = build_program_structure(cubin)
        kernel_function = cubin.function(kernel_name)
        if not kernel_function.is_kernel:
            raise ValueError(f"{kernel_name!r} is a device function, not a kernel")

        occupancy = self.occupancy_for(cubin, kernel_name, config, architecture)

        warps_per_block = math.ceil(config.threads_per_block / architecture.warp_size)
        total_grid_warps = config.grid_blocks * warps_per_block

        def trace_for_warp(global_warp_id: int):
            return generate_warp_trace(
                structure,
                kernel_name,
                workload,
                architecture,
                warp_id=global_warp_id,
                num_warps=total_grid_warps,
            )

        if self.simulation_scope == "whole_gpu":
            simulation = GpuSimulator(
                architecture,
                sample_period=self.sample_period,
                keep_samples=self.keep_samples,
                max_cycles=self.max_cycles,
                memory_model=self.memory_model,
                simulator_backend=self.simulator_backend,
            ).simulate(
                kernel_name,
                trace_for_warp,
                grid_blocks=config.grid_blocks,
                warps_per_block=warps_per_block,
                blocks_per_sm=occupancy.blocks_per_sm_limit,
            )
            wave_cycles = simulation.wave_cycles
            # Measured whole-kernel duration, not an extrapolation.
            kernel_cycles: float = simulation.kernel_cycles
        else:
            # Pick representative blocks spread across the grid so that
            # per-warp workload variation (imbalance) is visible to the one
            # simulated SM.
            traces = []
            block_of_warp = []
            blocks = representative_blocks(config.grid_blocks, occupancy.blocks_per_sm)
            for local_block, grid_block in enumerate(blocks):
                for warp_in_block in range(warps_per_block):
                    traces.append(
                        trace_for_warp(grid_block * warps_per_block + warp_in_block)
                    )
                    block_of_warp.append(local_block)

            simulator = make_sm_simulator(
                architecture,
                sample_period=self.sample_period,
                keep_samples=self.keep_samples,
                max_cycles=self.max_cycles,
                memory_model=self.memory_model,
                simulator_backend=self.simulator_backend,
            )
            simulation = simulator.simulate(kernel_name, traces, block_of_warp)
            wave_cycles = simulation.wave_cycles
            kernel_cycles = simulation.wave_cycles * max(1.0, occupancy.waves)

        statistics = LaunchStatistics(
            kernel=kernel_name,
            config=config,
            registers_per_thread=kernel_function.registers_per_thread,
            blocks_per_sm=occupancy.blocks_per_sm,
            warps_per_sm=occupancy.warps_per_sm,
            warps_per_scheduler=occupancy.warps_per_scheduler,
            occupancy=occupancy.occupancy,
            occupancy_limiter=occupancy.limiter,
            waves=occupancy.waves,
            wave_cycles=wave_cycles,
            kernel_cycles=kernel_cycles,
            sample_period=self.sample_period,
            simulation_scope=self.simulation_scope,
            memory_model=self.memory_model,
            memory=simulation.memory,
        )

        # Record in (function, offset) order — the canonical order of the
        # JSON serialization — so a profile replayed from the pipeline cache
        # iterates identically to a freshly simulated one (downstream
        # tie-breaks depend on dict insertion order).
        profile = KernelProfile(kernel=kernel_name, statistics=statistics)
        keys = sorted(set(simulation.stall_counts) | set(simulation.issue_counts))
        for function, offset in keys:
            for reason, count in simulation.stall_counts.get((function, offset), {}).items():
                profile.record_stall(function, offset, reason, count)
            issued = simulation.issue_counts.get((function, offset), 0)
            if issued:
                profile.record_issue(function, offset, issued)

        return ProfiledKernel(
            kernel=kernel_name,
            profile=profile,
            structure=structure,
            cubin=cubin,
            config=config,
            workload=workload,
            occupancy=occupancy,
            simulation=simulation,
        )

    # ------------------------------------------------------------------
    def occupancy_for(
        self,
        cubin: Cubin,
        kernel_name: str,
        config: LaunchConfig,
        architecture: Optional[GpuArchitecture] = None,
    ) -> OccupancyResult:
        """Occupancy of one launch (static, no simulation involved)."""
        architecture = architecture or self._architecture_for(cubin)
        kernel_function = cubin.function(kernel_name)
        shared_memory = max(config.shared_memory_bytes, kernel_function.shared_memory_bytes)
        return OccupancyCalculator(architecture).calculate(
            grid_blocks=config.grid_blocks,
            threads_per_block=config.threads_per_block,
            registers_per_thread=kernel_function.registers_per_thread,
            shared_memory_per_block=shared_memory,
        )

    # ------------------------------------------------------------------
    def _architecture_for(self, cubin: Cubin) -> GpuArchitecture:
        """Pick the architecture model matching the binary's arch flag."""
        if cubin.arch_flag == self.architecture.arch_flag:
            return self.architecture
        try:
            return get_architecture(cubin.arch_flag)
        except KeyError:
            return self.architecture

    # ------------------------------------------------------------------
    # Offline dump / load (the paper's profiler writes profiles to disk and
    # the advisor analyzes them later).
    # ------------------------------------------------------------------
    @staticmethod
    def dump(profiled: ProfiledKernel, directory: Union[str, Path]) -> Path:
        """Write the profile and the binary next to each other for offline use."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        profile_path = directory / f"{profiled.kernel}.profile.json"
        # Module names may carry path separators (e.g. "rodinia/hotspot").
        cubin_path = directory / f"{profiled.cubin.module_name}.json"
        cubin_path.parent.mkdir(parents=True, exist_ok=True)
        profile_path.write_text(profiled.profile.to_json(indent=2))
        cubin_path.write_text(profiled.cubin.to_json(indent=2))
        return profile_path

    @staticmethod
    def load_profile(path: Union[str, Path]) -> KernelProfile:
        """Load a profile dumped by :meth:`dump`."""
        return KernelProfile.from_json(Path(path).read_text())
