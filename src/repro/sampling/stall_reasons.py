"""Stall reasons reported with PC samples.

The names follow CUPTI's ``CUpti_ActivityPCSamplingStallReason`` values at
the granularity GPA uses.  Section 4 of the paper divides them into

* *dependent* stalls — memory dependency, execution dependency and
  synchronization — which are caused by a *source* instruction and must be
  attributed backwards by the instruction blamer, and
* *self* stalls — e.g. memory throttle or instruction fetch — which are
  caused by the sampled instruction itself.
"""

from __future__ import annotations

import enum


class StallReason(enum.Enum):
    """Why a sampled warp could not issue (or ``SELECTED`` when it issued)."""

    #: The sampled warp issued an instruction this cycle.
    SELECTED = "selected"
    #: The warp was ready but the scheduler picked another warp.
    NOT_SELECTED = "not_selected"
    #: Waiting for a value produced by a global/local/constant memory load.
    MEMORY_DEPENDENCY = "memory_dependency"
    #: Waiting for a fixed-latency arithmetic result, a shared-memory value
    #: or a WAR hazard (the "short scoreboard" family).
    EXECUTION_DEPENDENCY = "execution_dependency"
    #: Waiting at a block-wide barrier (``__syncthreads``).
    SYNCHRONIZATION = "synchronization"
    #: The memory pipeline cannot accept more transactions.
    MEMORY_THROTTLE = "memory_throttle"
    #: Waiting for the next instruction to be fetched.
    INSTRUCTION_FETCH = "instruction_fetch"
    #: The target functional pipeline is busy.
    PIPELINE_BUSY = "pipeline_busy"
    #: Waiting on a texture request.
    TEXTURE = "texture"
    #: The warp has not yet been launched or already exited (drain/fill).
    IDLE = "idle"
    #: Anything else.
    OTHER = "other"

    @property
    def is_dependent(self) -> bool:
        """Stalls attributed to source instructions by the instruction blamer.

        "Among the stall reasons, memory dependency, synchronization, and
        execution dependency stalls are caused by the source instructions
        rather than the instructions that suffer from stalls." (Section 4)
        """
        return self in (
            StallReason.MEMORY_DEPENDENCY,
            StallReason.EXECUTION_DEPENDENCY,
            StallReason.SYNCHRONIZATION,
        )

    @property
    def is_stall(self) -> bool:
        """Whether a sample with this reason counts as a stall sample."""
        return self not in (StallReason.SELECTED,)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DetailedStallReason(enum.Enum):
    """Fine-grained classification of dependent stalls (Figure 5).

    After attribution, memory dependencies are split by the address space of
    the source instruction and execution dependencies by its opcode family.
    """

    # Memory dependency refinements (Figure 5a).
    GLOBAL_MEMORY_DEPENDENCY = "global_memory_dependency"
    LOCAL_MEMORY_DEPENDENCY = "local_memory_dependency"
    CONSTANT_MEMORY_DEPENDENCY = "constant_memory_dependency"
    # Execution dependency refinements (Figure 5b).
    SHARED_MEMORY_DEPENDENCY = "shared_memory_dependency"
    ARITHMETIC_DEPENDENCY = "arithmetic_dependency"
    WAR_DEPENDENCY = "war_dependency"
    # Synchronization keeps its own bucket.
    SYNCHRONIZATION = "synchronization"
    # Self stalls keep their coarse reason.
    SELF = "self"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
