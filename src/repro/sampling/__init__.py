"""PC sampling substrate (CUPTI + V100 hardware substitute).

The paper collects PC samples with CUPTI on a Volta V100: every sampling
period each SM records, for one of its four warp schedulers (round-robin), an
*active* sample if the scheduler issued an instruction that cycle or a
*latency* sample otherwise, plus the sampled warp's program counter and stall
reason (Figure 1).  GPA consumes only this sample stream and the kernel
launch statistics.

Because the reproduction has no GPU, this package provides a warp-scheduler
level execution simulator that produces the same interface:

* :mod:`repro.sampling.stall_reasons` — the CUPTI-style stall reason set;
* :mod:`repro.sampling.sample` — samples, per-instruction aggregates,
  kernel profiles and launch statistics;
* :mod:`repro.sampling.workload` — workload specifications (loop trip
  counts, branch behaviour, memory coalescing, call targets) that drive
  dynamic traces without needing a functional value interpreter;
* :mod:`repro.sampling.trace` — per-warp dynamic instruction traces walked
  out of the control flow graph;
* :mod:`repro.sampling.memory` — the per-SM memory-hierarchy model
  (warp-access coalescing into 32-byte sectors, L1/L2 caches, MSHR-limited
  misses, bandwidth-limited DRAM) behind ``memory_model="hierarchy"``;
* :mod:`repro.sampling.simulator` — the SM simulator (scoreboards, barrier
  wait masks, block-wide synchronization, memory throttling, instruction
  fetch pressure, loose round-robin scheduling, observation-neutral PC
  sampling);
* :mod:`repro.sampling.gpu` — the whole-GPU engine that dispatches the full
  grid across every SM in waves and merges the per-SM results;
* :mod:`repro.sampling.profiler` — the profiler facade that runs kernel
  launches (under either simulation scope) and dumps profiles for offline
  analysis.
"""

from repro.sampling.stall_reasons import StallReason
from repro.sampling.sample import (
    InstructionSamples,
    KernelProfile,
    LaunchConfig,
    LaunchStatistics,
    PCSample,
)
from repro.sampling.workload import WorkloadSpec
from repro.sampling.memory import (
    MEMORY_MODELS,
    MemoryHierarchy,
    MemoryStatistics,
    SectorCache,
)
from repro.sampling.trace import TraceOp, generate_warp_trace
from repro.sampling.simulator import SimulationResult, SMSimulator
from repro.sampling.gpu import GpuSimulationResult, GpuSimulator, WaveStatistics
from repro.sampling.profiler import (
    SIMULATION_SCOPES,
    ProfiledKernel,
    Profiler,
    representative_blocks,
)

__all__ = [
    "GpuSimulationResult",
    "GpuSimulator",
    "InstructionSamples",
    "MEMORY_MODELS",
    "MemoryHierarchy",
    "MemoryStatistics",
    "SectorCache",
    "KernelProfile",
    "LaunchConfig",
    "LaunchStatistics",
    "PCSample",
    "ProfiledKernel",
    "Profiler",
    "SIMULATION_SCOPES",
    "SimulationResult",
    "SMSimulator",
    "StallReason",
    "TraceOp",
    "WaveStatistics",
    "WorkloadSpec",
    "generate_warp_trace",
    "representative_blocks",
]
