"""The committed real-SASS corpus: lintable registry of disassembly listings.

Unlike the synthetic benchmark registry (:mod:`repro.workloads.registry`),
corpus cases have no :class:`SetupBuilder` — they *are* the binary, as a
committed listing under ``tests/sass/corpus/``.  They therefore live in this
dedicated manifest rather than the simulation registry: ``gpa-advise lint
--sass-corpus`` sweeps them, the golden reports under ``tests/sass/golden/``
pin their byte-exact lint output, and ``tools/check_sass_corpus.py`` keeps
listing / golden / manifest in sync.

Each case names the launched kernel, a launch configuration (for the
occupancy block) and optionally a :class:`~repro.sampling.workload.WorkloadSpec`
whose per-access strides are keyed by *listing line numbers* — the frontend
stamps every instruction's ``line`` with its 1-based line in the listing, so
memory-behaviour rules (uncoalesced strides, bank conflicts) apply to real
SASS exactly as they do to generated kernels.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.sass.lint import lint_file
from repro.staticcheck.report import StaticReport


@dataclass(frozen=True)
class SassCorpusCase:
    """One committed listing plus the context needed to lint it."""

    case_id: str
    filename: str
    kernel: str
    arch_flag: str
    description: str
    launch: LaunchConfig
    #: Access-behaviour spec; stride keys are 1-based listing line numbers.
    workload: Optional[WorkloadSpec] = None

    @property
    def golden_name(self) -> str:
        """Stem of the golden report file (``<case>__<arch>.json``)."""
        return self.case_id.replace("sass/", "").replace(":", "__")


def _case(
    name: str,
    filename: str,
    kernel: str,
    arch_flag: str,
    description: str,
    launch: LaunchConfig,
    workload: Optional[WorkloadSpec] = None,
) -> SassCorpusCase:
    return SassCorpusCase(
        case_id=f"sass/{name}:{arch_flag}",
        filename=filename,
        kernel=kernel,
        arch_flag=arch_flag,
        description=description,
        launch=launch,
        workload=workload,
    )


SASS_CORPUS: Tuple[SassCorpusCase, ...] = (
    _case(
        "reduce_sum", "reduce_sum_sm70.sass", "_Z10reduce_sumPKfPfi", "sm_70",
        "Shared-memory tree reduction (cuobjdump dialect, predicated exit).",
        LaunchConfig(grid_blocks=1024, threads_per_block=256, shared_memory_bytes=1024),
    ),
    _case(
        "matmul_tiled", "matmul_tiled_sm70.sass", "_Z12matmul_tiledPKfS0_Pfii", "sm_70",
        "16x16 tiled matmul (nvdisasm dialect, nested loops); the unpadded "
        "A-tile column read conflicts on shared-memory banks.",
        LaunchConfig(grid_blocks=256, threads_per_block=256, shared_memory_bytes=2048),
        WorkloadSpec(name="matmul_tiled", access_strides={39: 64}),
    ),
    _case(
        "stencil5", "stencil5_sm75.sass", "_Z8stencil5PKfPfi", "sm_75",
        "1D 5-point stencil (nvdisasm dialect, uniform-register addressing, "
        "predicated boundary exit).",
        LaunchConfig(grid_blocks=4096, threads_per_block=256),
    ),
    _case(
        "scan_block", "scan_block_sm70.sass", "_Z10scan_blockPKfPfi", "sm_70",
        "Hillis-Steele inclusive scan in shared memory (cuobjdump dialect, "
        "predicated load in the doubling loop).",
        LaunchConfig(grid_blocks=512, threads_per_block=256, shared_memory_bytes=1024),
    ),
    _case(
        "histogram256", "histogram256_sm75.sass", "_Z12histogram256PKhPjii", "sm_75",
        "256-bin histogram (cuobjdump dialect, grid-stride loop, shared "
        "atomics and a global reduction).",
        LaunchConfig(grid_blocks=160, threads_per_block=256, shared_memory_bytes=1024),
    ),
    _case(
        "transpose32", "transpose32_sm80.sass", "_Z11transpose32PKfPfii", "sm_80",
        "32x32 tiled transpose with padded shared memory (nvdisasm dialect, "
        "LDGSTS async copies).",
        LaunchConfig(grid_blocks=1024, threads_per_block=256, shared_memory_bytes=4224),
    ),
    _case(
        "saxpy", "saxpy_sm70.sass", "_Z5saxpyifPKfPf", "sm_70",
        "Grid-stride SAXPY (cuobjdump dialect, fully coalesced).",
        LaunchConfig(grid_blocks=1024, threads_per_block=256),
    ),
    _case(
        "dotprod_unknown", "dotprod_unknown_sm80.sass", "_Z7dotprodPKfS0_Pfi", "sm_80",
        "Dot product with shared + warp-shuffle reduction (nvdisasm "
        "dialect); carries QSPC/CCTL opcodes absent from the catalog to pin "
        "unknown-op degradation.",
        LaunchConfig(grid_blocks=160, threads_per_block=256, shared_memory_bytes=1024),
    ),
    _case(
        "axpby_bare", "axpby_bare_sm70.sass", "kernel", "sm_70",
        "Bare-dialect AXPBY with AoS-strided accesses (uncoalesced) and a "
        "predicated branch as the final instruction.",
        LaunchConfig(grid_blocks=2048, threads_per_block=128),
        WorkloadSpec(name="axpby_bare", access_strides={12: 128, 13: 128, 16: 128}),
    ),
    _case(
        "vecnorm", "vecnorm_sm80.sass", "_Z7vecnormPKdPdi", "sm_80",
        "fp64 vector norm step (cuobjdump dialect); DMUL/DADD read and "
        "write register pairs.",
        LaunchConfig(grid_blocks=512, threads_per_block=256),
    ),
)

_BY_ID: Dict[str, SassCorpusCase] = {case.case_id: case for case in SASS_CORPUS}


def default_corpus_dir() -> str:
    """``tests/sass/corpus`` resolved relative to the repository layout."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "sass", "corpus")


def corpus_case_ids() -> Tuple[str, ...]:
    return tuple(case.case_id for case in SASS_CORPUS)


def resolve_corpus_case(case_or_id) -> SassCorpusCase:
    """Accept a :class:`SassCorpusCase` or its id (``sass/<name>:<arch>``)."""
    if isinstance(case_or_id, SassCorpusCase):
        return case_or_id
    try:
        return _BY_ID[case_or_id]
    except KeyError:
        raise KeyError(
            f"unknown SASS corpus case {case_or_id!r}; "
            f"available: {sorted(_BY_ID)}"
        ) from None


def corpus_listing_path(case_or_id, directory: Optional[str] = None) -> str:
    case = resolve_corpus_case(case_or_id)
    return os.path.join(directory or default_corpus_dir(), case.filename)


def lint_corpus_case(
    case_or_id, directory: Optional[str] = None, **checker_kwargs
) -> StaticReport:
    """Ingest and lint one corpus case; the report carries its case id."""
    case = resolve_corpus_case(case_or_id)
    return lint_file(
        corpus_listing_path(case, directory),
        default_arch=case.arch_flag,
        kernel=case.kernel,
        config=case.launch,
        workload=case.workload,
        case_id=case.case_id,
        **checker_kwargs,
    )


def lint_corpus(
    directory: Optional[str] = None, **checker_kwargs
) -> Iterable[Tuple[SassCorpusCase, StaticReport]]:
    """Lint every corpus case in manifest order."""
    for case in SASS_CORPUS:
        yield case, lint_corpus_case(case, directory, **checker_kwargs)
