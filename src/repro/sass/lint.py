"""One-call lint over real disassembly listings.

``lint_listing`` wires the SASS frontend into the static checker: ingest the
text, run :class:`~repro.staticcheck.engine.StaticChecker` over the lowered
binary, and attach the ingest ledger to the report (the ``ingest`` field
added in schema version 6).  This is what ``gpa-advise lint --sass`` and
:meth:`repro.api.request.RequestBuilder.sass_listing` call.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cubin.binary import Cubin
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.sass.frontend import ingest_file, ingest_listing
from repro.sass.report import FunctionIngest, IngestReport
from repro.staticcheck.engine import StaticChecker
from repro.staticcheck.report import StaticReport


def lint_listing(
    text: str,
    source_name: str = "<sass>",
    default_arch: str = "sm_70",
    kernel: Optional[str] = None,
    config: Optional[LaunchConfig] = None,
    workload: Optional[WorkloadSpec] = None,
    case_id: Optional[str] = None,
    **checker_kwargs,
) -> StaticReport:
    """Ingest ``text`` and lint it; the report carries the ingest ledger."""
    cubin, ingest = ingest_listing(text, source_name=source_name, default_arch=default_arch)
    return _check(cubin, ingest, kernel, config, workload, case_id, checker_kwargs)


def lint_file(
    path,
    default_arch: str = "sm_70",
    kernel: Optional[str] = None,
    config: Optional[LaunchConfig] = None,
    workload: Optional[WorkloadSpec] = None,
    case_id: Optional[str] = None,
    **checker_kwargs,
) -> StaticReport:
    """:func:`lint_listing` over a file on disk."""
    cubin, ingest = ingest_file(path, default_arch=default_arch)
    return _check(cubin, ingest, kernel, config, workload, case_id, checker_kwargs)


def _check(
    cubin: Cubin,
    ingest: IngestReport,
    kernel: Optional[str],
    config: Optional[LaunchConfig],
    workload: Optional[WorkloadSpec],
    case_id: Optional[str],
    checker_kwargs: dict,
) -> StaticReport:
    checker = StaticChecker(**checker_kwargs)
    return checker.check(
        cubin,
        kernel=kernel,
        config=config,
        workload=workload,
        case_id=case_id,
        ingest=ingest.to_dict(),
    )


def cubin_ingest_ledger(cubin: Cubin) -> Optional[dict]:
    """Best-effort ingest ledger for a binary that came through the frontend.

    Ingested functions keep their raw listing text
    (:attr:`~repro.cubin.binary.Function.source_listing`); re-ingesting those
    stored lines reconstructs the per-function ledger so surfaces that only
    see the ``Cubin`` — :meth:`repro.api.session.AdvisingSession.lint` on a
    request built with ``sass_listing()`` — still report coverage.  Returns
    ``None`` for binaries with no ingested functions (the in-repo builder
    path).  Best-effort: listing lines the original ingest could not decode
    at all are not stored, so the reconstructed ``total`` counts decoded
    instructions only.
    """
    from dataclasses import replace

    functions: List[FunctionIngest] = []
    warnings: List[str] = []
    dialect: Optional[str] = None
    for name, function in cubin.functions.items():
        if function.source_listing is None:
            continue
        _, report = ingest_listing(
            function.source_listing,
            source_name=function.source_file or name,
            default_arch=cubin.arch_flag,
        )
        dialect = dialect or report.dialect
        for entry in report.functions:
            functions.append(replace(entry, name=name))
        warnings.extend(report.warnings)
    if not functions:
        return None
    merged = IngestReport(
        source_name=cubin.module_name,
        dialect=dialect or "bare",
        arch_flag=cubin.arch_flag,
        functions=functions,
        warnings=warnings,
    )
    return merged.to_dict()


def ingest_and_lint(
    text: str, source_name: str = "<sass>", default_arch: str = "sm_70", **kwargs
) -> Tuple[Cubin, IngestReport, StaticReport]:
    """Ingest ``text`` and lint it, returning every intermediate artifact."""
    cubin, ingest = ingest_listing(text, source_name=source_name, default_arch=default_arch)
    report = _check(
        cubin,
        ingest,
        kwargs.pop("kernel", None),
        kwargs.pop("config", None),
        kwargs.pop("workload", None),
        kwargs.pop("case_id", None),
        kwargs,
    )
    return cubin, ingest, report
