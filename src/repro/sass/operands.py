"""Operand grammar for real SASS disassembly.

Real ``nvdisasm`` / ``cuobjdump -sass`` operand text is richer than the
in-repo assembly syntax of :mod:`repro.isa.parser`: negation/absolute-value
decorations (``-R4``, ``|R4|``, ``~R2``), register reuse hints
(``R4.reuse``), width/type suffixes on registers inside addresses
(``[R2.64+0x10]``), constant-bank reads (``c[0x0][0x160]``), uniform
datapath registers (``UR4``, ``UPT``), descriptor-based addressing
(``desc[UR4][R2.64]``) and hex-encoded float literals (``0f3F800000``).

``parse_operand`` lowers each token into the operand model of
:mod:`repro.isa.registers`; decorations that do not change *which* registers
are read (negation, absolute value, reuse hints, type suffixes) are
stripped, because the static analyses only consume def/use sets.  Tokens
outside the grammar raise :class:`OperandError`; the decoder then falls back
to :func:`extract_registers`, which recovers the register *uses* mentioned
anywhere in the token so liveness stays sound.
"""

from __future__ import annotations

import re
import struct
from typing import Optional, Tuple

from repro.isa.registers import (
    ConstantOperand,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    SpecialRegister,
    TRUE_PREDICATE_INDEX,
    UniformPredicate,
    UniformRegister,
    ZERO_REGISTER_INDEX,
    UNIFORM_ZERO_REGISTER_INDEX,
)


class OperandError(ValueError):
    """A token that the real-SASS operand grammar does not cover."""

    def __init__(self, message: str, token: str) -> None:
        super().__init__(message)
        self.token = token


_REGISTER_RE = re.compile(r"^(?:RZ|R\d+)$")
_UNIFORM_RE = re.compile(r"^(?:URZ|UR\d+)$")
_PREDICATE_RE = re.compile(r"^!?(?:PT|P\d)$")
_UNIFORM_PREDICATE_RE = re.compile(r"^!?(?:UPT|UP\d)$")
_CONSTANT_RE = re.compile(
    r"^c\[(?P<bank>0x[0-9a-fA-F]+|\d+)\]\s*"
    r"\[(?P<offset>-?(?:0x[0-9a-fA-F]+|\d+))\]$"
)
_HEX_FLOAT_RE = re.compile(r"^0[fF](?P<bits>[0-9a-fA-F]{8})$")
_HEX_DOUBLE_RE = re.compile(r"^0[dD](?P<bits>[0-9a-fA-F]{16})$")
_INT_RE = re.compile(r"^[-+]?(?:0x[0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^[-+]?\d+\.\d*(?:[eE][-+]?\d+)?$")
_DESC_RE = re.compile(r"^desc\[(?P<uniform>URZ|UR\d+)\]\s*(?P<inner>\[.*\])$")
_REGISTER_ANYWHERE_RE = re.compile(r"\bR(\d+)\b")

#: Suffixes nvdisasm attaches to register references inside operands; they
#: describe width/lane selection, not additional registers (wide access
#: expansion happens on the instruction's modifiers instead).
_REGISTER_SUFFIXES = (
    "64", "U32", "S32", "H0", "H1", "H0_H0", "H1_H1", "F32", "F64",
    "X4", "X8", "X16", "ROW", "COL", "reuse",
)


def _parse_int(text: str) -> int:
    text = text.strip()
    negative = text.startswith("-")
    if text.startswith(("+", "-")):
        text = text[1:]
    value = int(text, 16) if text.lower().startswith("0x") else int(text)
    return -value if negative else value


def _strip_decorations(token: str) -> str:
    """Remove negation / absolute-value / bit-not decorations."""
    token = token.strip()
    while token and token[0] in "-~+":
        token = token[1:].strip()
    if len(token) >= 2 and token[0] == "|" and token[-1] == "|":
        token = token[1:-1].strip()
    return token


def _strip_register_suffixes(token: str) -> str:
    """Remove trailing ``.64`` / ``.reuse`` style suffixes from a register."""
    changed = True
    while changed:
        changed = False
        for suffix in _REGISTER_SUFFIXES:
            if token.endswith("." + suffix):
                token = token[: -len(suffix) - 1]
                changed = True
    return token


def parse_register(token: str) -> RegisterOperand:
    token = _strip_register_suffixes(_strip_decorations(token))
    if token == "RZ":
        return RegisterOperand(ZERO_REGISTER_INDEX)
    if _REGISTER_RE.match(token):
        index = int(token[1:])
        if index > ZERO_REGISTER_INDEX:
            raise OperandError(f"register index out of range: {token!r}", token)
        return RegisterOperand(index)
    raise OperandError(f"not a register: {token!r}", token)


def parse_uniform_register(token: str) -> UniformRegister:
    token = _strip_register_suffixes(_strip_decorations(token))
    if token == "URZ":
        return UniformRegister(UNIFORM_ZERO_REGISTER_INDEX)
    if _UNIFORM_RE.match(token):
        index = int(token[2:])
        if index > UNIFORM_ZERO_REGISTER_INDEX:
            raise OperandError(f"uniform register index out of range: {token!r}", token)
        return UniformRegister(index)
    raise OperandError(f"not a uniform register: {token!r}", token)


def parse_predicate(token: str) -> Predicate:
    token = token.strip()
    negated = token.startswith("!")
    if negated:
        token = token[1:]
    if token == "PT":
        return Predicate(TRUE_PREDICATE_INDEX, negated=negated)
    if re.fullmatch(r"P\d", token):
        return Predicate(int(token[1]), negated=negated)
    raise OperandError(f"not a predicate: {token!r}", token)


def parse_uniform_predicate(token: str) -> UniformPredicate:
    token = token.strip()
    negated = token.startswith("!")
    if negated:
        token = token[1:]
    if token == "UPT":
        return UniformPredicate(TRUE_PREDICATE_INDEX, negated=negated)
    if re.fullmatch(r"UP\d", token):
        return UniformPredicate(int(token[2]), negated=negated)
    raise OperandError(f"not a uniform predicate: {token!r}", token)


def _parse_memory_inner(inner: str, space: MemorySpace) -> MemoryOperand:
    """Parse the ``...`` of ``[...]``: register/uniform/immediate terms
    joined by ``+``."""
    base: Optional[RegisterOperand] = None
    uniform: Optional[UniformRegister] = None
    offset = 0
    if not inner.strip():
        raise OperandError("empty memory operand", inner)
    for term in inner.split("+"):
        term = term.strip()
        if not term:
            continue
        stripped = _strip_register_suffixes(_strip_decorations(term))
        if _REGISTER_RE.match(stripped):
            if base is not None:
                raise OperandError(f"two register bases in [{inner}]", term)
            base = parse_register(term)
        elif _UNIFORM_RE.match(stripped):
            if uniform is not None:
                raise OperandError(f"two uniform bases in [{inner}]", term)
            uniform = parse_uniform_register(term)
        elif _INT_RE.match(term) or term.startswith("-"):
            offset += _parse_int(term)
        else:
            raise OperandError(f"cannot parse address term {term!r}", term)
    if base is None:
        base = RegisterOperand(ZERO_REGISTER_INDEX)
    return MemoryOperand(base=base, offset=offset, space=space, uniform_base=uniform)


def parse_memory(token: str, space: MemorySpace) -> MemoryOperand:
    token = token.strip()
    desc_match = _DESC_RE.match(token)
    if desc_match:
        # The descriptor register configures the access; treat it like a
        # uniform address term so its (warp-invariant) use is preserved.
        inner = _parse_memory_inner(desc_match.group("inner")[1:-1], space)
        if inner.uniform_base is None:
            inner = MemoryOperand(
                base=inner.base,
                offset=inner.offset,
                space=inner.space,
                uniform_base=parse_uniform_register(desc_match.group("uniform")),
            )
        return inner
    if token.startswith("[") and token.endswith("]"):
        return _parse_memory_inner(token[1:-1], space)
    raise OperandError(f"not a memory operand: {token!r}", token)


def parse_immediate(token: str) -> ImmediateOperand:
    token = token.strip()
    upper = token.upper().lstrip("+-")
    if upper in ("INF", "+INF"):
        return ImmediateOperand(float("-inf") if token.startswith("-") else float("inf"))
    if upper in ("QNAN", "NAN", "SNAN"):
        return ImmediateOperand(float("nan"))
    # Hex bit patterns may carry a sign decoration (`FADD R0, R1, -0f3F800000`).
    sign = -1.0 if token.startswith("-") else 1.0
    unsigned = token.lstrip("+-")
    hex_float = _HEX_FLOAT_RE.match(unsigned)
    if hex_float:
        value = struct.unpack(">f", bytes.fromhex(hex_float.group("bits")))[0]
        return ImmediateOperand(sign * float(value))
    hex_double = _HEX_DOUBLE_RE.match(unsigned)
    if hex_double:
        value = struct.unpack(">d", bytes.fromhex(hex_double.group("bits")))[0]
        return ImmediateOperand(sign * float(value), is_double=True)
    if _INT_RE.match(token):
        return ImmediateOperand(float(_parse_int(token)))
    if _FLOAT_RE.match(token):
        return ImmediateOperand(float(token), is_double=True)
    raise OperandError(f"not an immediate: {token!r}", token)


def parse_operand(token: str, space: MemorySpace = MemorySpace.GLOBAL) -> object:
    """Parse one real-SASS operand token into the ISA operand model.

    ``space`` is the address space implied by the opcode, applied to memory
    operands.  Raises :class:`OperandError` for tokens outside the grammar.
    """
    token = token.strip()
    if not token:
        raise OperandError("empty operand", token)
    bare = _strip_decorations(token)
    if bare.startswith(("[", "desc[")):
        return parse_memory(bare, space)
    constant = _CONSTANT_RE.match(_strip_register_suffixes(bare))
    if constant:
        return ConstantOperand(
            bank=_parse_int(constant.group("bank")),
            offset=_parse_int(constant.group("offset")),
        )
    stripped = _strip_register_suffixes(bare)
    if _REGISTER_RE.match(stripped):
        return parse_register(bare)
    if _UNIFORM_RE.match(stripped):
        return parse_uniform_register(bare)
    if _PREDICATE_RE.match(token.strip()):
        return parse_predicate(token)
    if _UNIFORM_PREDICATE_RE.match(token.strip()):
        return parse_uniform_predicate(token)
    if bare.startswith("SR_"):
        return SpecialRegister(bare)
    try:
        return parse_immediate(token)
    except OperandError:
        pass
    raise OperandError(f"cannot parse operand: {token!r}", token)


def extract_registers(text: str) -> Tuple[RegisterOperand, ...]:
    """Best-effort recovery of every ``R<n>`` mentioned in ``text``.

    The fallback for operand tokens outside the grammar: the registers a
    token *names* are treated as uses, so a failed parse can hide an
    operand's meaning but never a register the liveness analysis must see.
    """
    registers = []
    for match in _REGISTER_ANYWHERE_RE.finditer(text):
        index = int(match.group(1))
        if 0 <= index <= ZERO_REGISTER_INDEX:
            registers.append(RegisterOperand(index))
    return tuple(registers)
