"""Real-SASS ingestion frontend.

Lowers ``nvdisasm`` / ``cuobjdump -sass`` disassembly listings into the
in-repo instruction model so CFG recovery and the static lint engine run
over kernels that were never generated in-repo.  The frontend never crashes
on listing content: unknown opcodes become conservative unknown ops,
unparseable operands degrade to register extraction, unresolved branch
targets become fall-through edges — and every degradation is accounted for
in the :class:`IngestReport` that rides on the resulting lint report.
"""

from repro.sass.decoder import DecodedInstruction, decode_instruction, strip_line
from repro.sass.frontend import detect_dialect, ingest_file, ingest_listing
from repro.sass.lint import cubin_ingest_ledger, ingest_and_lint, lint_file, lint_listing
from repro.sass.operands import OperandError, extract_registers, parse_operand
from repro.sass.report import FunctionIngest, IngestReport

__all__ = [
    "DecodedInstruction",
    "FunctionIngest",
    "IngestReport",
    "OperandError",
    "decode_instruction",
    "detect_dialect",
    "extract_registers",
    "ingest_and_lint",
    "ingest_file",
    "ingest_listing",
    "cubin_ingest_ledger",
    "lint_file",
    "lint_listing",
    "parse_operand",
    "strip_line",
]
