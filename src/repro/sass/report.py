"""Ingestion coverage report for real-disassembly listings.

The SASS frontend never refuses a listing: unknown opcodes decode to
conservative unknown ops, unparseable operands degrade to register-extraction
fallbacks, and unresolved branch targets become fall-through edges.  What it
*does* do is account for every degradation, so a lint report over an ingested
binary always says how much of the listing the analyses actually understood.

:class:`FunctionIngest` is the per-function ledger; :class:`IngestReport`
aggregates them per listing and serializes to the JSON-shaped dict that
:class:`repro.staticcheck.report.StaticReport` carries in its ``ingest``
field (added in schema version 6).  Coverage is ``decoded / total`` where an
instruction counts as decoded iff its opcode is in the catalog — operand
fallbacks and unresolved targets are tracked separately and do not reduce
coverage, because the analyses still reason about those instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


def _coverage(decoded: int, total: int) -> float:
    """Decode coverage as a stable 4-decimal fraction (1.0 for empty)."""
    if total == 0:
        return 1.0
    return round(decoded / total, 4)


@dataclass
class FunctionIngest:
    """Ingestion ledger for one function of a listing."""

    name: str
    #: Instructions seen / successfully matched against the opcode catalog.
    total: int = 0
    decoded: int = 0
    #: Distinct opcodes (with modifiers stripped) absent from the catalog.
    unknown_opcodes: List[str] = field(default_factory=list)
    #: Distinct modifier strings the encoder's table does not know.  These
    #: are carried on the instructions verbatim; the entry just flags that
    #: the binary will not round-trip through the fixed-width encoder.
    unknown_modifiers: List[str] = field(default_factory=list)
    #: Operand tokens that fell back to register extraction.
    operand_failures: List[str] = field(default_factory=list)
    #: Symbolic branch targets that no label in the listing resolves.
    unresolved_targets: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return _coverage(self.decoded, self.total)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "total": self.total,
            "decoded": self.decoded,
            "coverage": self.coverage,
            "unknown_opcodes": sorted(set(self.unknown_opcodes)),
            "unknown_modifiers": sorted(set(self.unknown_modifiers)),
            "operand_failures": sorted(set(self.operand_failures)),
            "unresolved_targets": sorted(set(self.unresolved_targets)),
        }


@dataclass
class IngestReport:
    """Everything the frontend learned while lowering one listing."""

    source_name: str
    #: Detected input flavour: ``cuobjdump``, ``nvdisasm`` or ``bare``.
    dialect: str
    #: Architecture flag recovered from the listing (or the caller default).
    arch_flag: str
    functions: List[FunctionIngest] = field(default_factory=list)
    #: Free-form notes about lines the frontend skipped or guessed at.
    warnings: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(entry.total for entry in self.functions)

    @property
    def decoded(self) -> int:
        return sum(entry.decoded for entry in self.functions)

    @property
    def coverage(self) -> float:
        return _coverage(self.decoded, self.total)

    def function_ingest(self, name: str) -> FunctionIngest:
        for entry in self.functions:
            if entry.name == name:
                return entry
        raise KeyError(f"no ingest entry for function {name!r}")

    def to_dict(self) -> dict:
        """The JSON-shaped form carried by ``StaticReport.ingest``."""
        return {
            "source_name": self.source_name,
            "dialect": self.dialect,
            "arch_flag": self.arch_flag,
            "total": self.total,
            "decoded": self.decoded,
            "coverage": self.coverage,
            "functions": [entry.to_dict() for entry in self.functions],
            "warnings": list(self.warnings),
        }

    def describe(self) -> str:
        """One-line human summary (used by the CLI's text output)."""
        return (
            f"{self.source_name}: {self.decoded}/{self.total} instructions "
            f"decoded ({self.dialect} dialect, {self.arch_flag}, "
            f"coverage {self.coverage})"
        )
