"""Single-line decoder for real SASS disassembly.

One line of ``nvdisasm`` / ``cuobjdump -sass`` output carries more than the
in-repo assembly syntax: an offset comment, the instruction text, the raw
128-bit encoding as a trailing hex comment, and sometimes a scheduling
control bracket.  ``decode_instruction`` consumes the *instruction text*
(after :func:`strip_line` removes the surrounding noise) and produces a
:class:`DecodedInstruction` — the lowered :class:`~repro.isa.instruction.Instruction`
plus the degradation ledger the ingest report aggregates.

Degradation rules (the frontend's "never crash" contract):

* an opcode absent from the catalog decodes to a conservative unknown op:
  its first register operand is treated as both a may-def and a use, every
  other parsed register/memory operand as a use;
* an operand token outside the grammar of :mod:`repro.sass.operands` falls
  back to :func:`~repro.sass.operands.extract_registers` — the registers the
  token names become uses, so liveness never loses a declared register;
* a symbolic branch target is reported for the frontend to resolve against
  the listing's labels; unresolved targets stay ``None`` (the CFG builder
  adds a conservative fall-through edge);
* a ``@UP<n>`` uniform guard maps onto the per-thread predicate of the same
  index — a uniform guard is warp-invariant, so treating it as one more
  may-write guard only errs toward conservatism.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.encoder import MODIFIERS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import opcode_is_known
from repro.isa.registers import (
    ALWAYS,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    UniformPredicate,
)
from repro.sass.operands import (
    OperandError,
    extract_registers,
    parse_operand,
    parse_predicate,
    parse_uniform_predicate,
)

#: Opcodes whose first operand is a memory destination.
STORE_FIRST_OPCODES = frozenset({"STG", "STS", "STL", "ST", "RED", "LDGSTS"})

#: Opcodes whose leading (uniform) predicate operands are destinations.
PREDICATE_DEST_OPCODES = frozenset(
    {"ISETP", "FSETP", "DSETP", "PSETP", "R2P", "HSETP2", "UISETP", "PLOP3"}
)

#: Opcodes with no register destination.
NO_DEST_OPCODES = frozenset(
    {
        "BRA", "BRX", "JMP", "CAL", "CALL", "RET", "EXIT", "BAR", "MEMBAR",
        "DEPBAR", "BSSY", "BSYNC", "SSY", "SYNC", "NOP", "KILL", "YIELD",
        "NANOSLEEP", "WARPSYNC",
    }
)

#: Opcodes that may carry a carry-out predicate right after the register
#: destination (``IADD3 R2, P0, R2, R4, RZ``).
CARRY_PREDICATE_OPCODES = frozenset(
    {"IADD3", "UIADD3", "LEA", "ULEA", "IMAD", "ISCADD", "SHF", "USHF"}
)

#: Opcodes whose (first) operand is a branch/call target.
BRANCH_TARGET_OPCODES = frozenset({"BRA", "BRX", "JMP", "CAL", "CALL", "SSY", "BSSY"})

MEMORY_SPACE_BY_OPCODE = {
    "LDG": MemorySpace.GLOBAL, "STG": MemorySpace.GLOBAL,
    "ATOM": MemorySpace.GLOBAL, "ATOMG": MemorySpace.GLOBAL,
    "RED": MemorySpace.GLOBAL, "LDGSTS": MemorySpace.GLOBAL,
    "LDL": MemorySpace.LOCAL, "STL": MemorySpace.LOCAL,
    "LDS": MemorySpace.SHARED, "STS": MemorySpace.SHARED,
    "ATOMS": MemorySpace.SHARED, "LDSM": MemorySpace.SHARED,
    "LDC": MemorySpace.CONSTANT, "ULDC": MemorySpace.CONSTANT,
    "LD": MemorySpace.GENERIC, "ST": MemorySpace.GENERIC,
    "TEX": MemorySpace.TEXTURE, "TLD": MemorySpace.TEXTURE,
}

_KNOWN_MODIFIERS = frozenset(MODIFIERS)

_OFFSET_COMMENT_RE = re.compile(r"/\*\s*(?P<offset>[0-9a-fA-F]+)\s*\*/")
_HEX_COMMENT_RE = re.compile(r"/\*\s*0x[0-9a-fA-F]+\s*\*/")
_COMMENT_RE = re.compile(r"/\*.*?\*/")
_CONTROL_BRACKET_RE = re.compile(
    r"\[(?:B[0-6\-]+:){1,2}[RW][0-9\-]:[RW][0-9\-]:S\d+:?[Y\-]?\]"
    r"|\[B[0-5\-]+:W[0-5\-]:R[0-5\-]:S\d+:[Y\-]\]"
    r"|\[B[0-6\-]+:R[0-9\-]:W[0-9\-]:[Y\-]:S\d+\]"
)
_SYMBOLIC_TARGET_RE = re.compile(r"^`?\(?\s*(?P<name>[.$A-Za-z_][.$A-Za-z0-9_]*)\s*\)?$")
_ABSOLUTE_TARGET_RE = re.compile(r"^-?(?:0x[0-9a-fA-F]+|\d+)$")


@dataclass
class StrippedLine:
    """An instruction line with the disassembly noise removed."""

    text: str
    #: Offset from the leading ``/*0010*/`` comment, when present.
    offset: Optional[int] = None
    #: Whether the line was *only* comments/hex (an encoding continuation).
    empty: bool = False


def strip_line(raw: str) -> StrippedLine:
    """Remove offset/hex comments, control brackets and the trailing ``;``."""
    text = raw.strip()
    offset: Optional[int] = None
    leading = _OFFSET_COMMENT_RE.match(text)
    if leading and not _HEX_COMMENT_RE.match(text):
        offset = int(leading.group("offset"), 16)
        text = text[leading.end():]
    text = _HEX_COMMENT_RE.sub(" ", text)
    text = _COMMENT_RE.sub(" ", text)
    text = re.sub(r"//.*", " ", text)
    text = _CONTROL_BRACKET_RE.sub(" ", text)
    # Hopper-style scheduling tokens ride after the operands.
    text = re.sub(r"[&?][A-Za-z0-9_.]+", " ", text)
    text = text.replace(";", " ").strip()
    text = re.sub(r"\s+", " ", text)
    return StrippedLine(text=text, offset=offset, empty=not text)


@dataclass
class DecodedInstruction:
    """One lowered instruction plus its degradation ledger."""

    instruction: Instruction
    #: Symbolic branch target awaiting label resolution (``.L_x_3``).
    symbolic_target: Optional[str] = None
    unknown_opcode: bool = False
    unknown_modifiers: Tuple[str, ...] = ()
    operand_failures: Tuple[str, ...] = ()


def _split_operands(text: str) -> List[str]:
    """Split on top-level commas (brackets of any kind nest)."""
    operands: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char in "[({":
            depth += 1
        elif char in "])}":
            depth -= 1
        if char == "," and depth <= 0:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


def _parse_guard(token: str) -> Predicate:
    """``@P0`` / ``@!P0`` / ``@UP3`` / ``@!UP3`` → a guard predicate."""
    body = token[1:]
    if "UP" in body:
        uniform = parse_uniform_predicate(body)
        return Predicate(uniform.index, negated=uniform.negated)
    return parse_predicate(body)


def decode_instruction(
    text: str,
    offset: int,
    listing_line: Optional[int] = None,
    source_name: Optional[str] = None,
) -> Optional[DecodedInstruction]:
    """Decode one stripped instruction text at ``offset``.

    Returns ``None`` for text with no decodable opcode token at all (the
    frontend records a warning instead of an instruction).  Never raises on
    instruction content — every failure degrades per the module rules.
    """
    text = text.strip()
    if not text:
        return None

    predicate = ALWAYS
    if text.startswith("@"):
        guard, _, rest = text.partition(" ")
        try:
            predicate = _parse_guard(guard)
        except OperandError:
            return None
        text = rest.strip()
        if not text:
            return None

    mnemonic, _, operand_text = text.partition(" ")
    parts = mnemonic.split(".")
    opcode, modifiers = parts[0], tuple(part for part in parts[1:] if part)
    if not re.fullmatch(r"[A-Z][A-Z0-9_]*", opcode):
        return None

    unknown = not opcode_is_known(opcode)
    unknown_modifiers = tuple(
        modifier for modifier in modifiers if modifier not in _KNOWN_MODIFIERS
    )
    space = MEMORY_SPACE_BY_OPCODE.get(opcode)
    operand_tokens = _split_operands(operand_text) if operand_text.strip() else []

    target: Optional[int] = None
    symbolic_target: Optional[str] = None
    failures: List[str] = []
    fallback_sources: List[RegisterOperand] = []

    if opcode in BRANCH_TARGET_OPCODES and operand_tokens:
        # The target is the last operand (``BRX R4 0x0`` and predicated
        # forms keep earlier operands as ordinary sources).
        candidate = operand_tokens[-1].strip()
        absolute = _ABSOLUTE_TARGET_RE.match(candidate)
        symbolic = _SYMBOLIC_TARGET_RE.match(candidate)
        if absolute:
            target = int(candidate, 16) if "0x" in candidate.lower() else int(candidate)
            operand_tokens = operand_tokens[:-1]
        elif symbolic and not re.fullmatch(r"(?:RZ|R\d+|URZ|UR\d+|!?U?P[T\d])", candidate):
            symbolic_target = symbolic.group("name").lstrip("`(").rstrip(")")
            operand_tokens = operand_tokens[:-1]

    operands: List[object] = []
    for token in operand_tokens:
        try:
            operands.append(parse_operand(token, space or MemorySpace.GLOBAL))
        except OperandError:
            failures.append(token)
            fallback_sources.extend(extract_registers(token))

    dests: List[object] = []
    sources: List[object] = []
    if unknown:
        # Conservative placement: the first register operand is a may-def
        # (and still a use); everything parsed is a use.
        for operand in operands:
            if not dests and isinstance(operand, RegisterOperand) and not operand.is_zero:
                dests.append(operand)
            sources.append(operand)
    elif opcode in STORE_FIRST_OPCODES:
        if operands and isinstance(operands[0], MemoryOperand):
            dests.append(operands[0])
            sources.extend(operands[1:])
        else:
            sources.extend(operands)
    elif opcode in PREDICATE_DEST_OPCODES or opcode == "SHFL":
        remaining = list(operands)
        while remaining and isinstance(remaining[0], (Predicate, UniformPredicate)):
            dests.append(remaining.pop(0))
        if opcode == "SHFL" and remaining and isinstance(remaining[0], RegisterOperand):
            # ``SHFL.DOWN PT, Rd, Rs, ...``: the register destination rides
            # behind the predicate destination.
            dests.append(remaining.pop(0))
        sources.extend(remaining)
    elif opcode in NO_DEST_OPCODES:
        sources.extend(operands)
    else:
        remaining = list(operands)
        if remaining:
            dests.append(remaining.pop(0))
            if opcode in CARRY_PREDICATE_OPCODES:
                # Carry-out predicates follow the register destination
                # (``IADD3 R2, P0, ...``); trailing predicates are
                # carry-ins and stay sources.
                while (
                    remaining
                    and len(remaining) > 1
                    and isinstance(remaining[0], Predicate)
                    and not remaining[0].is_true_predicate
                ):
                    dests.append(remaining.pop(0))
        sources.extend(remaining)
    sources.extend(fallback_sources)

    instruction = Instruction(
        offset=offset,
        opcode=opcode,
        modifiers=modifiers,
        predicate=predicate,
        dests=tuple(dests),
        sources=tuple(sources),
        target=target,
        line=listing_line,
        source_file=source_name,
    )
    return DecodedInstruction(
        instruction=instruction,
        symbolic_target=symbolic_target,
        unknown_opcode=unknown,
        unknown_modifiers=unknown_modifiers,
        operand_failures=tuple(failures),
    )
