"""Listing-level frontend: real disassembly text → :class:`~repro.cubin.binary.Cubin`.

``ingest_listing`` accepts the two flavours of disassembly NVIDIA's tools
produce, plus a bare fallback:

* **cuobjdump** (``cuobjdump -sass``): ``code for sm_70`` headers,
  ``Function : <name>`` markers, ``.headerflags`` directives, instruction
  lines with ``/*offset*/`` comments, trailing hex-encoding comments and
  hex-only continuation lines;
* **nvdisasm**: ``.section .text.<name>`` function sections,
  ``.sectioninfo @"SHI_REGISTERS=N"`` resource notes, ``.global``
  directives, ``.L_x_<n>:`` local labels and backtick branch targets
  (`` BRA `(.L_x_3) ``);
* **bare**: label/instruction lines with no tool framing (also what
  :attr:`~repro.cubin.binary.Function.source_listing` round-trips store).

The dialect only governs how function boundaries and metadata are
recognised; instruction lines are decoded uniformly by
:mod:`repro.sass.decoder` with its never-crash degradation rules.  The
result is a ``Cubin`` the existing CFG recovery and static checker consume
unchanged, plus the :class:`~repro.sass.report.IngestReport` ledger.

Offsets come from the listing's ``/*offset*/`` comments when present (both
tools restart them at 0 per function) and otherwise advance by the 16-byte
instruction size.  Each instruction's ``line`` is stamped with its 1-based
listing line — that is what workload specs and diagnostics key on — and its
``source_file`` with the listing name.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cubin.binary import Cubin, Function, FunctionVisibility
from repro.isa.instruction import INSTRUCTION_SIZE
from repro.sass.decoder import DecodedInstruction, decode_instruction, strip_line
from repro.sass.report import FunctionIngest, IngestReport

_CODE_FOR_RE = re.compile(r"^\s*code for (?P<arch>sm_\d+)\s*$")
_FUNCTION_RE = re.compile(r"^\s*Function\s*:\s*(?P<name>\S+)\s*$")
_SECTION_RE = re.compile(r"^\s*\.section\s+\.text\.(?P<name>[^,\s]+)")
_SECTIONINFO_RE = re.compile(r"SHI_REGISTERS\s*=\s*(?P<count>\d+)")
_HEADERFLAGS_SM_RE = re.compile(r"EF_CUDA_SM(?P<sm>\d+)")
_LABEL_RE = re.compile(r"^(?P<label>[.$A-Za-z_][.$A-Za-z0-9_]*):\s*(?P<rest>.*)$")

#: Tool framing around cuobjdump output that carries no code.
_NOISE_PREFIXES = (
    "Fatbin elf code", "Fatbin ptx code", "arch =", "code version",
    "producer", "host =", "compile_size", "compressed", "identifier",
    "=====",
)


def detect_dialect(text: str) -> str:
    """Best-effort dialect sniff: ``cuobjdump``, ``nvdisasm`` or ``bare``."""
    for raw in text.splitlines():
        stripped = raw.strip()
        if _CODE_FOR_RE.match(stripped) or _FUNCTION_RE.match(stripped):
            return "cuobjdump"
        if stripped.startswith((".section", ".sectioninfo", ".elftype")):
            return "nvdisasm"
    return "bare"


def _arch_from_sm(sm: str) -> str:
    return f"sm_{sm}"


@dataclass
class _PendingFunction:
    """A function while its listing lines are being collected."""

    name: str
    visibility: FunctionVisibility = FunctionVisibility.GLOBAL
    registers_per_thread: int = 32
    decoded: List[DecodedInstruction] = field(default_factory=list)
    labels: Dict[str, Optional[int]] = field(default_factory=dict)
    pending_labels: List[str] = field(default_factory=list)
    raw_lines: List[str] = field(default_factory=list)
    next_offset: int = 0
    total: int = 0

    def place_labels(self, offset: int) -> None:
        for label in self.pending_labels:
            self.labels.setdefault(label, offset)
        self.pending_labels = []

    def add_decoded(self, decoded: DecodedInstruction) -> None:
        self.place_labels(decoded.instruction.offset)
        self.decoded.append(decoded)
        self.next_offset = decoded.instruction.offset + INSTRUCTION_SIZE


def _finalize(pending: _PendingFunction, source_name: str, report: IngestReport) -> Function:
    """Resolve labels, build the ingest ledger and the ``Function``."""
    ingest = FunctionIngest(name=pending.name, total=pending.total)
    instructions = []
    for decoded in pending.decoded:
        instruction = decoded.instruction
        if not decoded.unknown_opcode:
            ingest.decoded += 1
        else:
            ingest.unknown_opcodes.append(instruction.opcode)
        ingest.unknown_modifiers.extend(decoded.unknown_modifiers)
        ingest.operand_failures.extend(decoded.operand_failures)
        if decoded.symbolic_target is not None:
            target = pending.labels.get(decoded.symbolic_target)
            if target is None:
                ingest.unresolved_targets.append(decoded.symbolic_target)
                report.warnings.append(
                    f"{source_name}:{instruction.line}: unresolved branch target "
                    f"{decoded.symbolic_target!r} in {pending.name}"
                )
            else:
                instruction = replace(instruction, target=target)
        instructions.append(instruction)
    report.functions.append(ingest)
    return Function(
        name=pending.name,
        visibility=pending.visibility,
        instructions=instructions,
        registers_per_thread=pending.registers_per_thread,
        source_file=source_name,
        source_listing="\n".join(pending.raw_lines) + "\n" if pending.raw_lines else None,
    )


def ingest_listing(
    text: str,
    source_name: str = "<sass>",
    default_arch: str = "sm_70",
) -> Tuple[Cubin, IngestReport]:
    """Lower one disassembly listing into a binary plus its ingest report.

    Raises :class:`ValueError` only when the listing contains no
    instructions at all; everything else degrades per the decoder rules.
    """
    dialect = detect_dialect(text)
    report = IngestReport(source_name=source_name, dialect=dialect, arch_flag=default_arch)
    cubin = Cubin(arch_flag=default_arch, module_name=source_name)

    current: Optional[_PendingFunction] = None
    implicit_counter = 0

    def close_current() -> None:
        nonlocal current
        if current is not None:
            if current.decoded:
                cubin.add_function(_finalize(current, source_name, report))
            elif current.total == 0:
                report.warnings.append(
                    f"{source_name}: function {current.name!r} has no instructions"
                )
            current = None

    def open_function(name: str) -> None:
        nonlocal current
        close_current()
        current = _PendingFunction(name=name)

    def ensure_function() -> _PendingFunction:
        nonlocal current, implicit_counter
        if current is None:
            implicit_counter += 1
            name = "kernel" if implicit_counter == 1 else f"kernel_{implicit_counter}"
            current = _PendingFunction(name=name)
        return current

    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.rstrip()
        bare = stripped.strip()
        if not bare or bare.startswith(("//", "#")):
            continue

        code_for = _CODE_FOR_RE.match(bare)
        if code_for:
            close_current()
            report.arch_flag = cubin.arch_flag = _arch_from_sm(code_for.group("arch")[3:])
            continue
        function_marker = _FUNCTION_RE.match(bare)
        if function_marker:
            open_function(function_marker.group("name"))
            current.raw_lines.append(bare)
            continue
        section_marker = _SECTION_RE.match(bare)
        if section_marker:
            open_function(section_marker.group("name"))
            current.raw_lines.append(bare)
            continue
        if bare.startswith(".sectioninfo"):
            info = _SECTIONINFO_RE.search(bare)
            if info and current is not None:
                current.registers_per_thread = int(info.group("count"))
                current.raw_lines.append(bare)
            continue
        if bare.startswith(".headerflags"):
            sm = _HEADERFLAGS_SM_RE.search(bare)
            if sm:
                report.arch_flag = cubin.arch_flag = _arch_from_sm(sm.group("sm"))
            continue
        if bare.startswith("."):
            label_match = _LABEL_RE.match(bare)
            if label_match and not label_match.group("rest").strip():
                # ``.L_x_0:`` / ``.text.<name>:`` label lines.
                label = label_match.group("label")
                if not label.startswith(".text."):
                    function = ensure_function()
                    function.pending_labels.append(label)
                    function.raw_lines.append(f"{label}:")
                continue
            # Other assembler directives (.align/.type/.size/.other/...).
            continue
        if any(bare.startswith(prefix) for prefix in _NOISE_PREFIXES):
            continue

        line = strip_line(stripped)
        if line.empty:
            continue
        text_body = line.text
        label_match = _LABEL_RE.match(text_body)
        if label_match:
            label = label_match.group("label")
            rest = label_match.group("rest").strip()
            if not (current is not None and label == current.name):
                function = ensure_function()
                function.pending_labels.append(label)
                function.raw_lines.append(f"{label}:")
            if not rest:
                continue
            text_body = rest

        function = ensure_function()
        offset = line.offset if line.offset is not None else function.next_offset
        function.total += 1
        decoded = decode_instruction(
            text_body, offset=offset, listing_line=lineno, source_name=source_name
        )
        if decoded is None:
            report.warnings.append(
                f"{source_name}:{lineno}: unrecognized instruction text {text_body!r}"
            )
            function.next_offset = offset + INSTRUCTION_SIZE
            continue
        function.raw_lines.append(f"/*{offset:04x}*/ {text_body} ;")
        function.add_decoded(decoded)

    close_current()

    if not cubin.functions:
        raise ValueError(f"{source_name}: no instructions found in listing")
    return cubin, report


def ingest_file(path, default_arch: str = "sm_70") -> Tuple[Cubin, IngestReport]:
    """Read and ingest one listing file (convenience wrapper)."""
    import os

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return ingest_listing(
        text, source_name=os.path.basename(str(path)), default_arch=default_arch
    )
