"""Stall-elimination optimizers (the upper half of Table 2).

Each optimizer matches a family of blamed stalls and estimates its speedup
with Equation 2 (``S_e = T / (T - M)``): the best case is that the matched
stalls disappear entirely after the code change.
"""

from __future__ import annotations

from typing import List

from repro.blame.attribution import BlamedEdge
from repro.estimators.code import stall_elimination_speedup
from repro.isa.opcodes import SFU_MATH_OPCODES, is_long_latency_arithmetic
from repro.optimizers.base import AnalysisContext, OptimizationAdvice, Optimizer, OptimizerCategory
from repro.sampling.stall_reasons import DetailedStallReason, StallReason

#: Substrings that identify CUDA math routines in inline stacks.
_MATH_FUNCTION_HINTS = (
    "exp", "log", "pow", "sqrt", "rsqrt", "sin", "cos", "tan", "div", "rcp",
    "__internal", "erf", "cbrt",
)


def _inline_stack_is_math(inline_stack) -> bool:
    return any(
        hint in frame.lower() for frame in inline_stack for hint in _MATH_FUNCTION_HINTS
    )


class RegisterReuseOptimizer(Optimizer):
    """Match memory dependency stalls of local memory read/write instructions.

    Local-memory traffic is almost always register spilling; the fix is to
    reduce register pressure (split loops or functions, recompute values, use
    launch bounds) so values stay in registers.
    """

    name = "GPURegisterReuseOptimizer"
    category = OptimizerCategory.STALL_ELIMINATION
    description = "Local memory (register spill) dependency stalls"
    suggestions = (
        "Local memory stalls usually indicate register spills. Reduce register "
        "pressure so values are reused from registers instead of local memory.",
        "1. Split a large loop body or function into smaller pieces so fewer "
        "values are live at the same time.",
        "2. Recompute cheap expressions instead of keeping them live across "
        "long regions.",
        "3. Tune __launch_bounds__ / maxrregcount so the compiler does not "
        "spill hot values.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched: List[BlamedEdge] = []
        for edge in context.blame.edges:
            if edge.detail is DetailedStallReason.LOCAL_MEMORY_DEPENDENCY:
                matched.append(edge)
            elif edge.is_self_blame:
                instruction = context.instruction(edge.dest)
                if instruction.opcode in ("LDL", "STL"):
                    matched.append(edge)
        samples = sum(edge.stalls for edge in matched)
        speedup = stall_elimination_speedup(context.total_samples, samples)
        return self._advice(context, samples, speedup, context.build_hotspots(matched))


class StrengthReductionOptimizer(Optimizer):
    """Match execution dependency stalls of long latency arithmetic instructions."""

    name = "GPUStrengthReductionOptimizer"
    category = OptimizerCategory.STALL_ELIMINATION
    description = "Execution dependency stalls caused by long-latency arithmetic"
    suggestions = (
        "Long latency non-memory instructions are used. Look for improvements "
        "that are mathematically equivalent, but the compiler is not "
        "intelligent enough to do so.",
        "1. Avoid integer division. Integer division requires using a special "
        "function unit to perform floating point transformations. One can use "
        "multiplication by a reciprocal instead.",
        "2. Avoid conversion. If a float constant is multiplied by a 32-bit "
        "float value, the compiler might transform the 32-bit value to a "
        "64-bit value first; specify the constant as a 32-bit value (e.g. "
        "2.0f) to avoid the conversion.",
        "3. Replace multiplies/divides by powers of two with shifts where "
        "the compiler cannot prove it safe.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched: List[BlamedEdge] = []
        for edge in context.blame.edges:
            if edge.reason is not StallReason.EXECUTION_DEPENDENCY:
                continue
            if edge.detail is not DetailedStallReason.ARITHMETIC_DEPENDENCY:
                continue
            source_instruction = context.instruction(edge.source)
            info = source_instruction.info
            if info.klass.name == "SFU":
                continue  # SFU math belongs to the Fast Math optimizer.
            if is_long_latency_arithmetic(info):
                matched.append(edge)
        samples = sum(edge.stalls for edge in matched)
        speedup = stall_elimination_speedup(context.total_samples, samples)
        return self._advice(context, samples, speedup, context.build_hotspots(matched))


class FunctionSplitOptimizer(Optimizer):
    """Match instruction fetch stalls."""

    name = "GPUFunctionSplitOptimizer"
    category = OptimizerCategory.STALL_ELIMINATION
    description = "Instruction fetch stalls from instruction-cache pressure"
    suggestions = (
        "The kernel's instruction footprint exceeds the instruction cache.",
        "1. Split a large kernel or device function into smaller functions so "
        "the hot path fits in the instruction cache.",
        "2. Avoid forced inlining of large callees and excessive loop "
        "unrolling that bloat the code.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched = [
            edge
            for edge in context.blame.edges
            if edge.reason is StallReason.INSTRUCTION_FETCH
        ]
        samples = sum(edge.stalls for edge in matched)
        speedup = stall_elimination_speedup(context.total_samples, samples)
        return self._advice(context, samples, speedup, context.build_hotspots(matched))


class FastMathOptimizer(Optimizer):
    """Match stalls in CUDA math functions."""

    name = "GPUFastMathOptimizer"
    category = OptimizerCategory.STALL_ELIMINATION
    description = "Stalls in high-precision CUDA math routines"
    suggestions = (
        "High precision math functions dominate the stalls.",
        "1. Compile with --use_fast_math if the application tolerates reduced "
        "precision.",
        "2. Replace double-precision math calls with their single-precision "
        "or intrinsic counterparts (__expf, __logf, __fdividef).",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched: List[BlamedEdge] = []
        for edge in context.blame.edges:
            source_instruction = context.instruction(edge.source)
            info = source_instruction.info
            in_math_inline = _inline_stack_is_math(source_instruction.inline_stack)
            if source_instruction.opcode in SFU_MATH_OPCODES:
                matched.append(edge)
            elif in_math_inline and edge.reason in (
                StallReason.EXECUTION_DEPENDENCY,
                StallReason.MEMORY_DEPENDENCY,
                StallReason.INSTRUCTION_FETCH,
            ):
                matched.append(edge)
            elif info.klass.name == "FLOAT64" and in_math_inline:
                matched.append(edge)
        samples = sum(edge.stalls for edge in matched)
        speedup = stall_elimination_speedup(context.total_samples, samples)
        return self._advice(context, samples, speedup, context.build_hotspots(matched))


class WarpBalanceOptimizer(Optimizer):
    """Match warp synchronization stalls."""

    name = "GPUWarpBalanceOptimizer"
    category = OptimizerCategory.STALL_ELIMINATION
    description = "Synchronization stalls from imbalanced warps"
    suggestions = (
        "Warps wait for each other at __syncthreads barriers.",
        "1. Balance the work performed by different warps of a block before "
        "the barrier (distribute rows/elements evenly).",
        "2. Remove barriers that are not required for correctness, or use "
        "warp-level primitives (__syncwarp, shuffles) instead of block-wide "
        "barriers.",
        "3. Reduce divergence so all warps reach the barrier at similar times.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched = [
            edge
            for edge in context.blame.edges
            if edge.reason is StallReason.SYNCHRONIZATION
            or edge.detail is DetailedStallReason.SYNCHRONIZATION
        ]
        samples = sum(edge.stalls for edge in matched)
        speedup = stall_elimination_speedup(context.total_samples, samples)
        return self._advice(context, samples, speedup, context.build_hotspots(matched))


class MemoryTransactionReductionOptimizer(Optimizer):
    """Match global memory throttling stalls."""

    name = "GPUMemoryTransactionReductionOptimizer"
    category = OptimizerCategory.STALL_ELIMINATION
    description = "Memory throttle stalls from excessive memory transactions"
    suggestions = (
        "The memory pipeline is saturated by too many transactions.",
        "1. Coalesce global memory accesses so each warp issues fewer "
        "transactions.",
        "2. Replace global memory reads with constant memory reads if "
        "elements are shared between threads and not changed during "
        "execution.",
        "3. Use wider vector loads (e.g. float4) and shared-memory staging to "
        "reduce the transaction count.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched = [
            edge
            for edge in context.blame.edges
            if edge.reason is StallReason.MEMORY_THROTTLE
        ]
        samples = sum(edge.stalls for edge in matched)
        speedup = stall_elimination_speedup(context.total_samples, samples)
        return self._advice(context, samples, speedup, context.build_hotspots(matched))
