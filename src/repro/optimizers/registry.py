"""Optimizer registry.

GPA is organized so that custom optimizers can be added to match other
inefficiency patterns (the paper mentions texture fetch combination as an
example).  The registry holds the optimizer set used by the advisor; the
default set is the eleven optimizers of Table 2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.optimizers.base import Optimizer
from repro.optimizers.latency_hiding import (
    CodeReorderingOptimizer,
    FunctionInliningOptimizer,
    LoopUnrollingOptimizer,
)
from repro.optimizers.memory import MemoryCoalescingOptimizer
from repro.optimizers.parallel import BlockIncreaseOptimizer, ThreadIncreaseOptimizer
from repro.optimizers.stall_elimination import (
    FastMathOptimizer,
    FunctionSplitOptimizer,
    MemoryTransactionReductionOptimizer,
    RegisterReuseOptimizer,
    StrengthReductionOptimizer,
    WarpBalanceOptimizer,
)


def default_optimizers() -> List[Optimizer]:
    """The eleven optimizers of Table 2, in the paper's order, plus the
    Memory Coalescing optimizer added with the hierarchy memory model (it
    reports itself not applicable on flat-model profiles)."""
    return [
        RegisterReuseOptimizer(),
        StrengthReductionOptimizer(),
        FunctionSplitOptimizer(),
        FastMathOptimizer(),
        WarpBalanceOptimizer(),
        MemoryTransactionReductionOptimizer(),
        LoopUnrollingOptimizer(),
        CodeReorderingOptimizer(),
        FunctionInliningOptimizer(),
        BlockIncreaseOptimizer(),
        ThreadIncreaseOptimizer(),
        MemoryCoalescingOptimizer(),
    ]


class OptimizerRegistry:
    """A named collection of optimizers with add/remove/lookup support."""

    def __init__(self, optimizers: Optional[Iterable[Optimizer]] = None):
        self._optimizers: Dict[str, Optimizer] = {}
        for optimizer in optimizers if optimizers is not None else default_optimizers():
            self.register(optimizer)

    def register(self, optimizer: Optimizer) -> None:
        """Add (or replace) an optimizer, keyed by its name."""
        self._optimizers[optimizer.name] = optimizer

    def unregister(self, name: str) -> None:
        self._optimizers.pop(name, None)

    def get(self, name: str) -> Optimizer:
        try:
            return self._optimizers[name]
        except KeyError as exc:
            raise KeyError(
                f"no optimizer named {name!r}; registered: {sorted(self._optimizers)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._optimizers

    def __iter__(self):
        return iter(self._optimizers.values())

    def __len__(self) -> int:
        return len(self._optimizers)

    def names(self) -> List[str]:
        return list(self._optimizers)
