"""Performance optimizers (Section 5.1, Table 2).

Each optimizer encodes the rules that match its inefficiency pattern against
the blamed stalls, the program structure and the architectural features, and
uses the appropriate estimator to translate the match into an estimated
speedup.  GPA is modular: custom optimizers can be added by subclassing
:class:`~repro.optimizers.base.Optimizer` and registering them.

Code optimizers / stall elimination:
    Register Reuse, Strength Reduction, Function Split, Fast Math,
    Warp Balance, Memory Transaction Reduction.
Code optimizers / latency hiding:
    Loop Unrolling, Code Reordering, Function Inlining.
Parallel optimizers:
    Block Increase, Thread Increase.
Memory-hierarchy optimizers (require ``memory_model="hierarchy"``):
    Memory Coalescing.
"""

from repro.optimizers.base import (
    AnalysisContext,
    Hotspot,
    OptimizationAdvice,
    Optimizer,
    OptimizerCategory,
)
from repro.optimizers.stall_elimination import (
    FastMathOptimizer,
    FunctionSplitOptimizer,
    MemoryTransactionReductionOptimizer,
    RegisterReuseOptimizer,
    StrengthReductionOptimizer,
    WarpBalanceOptimizer,
)
from repro.optimizers.latency_hiding import (
    CodeReorderingOptimizer,
    FunctionInliningOptimizer,
    LoopUnrollingOptimizer,
)
from repro.optimizers.memory import MemoryCoalescingOptimizer
from repro.optimizers.parallel import BlockIncreaseOptimizer, ThreadIncreaseOptimizer
from repro.optimizers.registry import OptimizerRegistry, default_optimizers

__all__ = [
    "AnalysisContext",
    "BlockIncreaseOptimizer",
    "CodeReorderingOptimizer",
    "FastMathOptimizer",
    "FunctionInliningOptimizer",
    "FunctionSplitOptimizer",
    "Hotspot",
    "LoopUnrollingOptimizer",
    "MemoryCoalescingOptimizer",
    "MemoryTransactionReductionOptimizer",
    "OptimizationAdvice",
    "Optimizer",
    "OptimizerCategory",
    "OptimizerRegistry",
    "RegisterReuseOptimizer",
    "StrengthReductionOptimizer",
    "ThreadIncreaseOptimizer",
    "WarpBalanceOptimizer",
    "default_optimizers",
]
