"""Optimizer framework: analysis context, hotspots, advice and the base class."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.machine import GpuArchitecture, VoltaV100
from repro.blame.attribution import BlamedEdge, BlameResult
from repro.cfg.loops import Loop
from repro.sampling.sample import InstructionKey, KernelProfile
from repro.structure.program import ProgramStructure, SourceLocation


class OptimizerCategory(enum.Enum):
    """Table 2's top-level optimizer taxonomy."""

    STALL_ELIMINATION = "stall elimination"
    LATENCY_HIDING = "latency hiding"
    PARALLEL = "parallel"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Hotspot:
    """One def/use hotspot reported under an optimizer (Figure 8)."""

    #: Where the blamed (def) instruction lives.
    source: SourceLocation
    #: Where the stalls were observed (the use).
    dest: SourceLocation
    #: Stall samples attributed along this def/use pair.
    stalls: float
    #: Fraction of the kernel's total samples.
    ratio: float
    #: Speedup if only this hotspot's stalls were removed.
    speedup: float
    #: Instructions between def and use on the shortest path.
    distance: Optional[int] = None

    def describe(self) -> str:
        lines = [
            f"Hot BLAME code, ratio {self.ratio * 100:.3f}%, "
            f"speedup {self.speedup:.3f}x, distance {self.distance if self.distance is not None else '?'}",
            f"  From {self.source.function} at {self.source.file or '<unknown>'}",
            f"    {self.source.describe()}",
            f"  To {self.dest.function} at {self.dest.file or '<unknown>'}",
            f"    {self.dest.describe()}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Full structured form (the ``describe`` strings are derivable)."""
        return {
            "source": self.source.to_dict(),
            "dest": self.dest.to_dict(),
            "stalls": self.stalls,
            "ratio": self.ratio,
            "speedup": self.speedup,
            "distance": self.distance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Hotspot":
        return cls(
            source=SourceLocation.from_dict(payload["source"]),
            dest=SourceLocation.from_dict(payload["dest"]),
            stalls=payload["stalls"],
            ratio=payload["ratio"],
            speedup=payload["speedup"],
            distance=payload.get("distance"),
        )


@dataclass
class OptimizationAdvice:
    """The result of matching one optimizer against one kernel profile."""

    optimizer: str
    category: OptimizerCategory
    #: Samples matched (M for stall elimination, M_L for latency hiding).
    matched_samples: float
    #: matched_samples / total samples.
    ratio: float
    #: Estimated speedup from the corresponding estimator.
    estimated_speedup: float
    #: Whether the optimizer applies at all to this kernel.
    applicable: bool = True
    #: Optimization hints shown to the user (the numbered suggestions of
    #: Figure 8).
    suggestions: Tuple[str, ...] = ()
    #: Top def/use hotspots.
    hotspots: List[Hotspot] = field(default_factory=list)
    #: Optimizer-specific details (proposed launch configuration, per-loop
    #: breakdowns, ...), kept JSON-friendly for reports.
    details: Dict[str, object] = field(default_factory=dict)

    def __lt__(self, other: "OptimizationAdvice") -> bool:
        return self.estimated_speedup < other.estimated_speedup

    def to_dict(self) -> dict:
        """A lossless JSON-friendly form (inverse: :meth:`from_dict`).

        ``details`` is canonicalized to plain JSON types at dump time so a
        reloaded advice re-dumps to an identical dictionary (tuples an
        optimizer stored would otherwise reload as lists and break the
        fixed point).
        """
        from repro.api.schema import canonical_json

        return {
            "optimizer": self.optimizer,
            "category": self.category.value,
            "matched_samples": self.matched_samples,
            "ratio": self.ratio,
            "estimated_speedup": self.estimated_speedup,
            "applicable": self.applicable,
            "suggestions": list(self.suggestions),
            "details": canonical_json(self.details, context=f"{self.optimizer} details"),
            "hotspots": [hotspot.to_dict() for hotspot in self.hotspots],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OptimizationAdvice":
        return cls(
            optimizer=payload["optimizer"],
            category=OptimizerCategory(payload["category"]),
            matched_samples=payload["matched_samples"],
            ratio=payload["ratio"],
            estimated_speedup=payload["estimated_speedup"],
            applicable=payload.get("applicable", True),
            suggestions=tuple(payload.get("suggestions") or ()),
            hotspots=[Hotspot.from_dict(entry) for entry in payload.get("hotspots") or []],
            details=payload.get("details") or {},
        )


@dataclass
class AnalysisContext:
    """Everything an optimizer can look at when matching."""

    profile: KernelProfile
    structure: ProgramStructure
    blame: BlameResult
    architecture: GpuArchitecture = VoltaV100

    # ------------------------------------------------------------------
    # Kernel-level totals
    # ------------------------------------------------------------------
    @property
    def total_samples(self) -> int:
        return self.profile.total_samples

    @property
    def active_samples(self) -> int:
        return self.profile.active_samples

    @property
    def latency_samples(self) -> int:
        return self.profile.latency_samples

    @property
    def kernel_name(self) -> str:
        return self.profile.kernel

    # ------------------------------------------------------------------
    # Structure-aware sample aggregation
    # ------------------------------------------------------------------
    def location(self, key: InstructionKey) -> SourceLocation:
        return self.structure.location(key[0], key[1])

    def instruction(self, key: InstructionKey):
        return self.structure.function(key[0]).instruction_at(key[1])

    def innermost_loop(self, key: InstructionKey) -> Optional[Loop]:
        return self.structure.function(key[0]).loop_nest.innermost_loop_containing(key[1])

    def active_samples_in_function(self, function_name: str) -> int:
        """Active (issue) samples of all instructions in one function."""
        total = 0
        for (function, _offset), samples in self.profile.instructions.items():
            if function == function_name:
                total += samples.issue_samples
        return total

    def active_samples_in_loop(self, function_name: str, loop: Loop, nested: bool = True) -> int:
        """Active samples of the instructions inside a loop (optionally nested)."""
        function_structure = self.structure.function(function_name)
        loop_nest = function_structure.loop_nest
        loops = loop_nest.nested_loops(loop) if nested else [loop]
        offsets = set()
        for candidate in loops:
            for instruction in loop_nest.instructions_in_loop(candidate):
                offsets.add(instruction.offset)
        total = 0
        for offset in offsets:
            total += self.profile.issue_samples_at(function_name, offset)
        return total

    def same_loop(self, a: InstructionKey, b: InstructionKey) -> bool:
        """Whether two instructions of the same function share a loop."""
        if a[0] != b[0]:
            return False
        return self.structure.function(a[0]).loop_nest.same_loop(a[1], b[1])

    # ------------------------------------------------------------------
    # Hotspot construction
    # ------------------------------------------------------------------
    def build_hotspots(
        self, edges: Sequence[BlamedEdge], limit: int = 5
    ) -> List[Hotspot]:
        """Top def/use hotspots of a matched edge set, by attributed stalls."""
        total = max(self.total_samples, 1)
        ranked = sorted(edges, key=lambda edge: edge.stalls, reverse=True)[:limit]
        hotspots = []
        for edge in ranked:
            stalls = edge.stalls
            hotspots.append(
                Hotspot(
                    source=self.location(edge.source),
                    dest=self.location(edge.dest),
                    stalls=stalls,
                    ratio=stalls / total,
                    speedup=total / max(total - stalls, 1e-9),
                    distance=edge.distance,
                )
            )
        return hotspots


class Optimizer(abc.ABC):
    """Base class of all performance optimizers."""

    #: Human-readable optimizer name (used for ranking and reports).
    name: str = "optimizer"
    category: OptimizerCategory = OptimizerCategory.STALL_ELIMINATION
    #: One-line description of the inefficiency pattern matched.
    description: str = ""
    #: Actionable suggestions listed in the advice report.
    suggestions: Tuple[str, ...] = ()

    @abc.abstractmethod
    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        """Match the optimizer against a kernel and estimate its speedup."""

    # ------------------------------------------------------------------
    def _advice(
        self,
        context: AnalysisContext,
        matched_samples: float,
        estimated_speedup: float,
        hotspots: Optional[List[Hotspot]] = None,
        applicable: bool = True,
        details: Optional[Dict[str, object]] = None,
    ) -> OptimizationAdvice:
        total = max(context.total_samples, 1)
        return OptimizationAdvice(
            optimizer=self.name,
            category=self.category,
            matched_samples=matched_samples,
            ratio=matched_samples / total,
            estimated_speedup=max(estimated_speedup, 1.0) if applicable else 1.0,
            applicable=applicable,
            suggestions=self.suggestions,
            hotspots=hotspots or [],
            details=details or {},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
