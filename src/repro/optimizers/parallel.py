"""Parallel optimizers (the bottom of Table 2).

Parallel optimizers adjust the launch configuration rather than the code:

* **Block Increase** matches when the grid has fewer blocks than the GPU has
  SMs (most of the machine is idle).  It proposes either splitting the same
  total work across more blocks or reshaping blocks (fewer threads per
  block, more blocks), and estimates the effect with the parallel estimator
  (Equations 6-10).
* **Thread Increase** matches when occupancy is limited by the number of
  threads per block (tiny blocks leave warp slots unused and pad warps with
  idle lanes).  It proposes a larger block size with the grid shrunk to keep
  the total thread count.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.estimators.parallel import ParallelEstimate, ParallelEstimator
from repro.optimizers.base import AnalysisContext, OptimizationAdvice, Optimizer, OptimizerCategory
from repro.sampling.sample import LaunchConfig
from repro.sampling.stall_reasons import StallReason


def _estimate_details(estimate: ParallelEstimate) -> dict:
    return {
        "proposed_grid_blocks": estimate.new_config.grid_blocks,
        "proposed_threads_per_block": estimate.new_config.threads_per_block,
        "cw": estimate.cw,
        "ci": estimate.ci,
        "f": estimate.f,
        "issue_rate": estimate.issue_rate,
        "new_issue_rate": estimate.new_issue_rate,
        "new_warps_per_scheduler": estimate.new_warps_per_scheduler,
    }


class BlockIncreaseOptimizer(Optimizer):
    """Match if the number of blocks is less than the number of SMs."""

    name = "GPUBlockIncreaseOptimizer"
    category = OptimizerCategory.PARALLEL
    description = "The grid has fewer blocks than the GPU has SMs"
    suggestions = (
        "The kernel does not launch enough thread blocks to occupy every SM.",
        "1. Increase the number of blocks by splitting the per-block work "
        "(each block processes a smaller tile).",
        "2. Alternatively reduce the number of threads per block while "
        "increasing the number of blocks so more SMs receive work.",
    )

    def __init__(self, estimator: Optional[ParallelEstimator] = None):
        self._estimator = estimator

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        stats = context.profile.statistics
        config = stats.config
        num_sms = context.architecture.num_sms
        if config.grid_blocks >= num_sms:
            return self._advice(context, 0.0, 1.0, applicable=False)

        estimator = self._estimator or ParallelEstimator(context.architecture)

        candidates: List[Tuple[ParallelEstimate, float, str]] = []

        # Candidate 1: split the same total work across enough blocks to give
        # every SM at least one block (work per block shrinks, total work is
        # unchanged).
        split_blocks = min(num_sms, max(config.grid_blocks * 2, num_sms))
        split_config = LaunchConfig(
            split_blocks, config.threads_per_block, config.shared_memory_bytes
        )
        candidates.append(
            (
                estimator.estimate(context.profile, split_config, total_work_factor=1.0),
                1.0,
                "split work across more blocks",
            )
        )

        # Candidate 2: reshape blocks — halve the threads per block, double
        # the number of blocks (total threads unchanged).
        if config.threads_per_block >= 2 * context.architecture.warp_size:
            reshaped = LaunchConfig(
                config.grid_blocks * 2,
                config.threads_per_block // 2,
                config.shared_memory_bytes,
            )
            candidates.append(
                (
                    estimator.estimate(context.profile, reshaped),
                    None,
                    "reduce threads per block and double the number of blocks",
                )
            )

        best_estimate, _work, strategy = max(candidates, key=lambda item: item[0].speedup)
        # The matched samples of a parallel optimizer are the samples the
        # idle-SM condition wastes; report the latency samples as the match so
        # the ratio column is meaningful.
        matched = float(context.latency_samples)
        details = _estimate_details(best_estimate)
        details["strategy"] = strategy
        details["current_grid_blocks"] = config.grid_blocks
        details["num_sms"] = num_sms
        return self._advice(
            context, matched, best_estimate.speedup, hotspots=[], details=details
        )


class ThreadIncreaseOptimizer(Optimizer):
    """Match if occupancy is limited by the number of threads per block."""

    name = "GPUThreadIncreaseOptimizer"
    category = OptimizerCategory.PARALLEL
    description = "Occupancy is limited by a small thread-block size"
    suggestions = (
        "Each block has too few threads: the per-SM block-count limit caps "
        "occupancy and narrow blocks pad warps with idle lanes.",
        "1. Increase the number of threads per block (e.g. to 128-256) and "
        "shrink the grid so the total thread count is unchanged.",
        "2. If the block shape is 2-D, widen the fastest-varying dimension to "
        "a multiple of the warp size.",
    )

    #: Proposed block size when the optimizer applies.
    target_threads_per_block = 256

    def __init__(self, estimator: Optional[ParallelEstimator] = None):
        self._estimator = estimator

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        stats = context.profile.statistics
        config = stats.config
        arch = context.architecture

        limited_by_blocks = stats.occupancy_limiter == "blocks"
        tiny_blocks = config.threads_per_block < 2 * arch.warp_size
        if not (limited_by_blocks or tiny_blocks):
            return self._advice(context, 0.0, 1.0, applicable=False)

        estimator = self._estimator or ParallelEstimator(context.architecture)
        new_threads = min(self.target_threads_per_block, arch.max_threads_per_block)
        total_threads = config.grid_blocks * config.threads_per_block
        new_blocks = max(1, math.ceil(total_threads / new_threads))
        new_config = LaunchConfig(new_blocks, new_threads, config.shared_memory_bytes)

        estimate = estimator.estimate(context.profile, new_config)
        matched = float(context.latency_samples)
        details = _estimate_details(estimate)
        details["current_threads_per_block"] = config.threads_per_block
        details["occupancy_limiter"] = stats.occupancy_limiter
        return self._advice(
            context, matched, estimate.speedup, hotspots=[], details=details
        )
