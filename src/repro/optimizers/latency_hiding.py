"""Latency-hiding optimizers (the lower half of Table 2's code optimizers).

Latency-hiding optimizations rearrange issue order so that independent work
covers stall latency (Figure 6).  Their benefit is bounded by the active
samples available in the scope they may rearrange (Equations 4 and 5) and is
never more than 2x (Theorem 5.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.blame.attribution import BlamedEdge
from repro.estimators.code import (
    combined_scoped_speedup,
    latency_hiding_speedup,
    scoped_latency_hiding_speedup,
)
from repro.optimizers.base import AnalysisContext, OptimizationAdvice, Optimizer, OptimizerCategory
from repro.sampling.stall_reasons import DetailedStallReason, StallReason

#: Dependent stall classes that latency hiding can cover: global memory
#: latency and execution (arithmetic / shared-memory) latency.
_HIDEABLE_DETAILS = (
    DetailedStallReason.GLOBAL_MEMORY_DEPENDENCY,
    DetailedStallReason.ARITHMETIC_DEPENDENCY,
    DetailedStallReason.SHARED_MEMORY_DEPENDENCY,
)


def _hideable(edge: BlamedEdge) -> bool:
    if edge.reason not in (StallReason.MEMORY_DEPENDENCY, StallReason.EXECUTION_DEPENDENCY):
        return False
    return edge.detail in _HIDEABLE_DETAILS


class LoopUnrollingOptimizer(Optimizer):
    """Match global memory and execution dependency stalls inside loops."""

    name = "GPULoopUnrollingOptimizer"
    category = OptimizerCategory.LATENCY_HIDING
    description = "Dependent stalls whose def and use sit in the same loop"
    suggestions = (
        "Loops with dependent stalls can be unrolled so independent "
        "iterations hide each other's latency.",
        "1. Add #pragma unroll (with an explicit factor) to the hot loop if "
        "the compiler fails to unroll it automatically.",
        "2. Unroll manually and interleave loads of iteration i+1 with "
        "computation of iteration i.",
        "3. Check that the trip count is large enough for unrolling to pay "
        "off; highly imbalanced loops benefit less.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched: List[BlamedEdge] = []
        per_loop: Dict[Tuple[str, int], float] = defaultdict(float)
        for edge in context.blame.edges:
            if not _hideable(edge) or edge.is_self_blame:
                continue
            if not context.same_loop(edge.source, edge.dest):
                continue
            loop = context.innermost_loop(edge.dest)
            if loop is None:
                continue
            matched.append(edge)
            per_loop[(edge.dest[0], loop.index)] += edge.stalls

        # Equation 5 per loop: the hidden latency of each matched loop is
        # bounded by the active samples available in the loop and its nested
        # loops.
        per_scope = {}
        loop_details = []
        for (function_name, loop_index), matched_latency in per_loop.items():
            loop = context.structure.function(function_name).loop_nest.loop(loop_index)
            active = context.active_samples_in_loop(function_name, loop, nested=True)
            per_scope[(function_name, loop_index)] = (active, matched_latency)
            loop_details.append(
                {
                    "function": function_name,
                    "loop_header_line": loop.header_line,
                    "matched_latency_samples": matched_latency,
                    "active_samples_in_scope": active,
                    "scope_speedup": scoped_latency_hiding_speedup(
                        context.total_samples, [active], matched_latency
                    ),
                }
            )

        samples = sum(edge.stalls for edge in matched)
        speedup = combined_scoped_speedup(context.total_samples, per_scope)
        return self._advice(
            context,
            samples,
            speedup,
            context.build_hotspots(matched),
            details={"loops": sorted(loop_details, key=lambda d: -d["matched_latency_samples"])},
        )


class CodeReorderingOptimizer(Optimizer):
    """Match global memory and execution dependency stalls (short def-use distance)."""

    name = "GPUCodeReorderingOptimizer"
    category = OptimizerCategory.LATENCY_HIDING
    description = "Dependent stalls whose def-use distance is short enough to widen"
    suggestions = (
        "The distance between a load (or long-latency producer) and its first "
        "use is too short to hide the latency.",
        "1. Separate subscripted loads from their uses by reordering code: "
        "read values needed by the next iteration before the synchronization "
        "or computation of the current one.",
        "2. Hoist address computation and loads above independent work.",
        "3. Watch data-dependence and synchronization restrictions: "
        "instructions after a barrier cannot be moved before it.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched: List[BlamedEdge] = []
        per_function: Dict[str, float] = defaultdict(float)
        for edge in context.blame.edges:
            if not _hideable(edge) or edge.is_self_blame:
                continue
            matched.append(edge)
            per_function[edge.dest[0]] += edge.stalls

        per_scope = {}
        for function_name, matched_latency in per_function.items():
            active = context.active_samples_in_function(function_name)
            per_scope[function_name] = (active, matched_latency)

        samples = sum(edge.stalls for edge in matched)
        speedup = combined_scoped_speedup(context.total_samples, per_scope)
        # Prefer hotspots with the shortest def/use distance: those are the
        # pairs reordering can actually improve.
        hotspots = context.build_hotspots(matched)
        return self._advice(
            context,
            samples,
            speedup,
            hotspots,
            details={
                "functions": {
                    name: {"matched_latency_samples": value, "active_samples": active}
                    for name, (active, value) in per_scope.items()
                }
            },
        )


class FunctionInliningOptimizer(Optimizer):
    """Match stalls in device functions and their call sites."""

    name = "GPUFunctionInliningOptimizer"
    category = OptimizerCategory.LATENCY_HIDING
    description = "Stalls inside non-inlined device functions and at their call sites"
    suggestions = (
        "Calls to device functions prevent the compiler from scheduling the "
        "callee's loads together with the caller's independent work.",
        "1. Mark small, hot device functions __forceinline__ (the "
        "always_inline attribute may be refused when the register/size limit "
        "is exceeded).",
        "2. Manually integrate very hot small callees into their callers.",
        "3. For large callees consider outlining cold paths instead, so the "
        "hot path can be inlined.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        matched: List[BlamedEdge] = []
        for edge in context.blame.edges:
            dest_function = context.structure.function(edge.dest[0])
            if not dest_function.is_kernel:
                matched.append(edge)
                continue
            dest_instruction = context.instruction(edge.dest)
            if dest_instruction.is_call:
                matched.append(edge)
        samples = sum(edge.stalls for edge in matched)
        speedup = latency_hiding_speedup(
            context.total_samples, context.active_samples, samples
        )
        return self._advice(context, samples, speedup, context.build_hotspots(matched))
