"""Memory-locality optimizers driven by the hierarchy memory model.

The optimizers in :mod:`repro.optimizers.stall_elimination` only see stall
*samples*; the memory-hierarchy model (``memory_model="hierarchy"``) also
records what the memory system actually did — warp requests, coalesced
sector transactions, L1/L2 hit rates, DRAM traffic — through
:class:`~repro.sampling.memory.MemoryStatistics` on the profile's launch
statistics.  :class:`MemoryCoalescingOptimizer` consumes that signal: it
estimates the speedup from restructuring accesses so each warp request
touches the minimum number of sectors, scaling the memory-bound stall
samples by the excess-transaction fraction instead of assuming they all
vanish.
"""

from __future__ import annotations

from typing import List

from repro.blame.attribution import BlamedEdge
from repro.estimators.code import stall_elimination_speedup
from repro.optimizers.base import (
    AnalysisContext,
    OptimizationAdvice,
    Optimizer,
    OptimizerCategory,
)
from repro.sampling.memory import ACCESS_BYTES
from repro.sampling.stall_reasons import StallReason


def _ideal_sectors_per_request(context: AnalysisContext) -> float:
    """Sectors an ideally coalesced warp request touches on this machine.

    ``warp_size`` threads x :data:`ACCESS_BYTES` over the architecture's
    sector size — 4 on every current model (32 x 4 / 32, one 128-byte
    cache line).
    """
    architecture = context.architecture
    return max(
        1.0,
        architecture.warp_size * ACCESS_BYTES / architecture.memory.sector_bytes,
    )


class MemoryCoalescingOptimizer(Optimizer):
    """Match memory-bound stalls amplified by uncoalesced accesses.

    Requires the hierarchy memory model: without
    :class:`~repro.sampling.memory.MemoryStatistics` on the profile there is
    no transactions-per-request figure to reason from, and the advice
    reports itself not applicable (the flat model's throttle stalls belong
    to the Memory Transaction Reduction optimizer).
    """

    name = "GPUMemoryCoalescingOptimizer"
    category = OptimizerCategory.STALL_ELIMINATION
    description = "Memory-bound stalls from uncoalesced (multi-sector) accesses"
    suggestions = (
        "Warps touch more 32-byte sectors per request than the access width "
        "requires; the excess transactions inflate memory latency and "
        "saturate the L1 miss path.",
        "1. Make consecutive threads access consecutive addresses (unit "
        "stride) so a warp's accesses coalesce into one cache line.",
        "2. Restructure array-of-structs data into struct-of-arrays so each "
        "field loads with unit stride.",
        "3. Stage strided or irregular data through shared memory with a "
        "coalesced global load, then access it at any stride on chip.",
    )

    def match(self, context: AnalysisContext) -> OptimizationAdvice:
        memory = context.profile.statistics.memory
        if memory is None or memory.requests == 0:
            return self._advice(
                context, 0.0, 1.0, applicable=False,
                details={"reason": "no memory-hierarchy statistics "
                                   "(profile collected with memory_model='flat')"},
            )

        ideal = _ideal_sectors_per_request(context)
        per_request = memory.transactions_per_request
        excess = max(0.0, 1.0 - ideal / per_request) if per_request > 0 else 0.0

        matched_edges: List[BlamedEdge] = [
            edge
            for edge in context.blame.edges
            if edge.reason in (StallReason.MEMORY_DEPENDENCY, StallReason.MEMORY_THROTTLE)
        ]
        memory_stalls = sum(edge.stalls for edge in matched_edges)
        # Only the excess-transaction share of the memory-bound stalls can
        # be recovered by coalescing (Equation 2 with M scaled by the
        # fraction of transactions that perfect coalescing removes).
        matched = memory_stalls * excess
        speedup = stall_elimination_speedup(context.total_samples, matched)
        details = {
            "transactions_per_request": per_request,
            "ideal_transactions_per_request": ideal,
            "excess_transaction_fraction": excess,
            "l1_hit_rate": memory.l1_hit_rate,
            "l2_hit_rate": memory.l2_hit_rate,
            "dram_bytes": memory.dram_bytes,
            "access_bytes": ACCESS_BYTES,
        }
        return self._advice(
            context,
            matched,
            speedup,
            hotspots=context.build_hotspots(matched_edges) if matched > 0 else [],
            applicable=matched > 0,
            details=details,
        )
