"""Basic blocks.

A basic block is a maximal straight-line sequence of instructions with a
single entry (the first instruction) and a single exit (the last
instruction).  nvdisasm emits *super blocks* that may span branch targets;
GPA splits them so that every branch target starts a block — the same
splitting is performed by :func:`repro.cfg.graph.build_cfg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.isa.instruction import Instruction


@dataclass
class BasicBlock:
    """A contiguous run of instructions ending at a control transfer."""

    #: Index of the block within its CFG (assigned by the builder).
    index: int
    #: Instructions in program order.
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def start_offset(self) -> int:
        """Byte offset of the first instruction."""
        if not self.instructions:
            raise ValueError("empty basic block has no start offset")
        return self.instructions[0].offset

    @property
    def end_offset(self) -> int:
        """Byte offset of the last instruction."""
        if not self.instructions:
            raise ValueError("empty basic block has no end offset")
        return self.instructions[-1].offset

    @property
    def terminator(self) -> Optional[Instruction]:
        """The last instruction, if any."""
        return self.instructions[-1] if self.instructions else None

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.instructions)

    def contains_offset(self, offset: int) -> bool:
        """Whether ``offset`` falls on an instruction of this block."""
        return any(instruction.offset == offset for instruction in self.instructions)

    def lines(self) -> Tuple[int, ...]:
        """Distinct source lines mapped to instructions of the block."""
        seen = []
        for instruction in self.instructions:
            if instruction.line is not None and instruction.line not in seen:
                seen.append(instruction.line)
        return tuple(seen)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        if not self.instructions:
            return f"BasicBlock(index={self.index}, empty)"
        return (
            f"BasicBlock(index={self.index}, "
            f"offsets={self.start_offset:#x}-{self.end_offset:#x}, "
            f"n={len(self.instructions)})"
        )
