"""Control flow graph construction.

``build_cfg`` consumes the instruction list of one function and produces a
:class:`ControlFlowGraph`:

1. identify *leaders* — the first instruction, every branch target, and every
   instruction following a branch/exit (this is the "split super blocks into
   basic blocks" step the paper applies to nvdisasm's raw output);
2. group instructions into :class:`~repro.cfg.basic_block.BasicBlock` runs;
3. add edges: fall-through edges for non-terminating blocks and predicated
   branches, taken edges for branch targets, and no successors after ``EXIT``
   / ``RET``.

The CFG exposes the queries GPA's analyses need: predecessor/successor sets,
instruction-to-block mapping, path existence, shortest/longest path lengths
measured in *instructions* (used by the dominator- and latency-based pruning
rules and the path-ratio apportioning heuristic), and reverse-postorder
traversal for the dominator computation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cfg.basic_block import BasicBlock
from repro.isa.instruction import Instruction


@dataclass
class ControlFlowGraph:
    """A per-function control flow graph over basic blocks."""

    blocks: List[BasicBlock]
    successors: Dict[int, List[int]]
    predecessors: Dict[int, List[int]]
    entry_index: int = 0

    # Populated lazily.
    _block_of_offset: Optional[Dict[int, int]] = field(default=None, repr=False)
    _instruction_of_offset: Optional[Dict[int, Instruction]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_index]

    def block_containing(self, offset: int) -> BasicBlock:
        """The basic block containing the instruction at ``offset``."""
        self._ensure_offset_maps()
        try:
            return self.blocks[self._block_of_offset[offset]]
        except KeyError as exc:
            raise KeyError(f"no instruction at offset {offset:#x}") from exc

    def instruction_at(self, offset: int) -> Instruction:
        """The instruction at ``offset``."""
        self._ensure_offset_maps()
        try:
            return self._instruction_of_offset[offset]
        except KeyError as exc:
            raise KeyError(f"no instruction at offset {offset:#x}") from exc

    def instructions(self) -> List[Instruction]:
        """All instructions in offset order."""
        result = []
        for block in self.blocks:
            result.extend(block.instructions)
        result.sort(key=lambda instruction: instruction.offset)
        return result

    def _ensure_offset_maps(self) -> None:
        if self._block_of_offset is None or self._instruction_of_offset is None:
            block_map: Dict[int, int] = {}
            instruction_map: Dict[int, Instruction] = {}
            for block in self.blocks:
                for instruction in block.instructions:
                    block_map[instruction.offset] = block.index
                    instruction_map[instruction.offset] = instruction
            self._block_of_offset = block_map
            self._instruction_of_offset = instruction_map

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def successor_blocks(self, block: BasicBlock) -> List[BasicBlock]:
        return [self.blocks[i] for i in self.successors.get(block.index, [])]

    def predecessor_blocks(self, block: BasicBlock) -> List[BasicBlock]:
        return [self.blocks[i] for i in self.predecessors.get(block.index, [])]

    def reverse_post_order(self) -> List[int]:
        """Block indices in reverse postorder from the entry block."""
        visited: Set[int] = set()
        order: List[int] = []

        def visit(index: int) -> None:
            stack = [(index, iter(self.successors.get(index, [])))]
            visited.add(index)
            while stack:
                node, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in visited:
                        visited.add(successor)
                        stack.append((successor, iter(self.successors.get(successor, []))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry_index)
        # Include unreachable blocks at the end so analyses never KeyError.
        for block in self.blocks:
            if block.index not in visited:
                order.append(block.index)
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Instruction-level path queries (for pruning and apportioning)
    # ------------------------------------------------------------------
    def instruction_path_exists(self, source_offset: int, dest_offset: int) -> bool:
        """Whether execution can flow from ``source_offset`` to ``dest_offset``."""
        return self.shortest_path_instructions(source_offset, dest_offset) is not None

    def shortest_path_instructions(
        self, source_offset: int, dest_offset: int
    ) -> Optional[int]:
        """Minimum number of instructions executed strictly between source and dest.

        Returns ``None`` when no path exists.  Both endpoints are excluded
        from the count; a def immediately followed by its use has distance 0.
        """
        return self._path_instructions(source_offset, dest_offset, longest=False)

    def longest_path_instructions(
        self, source_offset: int, dest_offset: int, limit: int = 4096
    ) -> Optional[int]:
        """Maximum (acyclic) number of instructions strictly between source and dest.

        Used by the apportioning heuristic: "if an instruction i has multiple
        paths to instruction j in a control flow graph, we use the longest
        one".  Cycles are not followed more than once (simple paths over the
        block graph); ``limit`` caps the returned value.
        """
        value = self._path_instructions(source_offset, dest_offset, longest=True)
        if value is None:
            return None
        return min(value, limit)

    def _path_instructions(
        self, source_offset: int, dest_offset: int, longest: bool
    ) -> Optional[int]:
        self._ensure_offset_maps()
        if source_offset not in self._block_of_offset or dest_offset not in self._block_of_offset:
            return None
        source_block = self.blocks[self._block_of_offset[source_offset]]
        dest_block = self.blocks[self._block_of_offset[dest_offset]]

        source_position = _position_in_block(source_block, source_offset)
        dest_position = _position_in_block(dest_block, dest_offset)

        if source_block.index == dest_block.index and source_position < dest_position:
            within = dest_position - source_position - 1
            if not longest:
                return within
            # For the longest path also consider going around a cycle if one
            # exists; handled by the general search below, seeded with the
            # within-block distance.
            best = within
        else:
            best = None

        # Distance from the end of the source block to the start of each block.
        tail = source_block.size - source_position - 1

        # Search over block-level paths from successors of the source block.
        results: List[int] = []
        initial: List[Tuple[int, int, FrozenSet[int]]] = []
        for successor in self.successors.get(source_block.index, []):
            initial.append((successor, tail, frozenset({source_block.index})))

        best_by_block: Dict[int, int] = {}
        stack = initial
        while stack:
            block_index, distance, visited = stack.pop()
            if block_index == dest_block.index:
                results.append(distance + dest_position)
                # For shortest path we can prune aggressively via best_by_block.
                if not longest:
                    continue
            block = self.blocks[block_index]
            through = distance + block.size
            if not longest:
                previous = best_by_block.get(block_index)
                if previous is not None and previous <= distance:
                    continue
                best_by_block[block_index] = distance
            else:
                if block_index in visited:
                    continue
                if through > 4096:
                    through = 4096
            next_visited = visited | {block_index}
            for successor in self.successors.get(block_index, []):
                stack.append((successor, through, next_visited))

        if results:
            candidate = max(results) if longest else min(results)
            if best is None:
                best = candidate
            else:
                best = max(best, candidate) if longest else min(best, candidate)
        return best

    def blocks_on_all_paths(self, source_offset: int, dest_offset: int) -> Set[int]:
        """Indices of blocks that appear on *every* path from source to dest.

        Used by the dominator-based pruning rule: an intervening def ``k``
        kills the edge only if ``k`` lies on every control-flow path from the
        def ``i`` to the use ``j``.
        """
        self._ensure_offset_maps()
        source_block = self._block_of_offset[source_offset]
        dest_block = self._block_of_offset[dest_offset]

        # A block b is on every path iff removing b disconnects source from dest
        # (or b is the source/dest block itself).
        on_all: Set[int] = set()
        for block in self.blocks:
            if block.index in (source_block, dest_block):
                on_all.add(block.index)
                continue
            if not self._reachable_avoiding(source_block, dest_block, block.index):
                on_all.add(block.index)
        return on_all

    def _reachable_avoiding(self, start: int, goal: int, banned: int) -> bool:
        if start == banned or goal == banned:
            return False
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            if node == goal:
                return True
            for successor in self.successors.get(node, []):
                if successor != banned and successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return False

    def __len__(self) -> int:
        return len(self.blocks)


def _position_in_block(block: BasicBlock, offset: int) -> int:
    for position, instruction in enumerate(block.instructions):
        if instruction.offset == offset:
            return position
    raise KeyError(f"offset {offset:#x} not in block {block.index}")


def build_cfg(instructions: Sequence[Instruction]) -> ControlFlowGraph:
    """Build a control flow graph from a function's instruction list."""
    if not instructions:
        raise ValueError("cannot build a CFG from an empty instruction list")

    ordered = sorted(instructions, key=lambda instruction: instruction.offset)
    offsets = [instruction.offset for instruction in ordered]
    offset_set = set(offsets)

    # --- find leaders (split superblocks) -----------------------------
    leaders: Set[int] = {ordered[0].offset}
    for position, instruction in enumerate(ordered):
        if instruction.is_branch or instruction.is_exit or instruction.is_call:
            if position + 1 < len(ordered):
                leaders.add(ordered[position + 1].offset)
        if instruction.is_branch and instruction.target is not None:
            if instruction.target in offset_set:
                leaders.add(instruction.target)

    # --- group into blocks ---------------------------------------------
    blocks: List[BasicBlock] = []
    current: List[Instruction] = []
    for instruction in ordered:
        if instruction.offset in leaders and current:
            blocks.append(BasicBlock(index=len(blocks), instructions=current))
            current = []
        current.append(instruction)
    if current:
        blocks.append(BasicBlock(index=len(blocks), instructions=current))

    block_of_offset: Dict[int, int] = {}
    for block in blocks:
        for instruction in block.instructions:
            block_of_offset[instruction.offset] = block.index

    # --- add edges -------------------------------------------------------
    successors: Dict[int, List[int]] = {block.index: [] for block in blocks}
    predecessors: Dict[int, List[int]] = {block.index: [] for block in blocks}

    def add_edge(source: int, dest: int) -> None:
        if dest not in successors[source]:
            successors[source].append(dest)
            predecessors[dest].append(source)

    for position, block in enumerate(blocks):
        terminator = block.terminator
        next_block = blocks[position + 1] if position + 1 < len(blocks) else None
        if terminator is None:
            if next_block is not None:
                add_edge(block.index, next_block.index)
            continue
        if terminator.is_exit:
            # Real SASS commonly guards the exit (``@!P0 EXIT``): threads
            # whose predicate fails fall through to the next block.
            if terminator.is_predicated and next_block is not None:
                add_edge(block.index, next_block.index)
            continue
        if terminator.is_branch:
            if terminator.target is not None and terminator.target in block_of_offset:
                add_edge(block.index, block_of_offset[terminator.target])
            # A predicated branch (or a branch with an unknown/indirect
            # target) can fall through.
            if terminator.is_predicated or terminator.target is None or terminator.opcode == "BRX":
                if next_block is not None:
                    add_edge(block.index, next_block.index)
            continue
        # Calls and ordinary instructions fall through.
        if next_block is not None:
            add_edge(block.index, next_block.index)

    return ControlFlowGraph(
        blocks=blocks,
        successors=successors,
        predecessors=predecessors,
        entry_index=0,
    )
