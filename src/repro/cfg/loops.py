"""Natural-loop detection and loop-nest trees.

GPA's static analyzer uses Dyninst to recover loop nests from the control
flow graph; the Loop Unrolling optimizer and the scope-limited latency-hiding
estimator (Equation 5) consume them.  This module finds natural loops via
back edges (edges whose target dominates their source), merges loops sharing
a header, and arranges them into a nesting tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cfg.dominators import DominatorTree, compute_dominator_tree
from repro.cfg.graph import ControlFlowGraph
from repro.isa.instruction import Instruction


@dataclass
class Loop:
    """One natural loop: a header block plus its body blocks."""

    #: Stable identifier within the function (assigned in header-offset order).
    index: int
    #: Block index of the loop header.
    header: int
    #: All block indices in the loop, including the header.
    blocks: FrozenSet[int]
    #: Back edges (source block -> header) that define the loop.
    back_edges: Tuple[Tuple[int, int], ...]
    #: Parent loop index in the nest tree, or ``None`` for outermost loops.
    parent: Optional[int] = None
    #: Children loop indices.
    children: List[int] = field(default_factory=list)
    #: Source line of the first instruction of the header (for reports).
    header_line: Optional[int] = None
    #: Byte offset of the first instruction of the header.
    header_offset: Optional[int] = None

    @property
    def depth_key(self) -> int:
        return len(self.blocks)

    def contains_block(self, block_index: int) -> bool:
        return block_index in self.blocks

    def __repr__(self) -> str:
        line = f", line={self.header_line}" if self.header_line is not None else ""
        return f"Loop(index={self.index}, header_block={self.header}, blocks={sorted(self.blocks)}{line})"


@dataclass
class LoopNestTree:
    """The loops of one function arranged by containment."""

    loops: List[Loop]
    cfg: ControlFlowGraph

    def outermost(self) -> List[Loop]:
        """Loops with no parent."""
        return [loop for loop in self.loops if loop.parent is None]

    def loop(self, index: int) -> Loop:
        return self.loops[index]

    def innermost_loop_containing(self, offset: int) -> Optional[Loop]:
        """The innermost loop containing the instruction at ``offset``."""
        try:
            block = self.cfg.block_containing(offset)
        except KeyError:
            return None
        best: Optional[Loop] = None
        for loop in self.loops:
            if loop.contains_block(block.index):
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def loops_containing(self, offset: int) -> List[Loop]:
        """All loops containing the instruction at ``offset``, innermost first."""
        try:
            block = self.cfg.block_containing(offset)
        except KeyError:
            return []
        containing = [loop for loop in self.loops if loop.contains_block(block.index)]
        containing.sort(key=lambda loop: len(loop.blocks))
        return containing

    def nested_loops(self, loop: Loop) -> List[Loop]:
        """The loop itself plus every loop nested (transitively) inside it."""
        result = [loop]
        queue = list(loop.children)
        while queue:
            child = self.loops[queue.pop()]
            result.append(child)
            queue.extend(child.children)
        return result

    def instructions_in_loop(self, loop: Loop) -> List[Instruction]:
        """All instructions belonging to the loop body."""
        instructions: List[Instruction] = []
        for block_index in sorted(loop.blocks):
            instructions.extend(self.cfg.blocks[block_index].instructions)
        return instructions

    def same_loop(self, offset_a: int, offset_b: int) -> bool:
        """Whether two instructions share at least one containing loop."""
        loops_a = {loop.index for loop in self.loops_containing(offset_a)}
        if not loops_a:
            return False
        loops_b = {loop.index for loop in self.loops_containing(offset_b)}
        return bool(loops_a & loops_b)

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)


def find_loops(
    cfg: ControlFlowGraph, dominator_tree: Optional[DominatorTree] = None
) -> LoopNestTree:
    """Find natural loops in ``cfg`` and build the loop-nest tree."""
    dominator_tree = dominator_tree or compute_dominator_tree(cfg)

    # --- collect back edges ----------------------------------------------
    back_edges: List[Tuple[int, int]] = []
    for block in cfg.blocks:
        for successor in cfg.successors.get(block.index, []):
            if dominator_tree.dominates(successor, block.index):
                back_edges.append((block.index, successor))

    # --- natural loop of each back edge, merged per header -----------------
    bodies: Dict[int, Set[int]] = {}
    edges_by_header: Dict[int, List[Tuple[int, int]]] = {}
    for source, header in back_edges:
        body = bodies.setdefault(header, {header})
        edges_by_header.setdefault(header, []).append((source, header))
        stack = [source]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(cfg.predecessors.get(node, []))

    # --- create Loop objects, outermost-last ordering by size ---------------
    headers = sorted(bodies, key=lambda header: cfg.blocks[header].start_offset)
    loops: List[Loop] = []
    for index, header in enumerate(headers):
        header_block = cfg.blocks[header]
        first_instruction = header_block.instructions[0] if header_block.instructions else None
        loops.append(
            Loop(
                index=index,
                header=header,
                blocks=frozenset(bodies[header]),
                back_edges=tuple(edges_by_header[header]),
                header_line=first_instruction.line if first_instruction else None,
                header_offset=first_instruction.offset if first_instruction else None,
            )
        )

    # --- nesting: the parent of a loop is the smallest strictly-containing loop
    for loop in loops:
        best_parent: Optional[Loop] = None
        for candidate in loops:
            if candidate.index == loop.index:
                continue
            if loop.blocks < candidate.blocks or (
                loop.blocks <= candidate.blocks and loop.header != candidate.header
            ):
                if best_parent is None or len(candidate.blocks) < len(best_parent.blocks):
                    best_parent = candidate
        if best_parent is not None:
            loop.parent = best_parent.index
            best_parent.children.append(loop.index)

    return LoopNestTree(loops=loops, cfg=cfg)
