"""Control-flow analysis (nvdisasm + Dyninst substitute).

GPA's static analyzer feeds nvdisasm's raw control flow graphs, with super
blocks split into basic blocks, into Dyninst to recover loop nests.  This
package provides the equivalent functionality for our SASS-like ISA:

* :mod:`repro.cfg.basic_block` — basic blocks over instruction lists,
* :mod:`repro.cfg.graph` — CFG construction with superblock splitting,
* :mod:`repro.cfg.dominators` — dominator tree computation,
* :mod:`repro.cfg.loops` — natural loop detection and loop-nest trees.
"""

from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.cfg.dominators import DominatorTree, compute_dominator_tree
from repro.cfg.loops import Loop, LoopNestTree, find_loops

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "DominatorTree",
    "Loop",
    "LoopNestTree",
    "build_cfg",
    "compute_dominator_tree",
    "find_loops",
]
