"""Dominator tree computation.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm over the
basic-block CFG.  Dominators feed the loop detector (a back edge is an edge
whose target dominates its source) and support structural queries used by
optimizers and the report generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cfg.graph import ControlFlowGraph


@dataclass
class DominatorTree:
    """Immediate-dominator relation over basic blocks of one CFG."""

    #: Immediate dominator of each block index (the entry maps to itself).
    immediate_dominators: Dict[int, int]
    entry_index: int

    def dominates(self, a: int, b: int) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.immediate_dominators.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    def strictly_dominates(self, a: int, b: int) -> bool:
        """Whether ``a`` dominates ``b`` and ``a != b``."""
        return a != b and self.dominates(a, b)

    def dominators_of(self, block_index: int) -> List[int]:
        """All dominators of ``block_index`` from the block to the entry."""
        chain = [block_index]
        node = block_index
        while True:
            parent = self.immediate_dominators.get(node)
            if parent is None or parent == node:
                break
            chain.append(parent)
            node = parent
        return chain

    def children(self, block_index: int) -> List[int]:
        """Blocks immediately dominated by ``block_index``."""
        return sorted(
            node
            for node, parent in self.immediate_dominators.items()
            if parent == block_index and node != block_index
        )


def compute_dominator_tree(cfg: ControlFlowGraph) -> DominatorTree:
    """Compute the dominator tree of ``cfg``."""
    order = cfg.reverse_post_order()
    # Restrict to blocks reachable from the entry; unreachable blocks get the
    # entry as a conservative dominator so queries never fail.
    position = {block_index: index for index, block_index in enumerate(order)}

    idom: Dict[int, Optional[int]] = {block.index: None for block in cfg.blocks}
    idom[cfg.entry_index] = cfg.entry_index

    def intersect(a: int, b: int) -> int:
        finger_a, finger_b = a, b
        while finger_a != finger_b:
            while position[finger_a] > position[finger_b]:
                parent = idom[finger_a]
                if parent is None:
                    return finger_b
                finger_a = parent
            while position[finger_b] > position[finger_a]:
                parent = idom[finger_b]
                if parent is None:
                    return finger_a
                finger_b = parent
        return finger_a

    changed = True
    while changed:
        changed = False
        for block_index in order:
            if block_index == cfg.entry_index:
                continue
            predecessors = [
                pred for pred in cfg.predecessors.get(block_index, []) if idom[pred] is not None
            ]
            if not predecessors:
                continue
            new_idom = predecessors[0]
            for pred in predecessors[1:]:
                new_idom = intersect(new_idom, pred)
            if idom[block_index] != new_idom:
                idom[block_index] = new_idom
                changed = True

    resolved = {
        block_index: (dominator if dominator is not None else cfg.entry_index)
        for block_index, dominator in idom.items()
    }
    return DominatorTree(immediate_dominators=resolved, entry_index=cfg.entry_index)
