"""The typed lint rules of the static checker.

Each rule consumes a prepared :class:`LintContext` (CFG, dominators, loop
nest, liveness, divergence taint, post-dominators, the workload access spec
when one exists) and emits :class:`~repro.staticcheck.report.StaticDiagnostic`
findings.  Rules never mutate the context, and every rule is deterministic:
the engine sorts the combined findings by ``(function, offset, rule)``.

The divergence analysis feeding two of the rules is a forward taint over the
worklist solver: thread-varying special registers (``SR_TID.*``,
``SR_LANEID``) seed the taint, which then flows through register and
predicate definitions — a load whose *address* is thread-varying produces a
thread-varying *value*, and a predicate computed from a tainted register
makes every instruction it guards divergent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.arch.machine import GpuArchitecture
from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.isa.instruction import Instruction
from repro.isa.registers import MemorySpace, SpecialRegister
from repro.sampling.workload import WorkloadSpec
from repro.staticcheck.dataflow import FORWARD, DataflowProblem, solve_dataflow
from repro.staticcheck.liveness import (
    LivenessAnalysis,
    defined_register_indices,
    may_write_only,
    used_register_indices,
)
from repro.staticcheck.report import StaticDiagnostic
from repro.structure.program import FunctionStructure

#: Special-register prefixes that vary between the threads of one warp.
#: (``SR_CTAID.*`` — the block index — is uniform within a block and so
#: cannot cause intra-warp divergence.)
THREAD_VARYING_PREFIXES = ("SR_TID", "SR_LANEID")

#: Shared-memory geometry of every modelled architecture.
SHARED_BANKS = 32
SHARED_BANK_BYTES = 4

#: Bytes one coalesced warp transaction covers (four 32-byte sectors).
TRANSACTION_BYTES = 128


# ----------------------------------------------------------------------
# Divergence taint
# ----------------------------------------------------------------------
def _reads_thread_index(instruction: Instruction) -> bool:
    return any(
        isinstance(source, SpecialRegister)
        and source.name.startswith(THREAD_VARYING_PREFIXES)
        for source in instruction.sources
    )


def _taint_step(instruction: Instruction, tainted: Set[object]) -> None:
    """Advance the taint set across one instruction, in place."""
    source_tainted = _reads_thread_index(instruction) or any(
        index in tainted for index in used_register_indices(instruction)
    )
    if not source_tainted:
        source_tainted = any(
            ("p", predicate.index) in tainted
            for predicate in instruction.used_predicates
            if not predicate.is_true_predicate
        )
    guard = instruction.predicate
    guard_tainted = (
        instruction.is_predicated and guard is not None and ("p", guard.index) in tainted
    )
    defs: List[object] = list(defined_register_indices(instruction))
    defs.extend(("p", predicate.index) for predicate in instruction.defined_predicates)
    if source_tainted or guard_tainted:
        tainted.update(defs)
    elif not may_write_only(instruction):
        # An unconditional write of a uniform value launders the register.
        # May-writes (predicated or unknown-opcode instructions) cannot
        # launder: the old, possibly tainted value may survive.
        tainted.difference_update(defs)


class TaintProblem(DataflowProblem):
    """Forward may-analysis of thread-varying registers and predicates."""

    direction = FORWARD

    def transfer(self, block: BasicBlock, tainted: FrozenSet[object]) -> FrozenSet[object]:
        current = set(tainted)
        for instruction in block.instructions:
            _taint_step(instruction, current)
        return frozenset(current)


@dataclass(frozen=True)
class DivergentBranch:
    """One branch whose direction may differ between threads of a warp."""

    block_index: int
    offset: int
    line: Optional[int]
    #: ``"predicate"`` (a guarded BRA) or ``"indirect"`` (a BRX through a
    #: thread-varying register).
    kind: str


def find_divergent_branches(cfg: ControlFlowGraph) -> List[DivergentBranch]:
    """Branches whose guard or target is thread-varying, via the taint."""
    solution = solve_dataflow(cfg, TaintProblem())
    found: List[DivergentBranch] = []
    for block in cfg.blocks:
        tainted = set(solution.value_in(block.index))
        for instruction in block.instructions:
            if instruction.is_branch:
                guard = instruction.predicate
                if (
                    instruction.is_predicated
                    and guard is not None
                    and ("p", guard.index) in tainted
                ):
                    found.append(
                        DivergentBranch(
                            block_index=block.index,
                            offset=instruction.offset,
                            line=instruction.line,
                            kind="predicate",
                        )
                    )
                elif instruction.opcode == "BRX" and any(
                    index in tainted for index in used_register_indices(instruction)
                ):
                    found.append(
                        DivergentBranch(
                            block_index=block.index,
                            offset=instruction.offset,
                            line=instruction.line,
                            kind="indirect",
                        )
                    )
            _taint_step(instruction, tainted)
    found.sort(key=lambda branch: branch.offset)
    return found


# ----------------------------------------------------------------------
# The rule context
# ----------------------------------------------------------------------
@dataclass
class LintContext:
    """Everything one function's rules may consult (read-only by contract)."""

    structure: FunctionStructure
    architecture: GpuArchitecture
    liveness: LivenessAnalysis
    divergent_branches: List[DivergentBranch]
    post_dominators: Dict[int, FrozenSet[int]]
    reachable: FrozenSet[int]
    workload: Optional[WorkloadSpec] = None

    @property
    def function_name(self) -> str:
        return self.structure.name

    @property
    def cfg(self) -> ControlFlowGraph:
        return self.structure.cfg


class LintRule:
    """One typed rule: a stable name, a severity, and a ``run`` hook."""

    name: str = ""
    severity: str = "warning"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        raise NotImplementedError

    def diagnostic(
        self,
        context: LintContext,
        offset: int,
        message: str,
        line: Optional[int] = None,
        details: Optional[dict] = None,
    ) -> StaticDiagnostic:
        return StaticDiagnostic(
            rule=self.name,
            severity=self.severity,
            function=context.function_name,
            offset=offset,
            line=line,
            message=message,
            details=details or {},
        )


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class UnreachableBlockRule(LintRule):
    """Blocks no path from the entry reaches (dead code or a CFG defect)."""

    name = "unreachable-block"
    severity = "warning"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        findings = []
        for block in context.cfg.blocks:
            if block.index in context.reachable or not block.instructions:
                continue
            first = block.instructions[0]
            findings.append(
                self.diagnostic(
                    context,
                    offset=block.start_offset,
                    line=first.line,
                    message=(
                        f"block {block.index} ({block.size} instructions) is "
                        "unreachable from the function entry"
                    ),
                    details={"block": block.index, "instructions": block.size},
                )
            )
        return findings


class DeadRegisterWriteRule(LintRule):
    """Unconditional register writes whose value is never read."""

    name = "dead-register-write"
    severity = "info"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        findings = []
        for write in context.liveness.dead_writes:
            findings.append(
                self.diagnostic(
                    context,
                    offset=write.offset,
                    line=write.line,
                    message=f"R{write.register} is written but never read afterwards",
                    details={"register": write.register},
                )
            )
        return findings


class DivergentBranchRule(LintRule):
    """Branches steered by thread-varying data (taint from ``SR_TID``)."""

    name = "divergent-branch"
    severity = "info"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        findings = []
        for branch in context.divergent_branches:
            what = (
                "indirect branch target is thread-varying"
                if branch.kind == "indirect"
                else "branch predicate is thread-varying"
            )
            findings.append(
                self.diagnostic(
                    context,
                    offset=branch.offset,
                    line=branch.line,
                    message=f"{what}; threads of a warp may diverge here",
                    details={"block": branch.block_index, "kind": branch.kind},
                )
            )
        return findings


class BarrierDivergenceRule(LintRule):
    """``BAR.SYNC`` under divergent control flow — a hang hazard.

    A barrier is hazardous when it is control-dependent on a divergent
    branch: some thread of a block can take a path that skips the barrier
    while its siblings wait forever.  The check is the classic structural
    one: a divergent branch block ``D`` dominating the barrier block ``B``
    which ``B`` does not post-dominate means ``B`` sits on only *some* of
    the paths out of ``D``.
    """

    name = "barrier-divergence"
    severity = "error"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        findings = []
        if not context.divergent_branches:
            return findings
        dominators = context.structure.dominator_tree
        for block in context.cfg.blocks:
            for instruction in block.instructions:
                if not instruction.is_synchronization or instruction.opcode != "BAR":
                    continue
                for branch in context.divergent_branches:
                    if branch.block_index == block.index:
                        continue
                    if not dominators.dominates(branch.block_index, block.index):
                        continue
                    if block.index in context.post_dominators[branch.block_index]:
                        continue
                    findings.append(
                        self.diagnostic(
                            context,
                            offset=instruction.offset,
                            line=instruction.line,
                            message=(
                                "barrier under divergent control flow: the "
                                f"divergent branch at +{branch.offset:#x} can "
                                "steer threads of one block around this BAR"
                            ),
                            details={
                                "barrier_block": block.index,
                                "branch_block": branch.block_index,
                                "branch_offset": branch.offset,
                            },
                        )
                    )
                    break  # one finding per barrier is enough
        return findings


class UncoalescedStrideRule(LintRule):
    """Global accesses whose per-thread stride fans one warp access out."""

    name = "uncoalesced-stride"
    severity = "warning"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        findings = []
        workload = context.workload
        if workload is None:
            return findings
        warp_size = context.architecture.warp_size
        for block in context.cfg.blocks:
            for instruction in block.instructions:
                if not (instruction.is_load or instruction.is_store):
                    continue
                if instruction.memory_space not in (MemorySpace.GLOBAL, MemorySpace.GENERIC):
                    continue
                stride = workload.access_stride(instruction.line, warp_size=warp_size)
                transactions = -(-stride * warp_size // TRANSACTION_BYTES)
                transactions = max(1, min(warp_size, transactions))
                if transactions <= 1:
                    continue
                findings.append(
                    self.diagnostic(
                        context,
                        offset=instruction.offset,
                        line=instruction.line,
                        message=(
                            f"{instruction.opcode} with a {stride}-byte per-thread "
                            f"stride costs ~{transactions} transactions per warp "
                            "access (1 when coalesced)"
                        ),
                        details={
                            "stride_bytes": stride,
                            "transactions_per_access": transactions,
                        },
                    )
                )
        return findings


class BankConflictRule(LintRule):
    """Shared-memory accesses whose stride serializes over the banks."""

    name = "bank-conflict"
    severity = "warning"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        findings = []
        workload = context.workload
        if workload is None:
            return findings
        warp_size = context.architecture.warp_size
        scale = workload.shared_latency_scale
        for block in context.cfg.blocks:
            for instruction in block.instructions:
                if not (instruction.is_load or instruction.is_store):
                    continue
                if instruction.memory_space is not MemorySpace.SHARED:
                    continue
                stride = workload.access_stride(instruction.line, warp_size=warp_size)
                banks_hit = {
                    (thread * stride // SHARED_BANK_BYTES) % SHARED_BANKS
                    for thread in range(warp_size)
                }
                ways = -(-warp_size // len(banks_hit))
                if ways <= 1 and scale <= 1.0:
                    continue
                evidence: dict = {"stride_bytes": stride, "conflict_ways": ways}
                if scale > 1.0:
                    evidence["shared_latency_scale"] = scale
                if ways > 1:
                    message = (
                        f"{instruction.opcode} with a {stride}-byte per-thread "
                        f"stride maps {ways} threads onto each shared-memory bank"
                    )
                else:
                    message = (
                        f"{instruction.opcode} runs under a shared-memory latency "
                        f"scale of {scale}, consistent with bank conflicts"
                    )
                findings.append(
                    self.diagnostic(
                        context,
                        offset=instruction.offset,
                        line=instruction.line,
                        message=message,
                        details=evidence,
                    )
                )
        return findings


class UnknownOpcodeRule(LintRule):
    """Instructions whose opcode is absent from the catalog.

    These appear when a binary was ingested from a real disassembly
    listing (``repro.sass``): the instruction is analyzed with
    conservative unknown-op semantics (declared registers extracted,
    writes treated as may-writes, pessimistic latency), which keeps the
    other analyses sound but weakens their findings around it — so the
    weak spot is surfaced rather than silently tolerated.
    """

    name = "unknown-opcode"
    severity = "warning"

    def run(self, context: LintContext) -> List[StaticDiagnostic]:
        findings = []
        for block in context.cfg.blocks:
            for instruction in block.instructions:
                if not instruction.is_unknown_op:
                    continue
                findings.append(
                    self.diagnostic(
                        context,
                        offset=instruction.offset,
                        line=instruction.line,
                        message=(
                            f"opcode {instruction.opcode} is not in the catalog; "
                            "analyzed with conservative unknown-op semantics"
                        ),
                        details={"opcode": instruction.full_opcode},
                    )
                )
        return findings


#: The rule set the engine runs, in a stable order.
DEFAULT_RULES: Tuple[LintRule, ...] = (
    UnreachableBlockRule(),
    DeadRegisterWriteRule(),
    DivergentBranchRule(),
    BarrierDivergenceRule(),
    UncoalescedStrideRule(),
    BankConflictRule(),
    UnknownOpcodeRule(),
)


def run_rules(
    context: LintContext, rules: Tuple[LintRule, ...] = DEFAULT_RULES
) -> List[StaticDiagnostic]:
    """Run every rule over ``context`` and return the sorted findings."""
    findings: List[StaticDiagnostic] = []
    for rule in rules:
        findings.extend(rule.run(context))
    findings.sort(key=lambda diagnostic: diagnostic.sort_key)
    return findings
