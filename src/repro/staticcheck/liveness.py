"""Register liveness, reaching definitions and live-range pressure.

These are the classic bit-vector analyses, instantiated over the operand
model of :mod:`repro.isa.registers`:

* **Liveness** (backward): which general registers may still be read after a
  program point.  Feeds dead-write detection and the live-range register
  pressure the occupancy cross-check uses.
* **Reaching definitions** (forward): which ``(offset, register)`` write
  sites may produce the value a point observes.  Feeds the divergence taint
  propagation in :mod:`repro.staticcheck.rules`.

Predicated instructions need care in both: ``@P0 MOV R1, ...`` only *may*
write ``R1``, so a predicated definition neither kills earlier definitions
nor makes an earlier write dead.  ``RZ`` (the hardwired zero register) is
excluded everywhere — writes to it are architectural discards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.isa.instruction import Instruction
from repro.staticcheck.dataflow import BACKWARD, FORWARD, DataflowProblem, solve_dataflow


def used_register_indices(instruction: Instruction) -> FrozenSet[int]:
    """Indices of the general registers ``instruction`` reads (``RZ`` excluded)."""
    return frozenset(
        register.index for register in instruction.used_registers if not register.is_zero
    )


def defined_register_indices(instruction: Instruction) -> FrozenSet[int]:
    """Indices of the general registers ``instruction`` writes (``RZ`` excluded)."""
    return frozenset(
        register.index for register in instruction.defined_registers if not register.is_zero
    )


def may_write_only(instruction: Instruction) -> bool:
    """Whether the instruction's register writes are *may*-writes.

    Two cases: a predicated write only happens for threads whose guard
    holds, and an instruction whose opcode is absent from the catalog
    (real-disassembly ingestion) has unknown semantics — we know which
    registers it *declares* but not whether it always writes them.  Both
    must neither kill earlier definitions nor count as dead writes, or the
    analyses would claim more than they know.
    """
    return instruction.is_predicated or instruction.is_unknown_op


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
class LivenessProblem(DataflowProblem):
    """Backward may-analysis: ``in = use ∪ (out − def)`` per block."""

    direction = BACKWARD

    def __init__(self) -> None:
        self._summaries: Dict[int, Tuple[FrozenSet[int], FrozenSet[int]]] = {}

    def _summary(self, block: BasicBlock) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """(upward-exposed uses, unconditional defs) of ``block``."""
        cached = self._summaries.get(block.index)
        if cached is not None:
            return cached
        uses: set = set()
        defs: set = set()
        for instruction in block.instructions:
            uses.update(used_register_indices(instruction) - defs)
            if not may_write_only(instruction):
                defs.update(defined_register_indices(instruction))
        summary = (frozenset(uses), frozenset(defs))
        self._summaries[block.index] = summary
        return summary

    def transfer(self, block: BasicBlock, live_out: FrozenSet[int]) -> FrozenSet[int]:
        uses, defs = self._summary(block)
        return uses | (live_out - defs)


@dataclass(frozen=True)
class DeadWrite:
    """A register write whose value no later instruction can read."""

    offset: int
    register: int
    line: Optional[int] = None
    function: Optional[str] = None


@dataclass
class LivenessAnalysis:
    """Liveness fixed point plus the per-point summaries derived from it."""

    #: Registers live at each block's entry / exit.
    live_in: Dict[int, FrozenSet[int]]
    live_out: Dict[int, FrozenSet[int]]
    #: Maximum simultaneously-live register count within each block.
    block_pressure: Dict[int, int]
    #: The live-range register pressure of the whole function.
    max_pressure: int
    #: Offset of the program point where the maximum is reached (the
    #: earliest such point, for determinism).
    max_pressure_offset: Optional[int]
    #: Unconditional register writes that are dead at their program point.
    dead_writes: List[DeadWrite] = field(default_factory=list)

    def pressure_in(self, block_index: int) -> int:
        return self.block_pressure.get(block_index, 0)


def analyze_liveness(cfg: ControlFlowGraph) -> LivenessAnalysis:
    """Solve liveness over ``cfg`` and derive pressure and dead writes."""
    solution = solve_dataflow(cfg, LivenessProblem())

    block_pressure: Dict[int, int] = {}
    max_pressure = 0
    max_pressure_offset: Optional[int] = None
    dead_writes: List[DeadWrite] = []

    for block in cfg.blocks:
        live = set(solution.value_out(block.index))
        best = len(live)
        best_offset = block.instructions[-1].offset if block.instructions else None
        # Walk the block backwards, maintaining the live set per point.
        for instruction in reversed(block.instructions):
            defs = defined_register_indices(instruction)
            if defs and not may_write_only(instruction):
                dead = defs - live
                for register in sorted(dead):
                    dead_writes.append(
                        DeadWrite(
                            offset=instruction.offset,
                            register=register,
                            line=instruction.line,
                        )
                    )
                live -= defs
            live |= used_register_indices(instruction)
            if len(live) >= best:
                best = len(live)
                best_offset = instruction.offset
        block_pressure[block.index] = best
        if best > max_pressure or (
            best == max_pressure
            and best_offset is not None
            and (max_pressure_offset is None or best_offset < max_pressure_offset)
        ):
            max_pressure = best
            max_pressure_offset = best_offset

    dead_writes.sort(key=lambda write: (write.offset, write.register))
    return LivenessAnalysis(
        live_in=dict(solution.in_values),
        live_out=dict(solution.out_values),
        block_pressure=block_pressure,
        max_pressure=max_pressure,
        max_pressure_offset=max_pressure_offset,
        dead_writes=dead_writes,
    )


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Definition:
    """One write site: the instruction offset and the register it writes."""

    offset: int
    register: int


class ReachingDefinitionsProblem(DataflowProblem):
    """Forward may-analysis: ``out = gen ∪ (in − kill)`` per block."""

    direction = FORWARD

    def transfer(self, block: BasicBlock, reaching: FrozenSet[Definition]) -> FrozenSet[Definition]:
        current = set(reaching)
        for instruction in block.instructions:
            defs = defined_register_indices(instruction)
            if not defs:
                continue
            if not may_write_only(instruction):
                current = {
                    definition for definition in current if definition.register not in defs
                }
            for register in defs:
                current.add(Definition(offset=instruction.offset, register=register))
        return frozenset(current)


@dataclass
class ReachingDefinitions:
    """Reaching-definition sets at every block boundary."""

    reach_in: Dict[int, FrozenSet[Definition]]
    reach_out: Dict[int, FrozenSet[Definition]]

    def definitions_of(self, block_index: int, register: int) -> List[Definition]:
        """Definitions of ``register`` reaching the entry of ``block_index``."""
        return sorted(
            definition
            for definition in self.reach_in[block_index]
            if definition.register == register
        )


def analyze_reaching_definitions(cfg: ControlFlowGraph) -> ReachingDefinitions:
    """Solve reaching definitions over ``cfg``."""
    solution = solve_dataflow(cfg, ReachingDefinitionsProblem())
    return ReachingDefinitions(
        reach_in=dict(solution.in_values), reach_out=dict(solution.out_values)
    )
