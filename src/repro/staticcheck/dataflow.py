"""Generic worklist dataflow over basic-block CFGs.

The solver is the foundation of every analysis in :mod:`repro.staticcheck`:
an analysis describes itself as a :class:`DataflowProblem` (a direction, a
meet operator and a per-block transfer function) and :func:`solve_dataflow`
iterates it to a fixed point over the blocks of one
:class:`~repro.cfg.graph.ControlFlowGraph`.

Determinism matters here — lint reports are pinned byte-for-byte by golden
files — so the worklist is seeded and drained in reverse postorder (forward
problems) or its reverse (backward problems), and re-queued neighbours keep
that order.  Unreachable blocks participate too (``reverse_post_order``
appends them after the reachable blocks), so analyses never ``KeyError`` on
a malformed CFG; they simply keep their initial value.

:func:`compute_post_dominators` is the one special-cased analysis kept here:
the barrier-divergence rule needs post-dominance, and the CFGs we lint may
have several exit blocks (every ``EXIT``/``RET`` terminates a block with no
successors), so the sets are computed against a virtual exit joining them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List

from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph

#: Direction markers for :class:`DataflowProblem`.
FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """One dataflow analysis: direction, lattice values, transfer, meet.

    Values default to frozensets with union as the meet (the may-analysis
    shape liveness and reaching definitions share); a problem with a
    different lattice overrides :meth:`meet` and the two initial-value hooks.
    """

    #: :data:`FORWARD` (values flow entry -> exits along successor edges) or
    #: :data:`BACKWARD` (values flow exits -> entry along predecessor edges).
    direction: str = FORWARD

    def boundary_value(self) -> FrozenSet:
        """Value at the boundary: the entry's IN (forward) / an exit's OUT."""
        return frozenset()

    def initial_value(self) -> FrozenSet:
        """Optimistic initial value of every interior block."""
        return frozenset()

    def meet(self, values: Iterable[FrozenSet]) -> FrozenSet:
        """Combine the values flowing in over several edges (default: union)."""
        result: FrozenSet = frozenset()
        for value in values:
            result = result | value
        return result

    def transfer(self, block: BasicBlock, value: FrozenSet) -> FrozenSet:
        """Push ``value`` through ``block`` (IN -> OUT forward, OUT -> IN backward)."""
        raise NotImplementedError


@dataclass
class DataflowSolution:
    """Fixed point of one :class:`DataflowProblem` over one CFG.

    ``in_values[i]`` is the value at the *entry* of block ``i`` and
    ``out_values[i]`` the value at its *exit*, for either direction.
    """

    in_values: Dict[int, FrozenSet]
    out_values: Dict[int, FrozenSet]
    #: Blocks popped off the worklist until the fixed point (a determinism
    #: and termination canary for tests).
    iterations: int = 0

    def value_in(self, block_index: int) -> FrozenSet:
        return self.in_values[block_index]

    def value_out(self, block_index: int) -> FrozenSet:
        return self.out_values[block_index]


def solve_dataflow(cfg: ControlFlowGraph, problem: DataflowProblem) -> DataflowSolution:
    """Iterate ``problem`` over ``cfg`` to its fixed point."""
    if problem.direction not in (FORWARD, BACKWARD):
        raise ValueError(f"unknown dataflow direction {problem.direction!r}")
    forward = problem.direction == FORWARD
    order = cfg.reverse_post_order()
    if not forward:
        order = list(reversed(order))
    position = {block_index: rank for rank, block_index in enumerate(order)}
    blocks = {block.index: block for block in cfg.blocks}

    if forward:
        inputs_of = cfg.predecessors
        outputs_of = cfg.successors
    else:
        inputs_of = cfg.successors
        outputs_of = cfg.predecessors

    in_values: Dict[int, FrozenSet] = {}
    out_values: Dict[int, FrozenSet] = {}
    for block_index in order:
        in_values[block_index] = problem.initial_value()
        out_values[block_index] = problem.transfer(blocks[block_index], in_values[block_index])

    worklist = deque(order)
    queued = set(order)
    iterations = 0
    while worklist:
        block_index = worklist.popleft()
        queued.discard(block_index)
        iterations += 1

        incoming = [out_values[edge] for edge in inputs_of.get(block_index, [])]
        is_boundary = (
            block_index == cfg.entry_index if forward else not cfg.successors.get(block_index)
        )
        if is_boundary:
            incoming = [problem.boundary_value(), *incoming]
        new_in = problem.meet(incoming) if incoming else problem.initial_value()
        new_out = problem.transfer(blocks[block_index], new_in)
        if new_in == in_values[block_index] and new_out == out_values[block_index]:
            continue
        in_values[block_index] = new_in
        out_values[block_index] = new_out
        for affected in sorted(outputs_of.get(block_index, []), key=lambda b: position[b]):
            if affected not in queued:
                worklist.append(affected)
                queued.add(affected)

    # Present both views with "in = block entry" regardless of direction.
    if forward:
        return DataflowSolution(in_values=in_values, out_values=out_values, iterations=iterations)
    return DataflowSolution(in_values=out_values, out_values=in_values, iterations=iterations)


def reachable_blocks(cfg: ControlFlowGraph) -> FrozenSet[int]:
    """Block indices reachable from the entry along successor edges."""
    seen = {cfg.entry_index}
    frontier = [cfg.entry_index]
    while frontier:
        block_index = frontier.pop()
        for successor in cfg.successors.get(block_index, []):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def compute_post_dominators(cfg: ControlFlowGraph) -> Dict[int, FrozenSet[int]]:
    """Post-dominator *sets* of every block, against a virtual common exit.

    Block ``b`` post-dominates block ``a`` when ``b in result[a]`` — every
    path from ``a`` to any exit block passes through ``b``.  The relation is
    reflexive.  Blocks that cannot reach an exit at all (an infinite loop)
    conservatively keep the full block set, which reads as "everything
    post-dominates them": rules built on this must treat such blocks as
    hazard-free rather than invent paths that do not exist.
    """
    all_blocks = frozenset(block.index for block in cfg.blocks)
    exits: List[int] = [
        block.index for block in cfg.blocks if not cfg.successors.get(block.index)
    ]
    postdom: Dict[int, FrozenSet[int]] = {}
    for block in cfg.blocks:
        if block.index in exits:
            postdom[block.index] = frozenset({block.index})
        else:
            postdom[block.index] = all_blocks

    order = list(reversed(cfg.reverse_post_order()))
    changed = True
    while changed:
        changed = False
        for block_index in order:
            if block_index in exits:
                continue
            successors = cfg.successors.get(block_index, [])
            meet = all_blocks
            for successor in successors:
                meet = meet & postdom[successor]
            new_value = meet | {block_index}
            if new_value != postdom[block_index]:
                postdom[block_index] = new_value
                changed = True
    return postdom
