"""Cross-checking dynamic advisories against the static lint.

The advising pipeline and the static checker look at the same binary from
two sides — simulated samples versus dataflow over the CFG — so when both
flag the same source line, the advisory gets independent, simulation-free
corroboration.  :func:`cross_check` produces those annotations as plain
strings; it never mutates either report, so dynamic advising results stay
bit-identical whether or not a static report was ever computed.
"""

from __future__ import annotations

from typing import List

from repro.advisor.report import AdviceReport
from repro.staticcheck.report import StaticReport

#: How many hotspots per advice item are matched against diagnostics.
_HOTSPOTS_CHECKED = 5


def cross_check(report: AdviceReport, static_report: StaticReport) -> List[str]:
    """Annotations where the static lint corroborates (or contradicts) ``report``."""
    notes: List[str] = []

    stats = report.profile.statistics
    try:
        kernel_lint = static_report.function_lint(report.kernel)
    except KeyError:
        kernel_lint = None
    if kernel_lint is not None and kernel_lint.occupancy:
        declared = kernel_lint.occupancy["declared"]
        if (
            declared["occupancy"] == stats.occupancy
            and declared["limiter"] == stats.occupancy_limiter
        ):
            notes.append(
                f"occupancy cross-check: static and profiled figures agree "
                f"({stats.occupancy:.4f}, limited by {stats.occupancy_limiter})"
            )
        else:
            notes.append(
                f"occupancy cross-check: MISMATCH — static "
                f"{declared['occupancy']:.4f}/{declared['limiter']} vs profiled "
                f"{stats.occupancy:.4f}/{stats.occupancy_limiter}"
            )
        registers = kernel_lint.registers
        if registers:
            notes.append(
                f"register pressure: {registers['declared']} declared, "
                f"{registers['static_max_live']} live-range maximum"
            )

    seen = set()
    for item in report.advice:
        if not item.applicable:
            continue
        for hotspot in item.hotspots[:_HOTSPOTS_CHECKED]:
            for location in (hotspot.source, hotspot.dest):
                if location.line is None:
                    continue
                for diagnostic in static_report.diagnostics_at_line(location.line):
                    key = (item.optimizer, diagnostic.rule, diagnostic.offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    notes.append(
                        f"{item.optimizer} hotspot at line {location.line} also "
                        f"flagged statically: {diagnostic.rule} — {diagnostic.message}"
                    )
    return notes
