"""Static analysis over kernel CFGs — lint without simulation.

This package is the static half the paper's advisor implies but the
simulation pipeline never needed: dataflow analyses over the recovered
control-flow graphs, plus a typed lint rule set, surfaced as deterministic
:class:`~repro.staticcheck.report.StaticReport` wire forms.

Layers, bottom up:

* :mod:`repro.staticcheck.dataflow` — the generic worklist solver
  (forward/backward) every analysis instantiates, plus post-dominators;
* :mod:`repro.staticcheck.liveness` — register liveness, reaching
  definitions, live-range pressure, dead writes;
* :mod:`repro.staticcheck.depth` — static dependency-depth / ILP estimates;
* :mod:`repro.staticcheck.rules` — the diagnostics (divergence taint,
  barrier hazards, access-pattern rules, unreachable code);
* :mod:`repro.staticcheck.engine` — :class:`StaticChecker`, which runs it
  all over a CUBIN;
* :mod:`repro.staticcheck.report` — ``StaticDiagnostic``/``StaticReport``
  wire forms (versioned envelopes, byte-stable JSON);
* :mod:`repro.staticcheck.crosscheck` — annotating dynamic advisories with
  static corroboration.

Entry points: ``StaticChecker().check(cubin, ...)``,
:meth:`repro.api.session.AdvisingSession.lint`, or ``gpa-advise lint`` on
the command line.
"""

from repro.staticcheck.crosscheck import cross_check
from repro.staticcheck.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    DataflowSolution,
    compute_post_dominators,
    reachable_blocks,
    solve_dataflow,
)
from repro.staticcheck.depth import DepthAnalysis, estimate_depths
from repro.staticcheck.engine import StaticChecker, lint_case
from repro.staticcheck.liveness import (
    LivenessAnalysis,
    analyze_liveness,
    analyze_reaching_definitions,
)
from repro.staticcheck.report import (
    FunctionLint,
    StaticDiagnostic,
    StaticReport,
    render_static_report,
)
from repro.staticcheck.rules import (
    DEFAULT_RULES,
    LintContext,
    LintRule,
    find_divergent_branches,
    run_rules,
)

__all__ = [
    "BACKWARD",
    "DEFAULT_RULES",
    "FORWARD",
    "DataflowProblem",
    "DataflowSolution",
    "DepthAnalysis",
    "FunctionLint",
    "LintContext",
    "LintRule",
    "LivenessAnalysis",
    "StaticChecker",
    "StaticDiagnostic",
    "StaticReport",
    "analyze_liveness",
    "analyze_reaching_definitions",
    "compute_post_dominators",
    "cross_check",
    "estimate_depths",
    "find_divergent_branches",
    "lint_case",
    "reachable_blocks",
    "render_static_report",
    "run_rules",
    "solve_dataflow",
]
