"""Static dependency-depth and ILP estimates.

The dynamic blame pass (:mod:`repro.blame.graph`) measures dependency chains
from executed samples; this is its static sibling: from the instruction
stream alone, estimate how deep the def-use chains of each basic block run
and how much instruction-level parallelism a scheduler could extract.

Within one block the estimate is exact for the model: instructions are
walked in order, each one starts when its used registers/predicates are
ready and finishes ``latency`` cycles later (latencies come from the target
:class:`~repro.arch.machine.GpuArchitecture`, so the figures are per-arch).
The block's *critical path* is the latest finish time; its *ILP* is total
issued latency over that path — 1.0 means a fully serial chain.

Across blocks no branch probabilities exist statically, so loop and function
aggregates chain their blocks serially: they are upper bounds on depth and
the corresponding lower bounds on ILP, which is the conservative direction
for "this loop is latency-bound" diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.machine import GpuArchitecture
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import LoopNestTree


def _round_ilp(total: int, depth: int) -> float:
    """Deterministic 4-decimal ILP figure (0.0 for an empty region)."""
    if depth <= 0:
        return 0.0
    return round(total / depth, 4)


@dataclass(frozen=True)
class BlockDepth:
    """Depth/ILP estimate of one basic block."""

    block_index: int
    instructions: int
    #: Sum of instruction latencies (the serial-execution cost).
    total_latency: int
    #: Length in cycles of the longest def-use chain through the block.
    critical_path: int
    #: ``total_latency / critical_path`` — available parallelism.
    ilp: float


@dataclass(frozen=True)
class LoopDepth:
    """Depth/ILP estimate of one natural loop body (blocks chained serially)."""

    loop_index: int
    header_offset: Optional[int]
    header_line: Optional[int]
    blocks: int
    instructions: int
    total_latency: int
    critical_path: int
    ilp: float


@dataclass
class DepthAnalysis:
    """Depth/ILP estimates for every block and loop of one function."""

    blocks: List[BlockDepth] = field(default_factory=list)
    loops: List[LoopDepth] = field(default_factory=list)
    #: Whole-function aggregate (all blocks chained serially).
    total_latency: int = 0
    critical_path: int = 0
    ilp: float = 0.0

    def block_depth(self, block_index: int) -> BlockDepth:
        for entry in self.blocks:
            if entry.block_index == block_index:
                return entry
        raise KeyError(f"no depth estimate for block {block_index}")


def estimate_depths(
    cfg: ControlFlowGraph,
    loop_nest: LoopNestTree,
    architecture: GpuArchitecture,
) -> DepthAnalysis:
    """Estimate dependency depth and ILP for ``cfg`` on ``architecture``."""
    analysis = DepthAnalysis()
    by_block: Dict[int, BlockDepth] = {}

    for block in cfg.blocks:
        finish: Dict[object, int] = {}
        critical = 0
        total = 0
        for instruction in block.instructions:
            latency = architecture.latency(instruction.full_opcode)
            start = 0
            for register in instruction.used_registers:
                if register.is_zero:
                    continue
                start = max(start, finish.get(register.index, 0))
            for predicate in instruction.used_predicates:
                start = max(start, finish.get(("p", predicate.index), 0))
            done = start + latency
            total += latency
            critical = max(critical, done)
            for register in instruction.defined_registers:
                if register.is_zero:
                    continue
                finish[register.index] = done
            for predicate in instruction.defined_predicates:
                finish[("p", predicate.index)] = done
        entry = BlockDepth(
            block_index=block.index,
            instructions=len(block.instructions),
            total_latency=total,
            critical_path=critical,
            ilp=_round_ilp(total, critical),
        )
        by_block[block.index] = entry
        analysis.blocks.append(entry)
        analysis.total_latency += total
        analysis.critical_path += critical

    analysis.ilp = _round_ilp(analysis.total_latency, analysis.critical_path)

    for loop in loop_nest.loops:
        block_entries = [by_block[index] for index in sorted(loop.blocks) if index in by_block]
        total = sum(entry.total_latency for entry in block_entries)
        depth = sum(entry.critical_path for entry in block_entries)
        analysis.loops.append(
            LoopDepth(
                loop_index=loop.index,
                header_offset=loop.header_offset,
                header_line=loop.header_line,
                blocks=len(block_entries),
                instructions=sum(entry.instructions for entry in block_entries),
                total_latency=total,
                critical_path=depth,
                ilp=_round_ilp(total, depth),
            )
        )
    analysis.loops.sort(key=lambda entry: entry.loop_index)
    return analysis
