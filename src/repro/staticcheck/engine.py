"""The static checker: runs every analysis and rule over one binary.

:class:`StaticChecker` is the lint counterpart of the advising pipeline —
it consumes the same inputs a profiling run would (a CUBIN, optionally a
launch config and a workload access spec) but never simulates anything:
structure recovery via :class:`~repro.advisor.static_analyzer.StaticAnalyzer`,
then per function the dataflow analyses (liveness/pressure, divergence
taint, post-dominators), the depth/ILP estimates, and the rule set of
:mod:`repro.staticcheck.rules`.  The result is a deterministic
:class:`~repro.staticcheck.report.StaticReport`.

The occupancy block of the launched kernel is computed with the *same*
:class:`~repro.arch.occupancy.OccupancyCalculator` call the profiler makes
(`registers_per_thread` from the CUBIN, shared memory as the max of the
launch's dynamic and the kernel's static allocation), so static and dynamic
occupancy figures agree by construction; next to it the report carries the
what-if occupancy at the statically-estimated live-range pressure.
"""

from __future__ import annotations

from typing import Optional

from repro.advisor.static_analyzer import StaticAnalyzer
from repro.arch.machine import GpuArchitecture
from repro.arch.occupancy import OccupancyCalculator, OccupancyResult
from repro.cubin.binary import Cubin
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.staticcheck.dataflow import compute_post_dominators, reachable_blocks
from repro.staticcheck.depth import DepthAnalysis, estimate_depths
from repro.staticcheck.liveness import analyze_liveness
from repro.staticcheck.report import FunctionLint, StaticReport
from repro.staticcheck.rules import (
    DEFAULT_RULES,
    LintContext,
    find_divergent_branches,
    run_rules,
)


def _occupancy_dict(result: OccupancyResult) -> dict:
    return {
        "blocks_per_sm": result.blocks_per_sm,
        "warps_per_sm": result.warps_per_sm,
        "warps_per_scheduler": result.warps_per_scheduler,
        "occupancy": result.occupancy,
        "limiter": result.limiter,
        "waves": result.waves,
        "blocks_per_sm_limit": result.blocks_per_sm_limit,
    }


def _depth_dicts(depths: DepthAnalysis) -> tuple:
    block_depths = [
        {
            "block": entry.block_index,
            "instructions": entry.instructions,
            "total_latency": entry.total_latency,
            "critical_path": entry.critical_path,
            "ilp": entry.ilp,
        }
        for entry in depths.blocks
    ]
    loop_depths = [
        {
            "loop": entry.loop_index,
            "header_offset": entry.header_offset,
            "header_line": entry.header_line,
            "blocks": entry.blocks,
            "instructions": entry.instructions,
            "total_latency": entry.total_latency,
            "critical_path": entry.critical_path,
            "ilp": entry.ilp,
        }
        for entry in depths.loops
    ]
    summary = {
        "total_latency": depths.total_latency,
        "critical_path": depths.critical_path,
        "ilp": depths.ilp,
    }
    return summary, block_depths, loop_depths


class StaticChecker:
    """Runs the full static lint over CUBINs."""

    def __init__(
        self,
        architecture: Optional[GpuArchitecture] = None,
        strict_architecture: bool = False,
        rules=DEFAULT_RULES,
    ):
        self.analyzer = StaticAnalyzer(
            default_architecture=architecture, strict=strict_architecture
        )
        self.rules = rules

    def check_setup(self, setup, case_id: Optional[str] = None) -> StaticReport:
        """Lint one benchmark :class:`~repro.workloads.base.KernelSetup`."""
        return self.check(
            setup.cubin,
            kernel=setup.kernel,
            config=setup.config,
            workload=setup.workload,
            case_id=case_id,
        )

    def check(
        self,
        cubin: Cubin,
        kernel: Optional[str] = None,
        config: Optional[LaunchConfig] = None,
        workload: Optional[WorkloadSpec] = None,
        case_id: Optional[str] = None,
        ingest: Optional[dict] = None,
    ) -> StaticReport:
        """Lint every function of ``cubin``; ``kernel`` names the launched one.

        ``ingest`` is the wire form of a :class:`repro.sass.IngestReport`
        when the binary was lowered from a real disassembly listing; it is
        carried on the report verbatim.
        """
        analysis = self.analyzer.analyze(cubin)
        architecture = analysis.architecture
        kernel_name = kernel or next(iter(cubin.functions))

        report = StaticReport(
            kernel=kernel_name,
            arch_flag=cubin.arch_flag,
            case_id=case_id,
            architecture_fallback=analysis.architecture_fallback,
            ingest=ingest,
        )

        for name in sorted(analysis.structure.functions):
            structure = analysis.structure.functions[name]
            function = structure.function
            cfg = structure.cfg

            liveness = analyze_liveness(cfg)
            depths = estimate_depths(cfg, structure.loop_nest, architecture)
            context = LintContext(
                structure=structure,
                architecture=architecture,
                liveness=liveness,
                divergent_branches=find_divergent_branches(cfg),
                post_dominators=compute_post_dominators(cfg),
                reachable=reachable_blocks(cfg),
                workload=workload if name == kernel_name else None,
            )
            report.diagnostics.extend(run_rules(context, self.rules))

            occupancy = None
            if name == kernel_name and config is not None:
                calculator = OccupancyCalculator(architecture)
                shared_memory = max(config.shared_memory_bytes, function.shared_memory_bytes)
                declared = calculator.calculate(
                    grid_blocks=config.grid_blocks,
                    threads_per_block=config.threads_per_block,
                    registers_per_thread=function.registers_per_thread,
                    shared_memory_per_block=shared_memory,
                )
                static_pressure = calculator.calculate(
                    grid_blocks=config.grid_blocks,
                    threads_per_block=config.threads_per_block,
                    registers_per_thread=max(1, liveness.max_pressure),
                    shared_memory_per_block=shared_memory,
                )
                occupancy = {
                    "declared": _occupancy_dict(declared),
                    "static_pressure": _occupancy_dict(static_pressure),
                }

            depth_summary, block_depths, loop_depths = _depth_dicts(depths)
            report.functions.append(
                FunctionLint(
                    name=name,
                    is_kernel=function.is_kernel,
                    blocks=len(cfg.blocks),
                    instructions=len(function.instructions),
                    loops=len(structure.loop_nest.loops),
                    unreachable_blocks=sorted(
                        block.index
                        for block in cfg.blocks
                        if block.index not in context.reachable
                    ),
                    registers={
                        "declared": function.registers_per_thread,
                        "static_max_live": liveness.max_pressure,
                        "max_live_offset": liveness.max_pressure_offset,
                    },
                    depth=depth_summary,
                    block_depths=block_depths,
                    loop_depths=loop_depths,
                    occupancy=occupancy,
                )
            )

        report.diagnostics.sort(key=lambda diagnostic: diagnostic.sort_key)
        return report


def lint_case(case_or_id, variant: str = "baseline", **checker_kwargs) -> StaticReport:
    """Lint one registry case (accepts a case id or a ``BenchmarkCase``)."""
    from repro.pipeline.batch import resolve_case

    case = resolve_case(case_or_id)
    setup = case.build_optimized() if variant == "optimized" else case.build_baseline()
    checker = StaticChecker(**checker_kwargs)
    return checker.check_setup(setup, case_id=case.case_id)
