"""Wire forms of the static lint layer.

``StaticDiagnostic`` and ``StaticReport`` follow the same envelope contract
as every other API payload (:mod:`repro.api.schema`): an explicit
``schema_version`` and ``kind``, strict loaders, and ``dump -> load -> dump``
as a byte-stable fixed point.  :meth:`StaticReport.to_json` is the canonical
serialization the golden-report tests and CI's ``lint-smoke`` job pin — keys
sorted, two-space indent, trailing newline — so two runs anywhere produce
identical bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.schema import canonical_json, check_envelope, envelope, require_key

#: Severity levels, in ascending order of concern.
SEVERITIES = ("info", "warning", "error")


@dataclass
class StaticDiagnostic:
    """One typed lint finding, anchored to an instruction offset."""

    #: Rule identifier (``uncoalesced-stride``, ``dead-register-write``, ...).
    rule: str
    severity: str
    function: str
    offset: int
    message: str
    line: Optional[int] = None
    #: Rule-specific evidence (strides, register indices, block indices...).
    details: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def sort_key(self) -> tuple:
        return (self.function, self.offset, self.rule, self.message)

    def describe(self) -> str:
        """One-line human form of the finding."""
        where = f"{self.function}+{self.offset:#x}"
        if self.line is not None:
            where += f" (line {self.line})"
        return f"[{self.severity}] {self.rule} at {where}: {self.message}"

    def to_dict(self) -> dict:
        return envelope(
            "static_diagnostic",
            {
                "rule": self.rule,
                "severity": self.severity,
                "function": self.function,
                "offset": self.offset,
                "line": self.line,
                "message": self.message,
                "details": canonical_json(self.details, "diagnostic details"),
            },
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "StaticDiagnostic":
        payload = check_envelope(payload, "static_diagnostic")
        return cls(
            rule=require_key(payload, "rule", "static_diagnostic"),
            severity=require_key(payload, "severity", "static_diagnostic"),
            function=require_key(payload, "function", "static_diagnostic"),
            offset=require_key(payload, "offset", "static_diagnostic"),
            message=require_key(payload, "message", "static_diagnostic"),
            line=payload.get("line"),
            details=dict(payload.get("details") or {}),
        )


@dataclass
class FunctionLint:
    """Per-function static summary carried by a :class:`StaticReport`.

    The nested summaries are kept as plain JSON-shaped dicts (canonicalized
    at construction) so the report round-trips without a second schema:

    * ``registers`` — ``declared`` (the CUBIN's per-thread count),
      ``static_max_live`` (live-range pressure), ``max_live_offset``;
    * ``depth`` — whole-function ``total_latency``/``critical_path``/``ilp``;
    * ``block_depths`` / ``loop_depths`` — the per-region estimates;
    * ``occupancy`` — present for the launched kernel only: the
      ``arch/occupancy`` figures for the declared register count and the
      what-if figures at the static pressure.
    """

    name: str
    is_kernel: bool
    blocks: int
    instructions: int
    loops: int
    unreachable_blocks: List[int] = field(default_factory=list)
    registers: Dict[str, object] = field(default_factory=dict)
    depth: Dict[str, object] = field(default_factory=dict)
    block_depths: List[dict] = field(default_factory=list)
    loop_depths: List[dict] = field(default_factory=list)
    occupancy: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "is_kernel": self.is_kernel,
            "blocks": self.blocks,
            "instructions": self.instructions,
            "loops": self.loops,
            "unreachable_blocks": list(self.unreachable_blocks),
            "registers": canonical_json(self.registers, "register summary"),
            "depth": canonical_json(self.depth, "depth summary"),
            "block_depths": canonical_json(self.block_depths, "block depths"),
            "loop_depths": canonical_json(self.loop_depths, "loop depths"),
            "occupancy": canonical_json(self.occupancy, "occupancy summary"),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionLint":
        return cls(
            name=payload["name"],
            is_kernel=payload["is_kernel"],
            blocks=payload["blocks"],
            instructions=payload["instructions"],
            loops=payload["loops"],
            unreachable_blocks=list(payload.get("unreachable_blocks") or []),
            registers=dict(payload.get("registers") or {}),
            depth=dict(payload.get("depth") or {}),
            block_depths=list(payload.get("block_depths") or []),
            loop_depths=list(payload.get("loop_depths") or []),
            occupancy=payload.get("occupancy"),
        )


@dataclass
class StaticReport:
    """Everything the static checker found in one binary."""

    kernel: str
    arch_flag: str
    functions: List[FunctionLint] = field(default_factory=list)
    diagnostics: List[StaticDiagnostic] = field(default_factory=list)
    #: Registry case the binary came from, when known.
    case_id: Optional[str] = None
    #: The unknown architecture flag the analyzer fell back from, if any.
    architecture_fallback: Optional[str] = None
    #: Ingestion coverage when the binary came from a real disassembly
    #: listing (the wire form of :class:`repro.sass.IngestReport`): decoded
    #: vs. total instructions, unknown opcodes/modifiers, dialect.  ``None``
    #: for binaries built in-repo.  Added in schema version 6.
    ingest: Optional[dict] = None

    def counts_by_severity(self) -> Dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return counts

    def diagnostics_for(self, rule: str) -> List[StaticDiagnostic]:
        return [diagnostic for diagnostic in self.diagnostics if diagnostic.rule == rule]

    def diagnostics_at_line(self, line: int) -> List[StaticDiagnostic]:
        return [diagnostic for diagnostic in self.diagnostics if diagnostic.line == line]

    def function_lint(self, name: str) -> FunctionLint:
        for entry in self.functions:
            if entry.name == name:
                return entry
        raise KeyError(f"no lint summary for function {name!r}")

    def to_dict(self) -> dict:
        return envelope(
            "static_report",
            {
                "kernel": self.kernel,
                "arch_flag": self.arch_flag,
                "case_id": self.case_id,
                "architecture_fallback": self.architecture_fallback,
                "functions": [entry.to_dict() for entry in self.functions],
                "diagnostics": [diagnostic.to_dict() for diagnostic in self.diagnostics],
                "ingest": canonical_json(self.ingest, "ingest coverage"),
            },
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "StaticReport":
        payload = check_envelope(payload, "static_report")
        return cls(
            kernel=require_key(payload, "kernel", "static_report"),
            arch_flag=require_key(payload, "arch_flag", "static_report"),
            case_id=payload.get("case_id"),
            architecture_fallback=payload.get("architecture_fallback"),
            ingest=payload.get("ingest"),
            functions=[
                FunctionLint.from_dict(entry)
                for entry in require_key(payload, "functions", "static_report")
            ],
            diagnostics=[
                StaticDiagnostic.from_dict(entry)
                for entry in require_key(payload, "diagnostics", "static_report")
            ],
        )

    def to_json(self) -> str:
        """The canonical byte-stable serialization (what golden files pin)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "StaticReport":
        return cls.from_dict(json.loads(text))


def render_static_report(report: StaticReport) -> str:
    """Human-readable text form of one report (the CLI's ``--output text``)."""
    lines: List[str] = []
    title = report.case_id or report.kernel
    lines.append("=" * 78)
    lines.append(f"Static lint report for {title} [{report.arch_flag}]")
    lines.append("=" * 78)
    if report.architecture_fallback is not None:
        lines.append(
            f"note: unknown architecture flag {report.architecture_fallback!r}; "
            "figures use the fallback architecture"
        )
    if report.ingest is not None:
        lines.append(
            f"ingest: {report.ingest.get('decoded')}/{report.ingest.get('total')} "
            f"instructions decoded from a {report.ingest.get('dialect')} listing "
            f"(coverage {report.ingest.get('coverage')})"
        )
    counts = report.counts_by_severity()
    lines.append(
        "Diagnostics: "
        + ", ".join(f"{counts[severity]} {severity}" for severity in SEVERITIES)
    )
    for entry in report.functions:
        kind = "kernel" if entry.is_kernel else "function"
        lines.append("-" * 78)
        lines.append(
            f"{kind} {entry.name}: {entry.blocks} blocks, "
            f"{entry.instructions} instructions, {entry.loops} loops"
        )
        registers = entry.registers
        if registers:
            lines.append(
                f"  registers: declared {registers.get('declared')}, "
                f"static max live {registers.get('static_max_live')}"
            )
        depth = entry.depth
        if depth:
            lines.append(
                f"  depth: critical path {depth.get('critical_path')} cycles, "
                f"ilp {depth.get('ilp')}"
            )
        if entry.occupancy:
            declared = entry.occupancy.get("declared", {})
            lines.append(
                f"  occupancy: {declared.get('occupancy')} "
                f"(limited by {declared.get('limiter')})"
            )
        if entry.unreachable_blocks:
            lines.append(f"  unreachable blocks: {entry.unreachable_blocks}")
    if report.diagnostics:
        lines.append("-" * 78)
        for diagnostic in report.diagnostics:
            lines.append(diagnostic.describe())
    lines.append("=" * 78)
    return "\n".join(lines)
