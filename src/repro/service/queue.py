"""The bounded FIFO job queue.

The daemon's admission control lives here: the queue holds at most
``capacity`` pending jobs and *rejects* — it never blocks — submissions that
would exceed it (:class:`~repro.service.errors.QueueFullError`, surfaced
over HTTP as a 429).  Backpressure therefore lands on the submitting client
immediately instead of piling unbounded work onto the daemon.  A batch
larger than the whole capacity is a different failure — no amount of
retrying can ever admit it — and raises
:class:`~repro.service.errors.ServiceValidationError` (a 400) instead.

Batch submissions are admitted atomically: :meth:`JobQueue.put_many` either
enqueues every job of the batch or none of them, so a client never has to
reconcile a half-accepted batch.

Shutdown uses in-band sentinels (:meth:`JobQueue.close`): one ``None`` per
worker thread is appended *behind* whatever is already queued, so a draining
daemon finishes every admitted job — FIFO order guarantees a worker only
sees its sentinel after the real work — and each worker exits on the first
sentinel it pops.  Sentinels bypass the capacity bound: closing a full
queue must never fail.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import List, Optional

from repro.service.errors import QueueFullError, ServiceValidationError


class JobQueue:
    """A bounded FIFO of job ids with rejecting (non-blocking) admission."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._not_empty = threading.Condition(threading.Lock())
        #: Total jobs ever admitted (sentinels excluded).
        self.admitted = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def put(self, item: str) -> None:
        """Admit one job id, or raise :class:`QueueFullError`."""
        self.put_many([item])

    def put_many(self, items: List[str]) -> None:
        """Admit a batch atomically: all of it fits, or none is enqueued."""
        if len(items) > self.capacity:
            # Retrying can never help; this is a client error (400), not
            # transient backpressure (429).
            raise ServiceValidationError(
                f"batch of {len(items)} jobs exceeds the queue capacity of "
                f"{self.capacity}; split it or raise --queue-size"
            )
        with self._not_empty:
            depth = self._depth_locked()
            if depth + len(items) > self.capacity:
                raise QueueFullError(
                    f"job queue is full ({depth}/{self.capacity} queued, "
                    f"{len(items)} submitted); retry later"
                )
            self._items.extend(items)
            self.admitted += len(items)
            self._not_empty.notify(len(items))

    def restore(self, items: List[str]) -> None:
        """Re-enqueue recovered job ids, bypassing the capacity bound.

        Crash recovery must never reject work the daemon already admitted
        before it died: every id a persistent store hands back from
        :meth:`~repro.service.jobs.JobRegistry.recover` is requeued even if
        that briefly overshoots ``capacity`` — fresh submissions still see
        the bound (an overshot queue rejects them until it drains).
        """
        with self._not_empty:
            self._items.extend(items)
            self.admitted += len(items)
            self._not_empty.notify(len(items))

    def close(self, workers: int) -> None:
        """Append one shutdown sentinel per worker (capacity-exempt)."""
        with self._not_empty:
            self._items.extend([None] * workers)
            self._not_empty.notify(workers)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the oldest item, blocking until one exists.

        Returns the job id, or ``None`` for a shutdown sentinel.  With a
        ``timeout``, raises :class:`TimeoutError` if nothing arrives.
        """
        with self._not_empty:
            while not self._items:
                if not self._not_empty.wait(timeout):
                    raise TimeoutError("job queue stayed empty")
            return self._items.popleft()

    def clear(self) -> List[str]:
        """Drop (and return) every pending job id; sentinels stay queued."""
        with self._not_empty:
            dropped = [item for item in self._items if item is not None]
            sentinels = len(self._items) - len(dropped)
            self._items.clear()
            self._items.extend([None] * sentinels)
            return dropped

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Pending jobs (sentinels excluded) — the ``/v1/stats`` queue depth."""
        with self._not_empty:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return sum(1 for item in self._items if item is not None)

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobQueue(depth={self.depth}, capacity={self.capacity})"
