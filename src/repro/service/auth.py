"""Bearer-token authentication and token-bucket rate limiting.

The daemon's admission gate, as HTTP middleware state: an
:class:`AuthPolicy` decides *who* a request is
(:meth:`~AuthPolicy.authenticate`, RFC 6750 ``Authorization: Bearer``)
and *whether they may submit right now* (:meth:`~AuthPolicy.check_rate`,
one lazily-created :class:`TokenBucket` per client).  The three failure
modes map onto distinct protocol answers:

- no credentials where some are required -> 401
  :class:`~repro.service.errors.AuthenticationError` (with
  ``WWW-Authenticate: Bearer``),
- a token the daemon does not know -> 403
  :class:`~repro.service.errors.AuthorizationError`,
- a known client over its budget -> 429
  :class:`~repro.service.errors.RateLimitedError` carrying the bucket's
  exact refill delay (surfaced as ``Retry-After``).

**Anonymous mode is the default**: a policy with no tokens authenticates
everyone as ``"anonymous"``, so a local daemon keeps working with zero
configuration — rate limiting still applies if configured (all anonymous
traffic shares one bucket).  Reads (job polling, stats) are
authenticated but never rate limited; only submissions spend tokens, so
a waiting client can poll its job as fast as it likes.

The clock is injectable everywhere for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.service.errors import (
    AuthenticationError,
    AuthorizationError,
    RateLimitedError,
)

#: The client name unauthenticated requests act as when no tokens are
#: configured.
ANONYMOUS = "anonymous"


class TokenBucket:
    """The classic token-bucket limiter: ``rate`` tokens/s, ``burst`` deep.

    :meth:`try_acquire` is non-blocking: it either spends one token and
    returns ``0.0``, or returns how many seconds until one token will have
    refilled.  Refill is computed lazily from the elapsed time, so an idle
    bucket costs nothing.
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> float:
        """Spend one token (returns 0.0) or the seconds until one refills."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


class AuthPolicy:
    """Who may talk to the daemon, and how fast.

    ``tokens`` maps bearer tokens to client names (the names appear in
    rate-limit messages and make per-client buckets legible); an empty or
    ``None`` mapping means anonymous mode.  ``rate`` (submissions/second)
    and ``burst`` configure the per-client bucket; ``rate=None`` disables
    rate limiting entirely.
    """

    def __init__(self, tokens: Optional[Dict[str, str]] = None,
                 rate: Optional[float] = None, burst: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive (or None), got {rate}")
        if burst is not None and burst < 1:
            raise ValueError(f"burst must be >= 1 (or None), got {burst}")
        self.tokens = dict(tokens or {})
        self.rate = rate
        self.burst = burst if burst is not None else (
            max(1, int(rate)) if rate is not None else None
        )
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()

    @property
    def anonymous(self) -> bool:
        """True when no tokens are configured (everyone is ``anonymous``)."""
        return not self.tokens

    @property
    def limited(self) -> bool:
        """True when a rate limit is configured."""
        return self.rate is not None

    # ------------------------------------------------------------------
    def authenticate(self, authorization: Optional[str]) -> str:
        """The client name behind an ``Authorization`` header value.

        Raises :class:`AuthenticationError` (401) for missing/malformed
        credentials and :class:`AuthorizationError` (403) for a token the
        policy does not know.  In anonymous mode every request — with or
        without a header — is the ``anonymous`` client.
        """
        if self.anonymous:
            return ANONYMOUS
        if not authorization:
            raise AuthenticationError(
                "this daemon requires a bearer token: send "
                "'Authorization: Bearer <token>'"
            )
        scheme, _, token = authorization.partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise AuthenticationError(
                f"unsupported Authorization scheme {scheme!r}: send "
                f"'Authorization: Bearer <token>'"
            )
        client = self.tokens.get(token)
        if client is None:
            raise AuthorizationError("unrecognized bearer token")
        return client

    def check_rate(self, client: str) -> None:
        """Spend one submission token for ``client`` or raise 429.

        Raises :class:`RateLimitedError` with the bucket's refill delay in
        ``retry_after`` when the client is over budget.  No-op without a
        configured rate.
        """
        if self.rate is None:
            return
        with self._buckets_lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client] = bucket
        wait = bucket.try_acquire()
        if wait > 0.0:
            raise RateLimitedError(
                f"client {client!r} is over its rate limit of "
                f"{self.rate}/s (burst {self.burst}); retry in "
                f"{wait:.3f}s",
                retry_after=wait,
            )

    def describe(self) -> dict:
        """The ``/v1/stats`` summary of this policy (never the tokens)."""
        return {
            "anonymous": self.anonymous,
            "clients": len(set(self.tokens.values())),
            "rate": self.rate,
            "burst": self.burst,
        }
