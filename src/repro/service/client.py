"""The thin client of the advising daemon.

:class:`ServiceClient` speaks the daemon's ``/v1`` protocol over stdlib
``urllib`` and translates both directions of the boundary: requests go out
as their :meth:`~repro.api.request.AdvisingRequest.to_dict` wire form,
results come back as typed :class:`~repro.api.result.AdvisingResult`
objects, and daemon-side errors resurface as the *same*
:mod:`repro.service.errors` classes the daemon raised (a full queue raises
:class:`~repro.service.errors.QueueFullError` in the submitting process).

The high-level calls mirror :class:`~repro.api.session.AdvisingSession`
deliberately::

    client = ServiceClient("http://127.0.0.1:8765")
    result = client.advise(request)            # submit + poll to completion
    results = client.advise_many(requests)     # atomic batch, ordered

so moving a workload from inline advising onto the daemon is a one-line
change — and the results are bit-identical.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Union

from repro.api.request import AdvisingRequest
from repro.api.result import AdvisingResult
from repro.service.errors import (
    RateLimitedError,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeoutError,
    error_for_kind,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.report import StaticReport

#: How often :meth:`ServiceClient.wait` polls a job by default.
DEFAULT_POLL_INTERVAL = 0.05

#: How long (seconds) the client will sleep-and-retry rate-limited
#: submissions before giving up and re-raising, by default.
DEFAULT_RATE_LIMIT_PATIENCE = 30.0


@dataclass
class JobView:
    """A client-side snapshot of one job (``GET /v1/jobs/<id>`` decoded)."""

    job_id: str
    state: str
    index: int
    label: str
    result: Optional[AdvisingResult]
    error: Optional[str]
    raw: dict

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


class ServiceClient:
    """Talks to one advising daemon."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 token: Optional[str] = None,
                 rate_limit_patience: float = DEFAULT_RATE_LIMIT_PATIENCE):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Bearer token sent as ``Authorization: Bearer <token>`` on every
        #: call; ``None`` talks to anonymous daemons.
        self.token = token
        #: Total seconds the client will spend honouring ``Retry-After``
        #: on 429 rate-limit answers before re-raising; 0 disables retries.
        self.rate_limit_patience = rate_limit_patience

    # ------------------------------------------------------------------
    # Raw protocol
    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._decode_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServiceConnectionError(
                f"cannot reach the advising service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    @staticmethod
    def _decode_error(exc: urllib.error.HTTPError) -> ServiceError:
        message = f"HTTP {exc.code}"
        kind = None
        retry_after: Optional[float] = None
        try:
            body = json.loads(exc.read().decode("utf-8"))
            message = body.get("error", message)
            kind = body.get("error_kind")
            retry_after = body.get("retry_after")
        except Exception:  # non-JSON error body: keep the status line
            pass
        if retry_after is None:
            header = exc.headers.get("Retry-After") if exc.headers else None
            try:
                retry_after = float(header) if header else None
            except ValueError:
                retry_after = None
        return error_for_kind(kind, exc.code, message, retry_after=retry_after)

    def _get(self, path: str) -> dict:
        return self._call("GET", path)

    def _post(self, path: str, payload: dict) -> dict:
        """POST, sleeping on ``Retry-After`` while patience remains.

        Only rate-limit 429s are retried — queue-full 429s carry a
        different ``error_kind`` and keep raising immediately (the queue
        gives no refill estimate; backoff policy belongs to the caller).
        """
        patience = self.rate_limit_patience
        while True:
            try:
                return self._call("POST", path, payload)
            except RateLimitedError as exc:
                delay = exc.retry_after if exc.retry_after is not None else 1.0
                if patience < delay:
                    raise
                patience -= delay
                time.sleep(delay)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._get("/v1/healthz")

    def stats(self) -> dict:
        return self._get("/v1/stats")

    # ------------------------------------------------------------------
    # Submission and polling
    # ------------------------------------------------------------------
    @staticmethod
    def _payload(request: Union[AdvisingRequest, dict]) -> dict:
        return request.to_dict() if isinstance(request, AdvisingRequest) else request

    def submit(self, request: Union[AdvisingRequest, dict]) -> str:
        """Enqueue one request; returns its job id immediately."""
        return self._post("/v1/advise", {"request": self._payload(request)})["job_id"]

    def submit_many(self, requests: Sequence[Union[AdvisingRequest, dict]]) -> List[str]:
        """Enqueue a batch atomically; returns job ids in submission order."""
        reply = self._post(
            "/v1/batch",
            {"requests": [self._payload(request) for request in requests]},
        )
        return list(reply["job_ids"])

    def job(self, job_id: str) -> JobView:
        """One snapshot of a job's state (404 -> ``UnknownJobError``)."""
        raw = self._get(f"/v1/jobs/{job_id}")
        result = raw.get("result")
        return JobView(
            job_id=raw["job_id"],
            state=raw["state"],
            index=raw.get("index", 0),
            label=raw.get("label", ""),
            result=AdvisingResult.from_dict(result) if result is not None else None,
            error=raw.get("error"),
            raw=raw,
        )

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> JobView:
        """Poll a job until it is terminal (or ``ServiceTimeoutError``)."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view.terminal:
                return view
            if time.monotonic() >= deadline:
                raise ServiceTimeoutError(
                    f"job {job_id} still {view.state!r} after {timeout:.1f}s"
                )
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Session-shaped conveniences
    # ------------------------------------------------------------------
    def advise(
        self,
        request: Union[AdvisingRequest, dict],
        timeout: float = 600.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> AdvisingResult:
        """Submit one request and wait for its typed result.

        Like :meth:`AdvisingSession.advise
        <repro.api.session.AdvisingSession.advise>`, advising failures are
        *captured*: the returned result carries ``error`` instead of this
        call raising.  Only service-level failures (unreachable daemon,
        queue full, timeout) raise.
        """
        view = self.wait(self.submit(request), timeout, poll_interval)
        if view.result is None:
            raise ServiceError(
                f"job {view.job_id} ended {view.state!r} without a result: "
                f"{view.error or 'unknown error'}"
            )
        return view.result

    def advise_many(
        self,
        requests: Sequence[Union[AdvisingRequest, dict]],
        timeout: float = 600.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> List[AdvisingResult]:
        """Submit a batch atomically; results come back in submission order."""
        job_ids = self.submit_many(requests)
        results = []
        deadline = time.monotonic() + timeout
        for job_id in job_ids:
            remaining = max(deadline - time.monotonic(), 0.001)
            view = self.wait(job_id, remaining, poll_interval)
            if view.result is None:
                raise ServiceError(
                    f"job {view.job_id} ended {view.state!r} without a "
                    f"result: {view.error or 'unknown error'}"
                )
            results.append(view.result)
        return results

    def stream(
        self,
        requests: Sequence[Union[AdvisingRequest, dict]],
        timeout: float = 600.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> Iterator[AdvisingResult]:
        """Yield results in *completion* order (``result.index`` keeps the
        submission position) — the remote twin of
        :meth:`AdvisingSession.stream
        <repro.api.session.AdvisingSession.stream>`.
        """
        outstanding = self.submit_many(requests)
        deadline = time.monotonic() + timeout
        while outstanding:
            settled = []
            for job_id in outstanding:
                view = self.job(job_id)
                if not view.terminal:
                    continue
                settled.append(job_id)
                if view.result is None:
                    raise ServiceError(
                        f"job {view.job_id} ended {view.state!r} without a "
                        f"result: {view.error or 'unknown error'}"
                    )
                yield view.result
            outstanding = [job_id for job_id in outstanding
                           if job_id not in settled]
            if not outstanding:
                return
            if time.monotonic() >= deadline:
                raise ServiceTimeoutError(
                    f"{len(outstanding)} of {len(requests)} jobs still "
                    f"unfinished after {timeout:.1f}s"
                )
            time.sleep(poll_interval)

    def lint(self, request: Union[AdvisingRequest, dict]) -> "StaticReport":
        """Run the daemon-side static lint; returns the typed report.

        Synchronous — the static checker never simulates, so there is no
        job to poll.  The remote twin of :meth:`AdvisingSession.lint
        <repro.api.session.AdvisingSession.lint>`.
        """
        from repro.staticcheck.report import StaticReport

        raw = self._post("/v1/lint", {"request": self._payload(request)})
        return StaticReport.from_dict(raw)
