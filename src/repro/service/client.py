"""The thin client of the advising daemon.

:class:`ServiceClient` speaks the daemon's ``/v1`` protocol over stdlib
``urllib`` and translates both directions of the boundary: requests go out
as their :meth:`~repro.api.request.AdvisingRequest.to_dict` wire form,
results come back as typed :class:`~repro.api.result.AdvisingResult`
objects, and daemon-side errors resurface as the *same*
:mod:`repro.service.errors` classes the daemon raised (a full queue raises
:class:`~repro.service.errors.QueueFullError` in the submitting process).

The high-level calls mirror :class:`~repro.api.session.AdvisingSession`
deliberately::

    client = ServiceClient("http://127.0.0.1:8765")
    result = client.advise(request)            # submit + poll to completion
    results = client.advise_many(requests)     # atomic batch, ordered

so moving a workload from inline advising onto the daemon is a one-line
change — and the results are bit-identical.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.api.request import AdvisingRequest
from repro.api.result import AdvisingResult
from repro.service.errors import (
    ServiceConnectionError,
    ServiceError,
    ServiceTimeoutError,
    error_for_status,
)

#: How often :meth:`ServiceClient.wait` polls a job by default.
DEFAULT_POLL_INTERVAL = 0.05


@dataclass
class JobView:
    """A client-side snapshot of one job (``GET /v1/jobs/<id>`` decoded)."""

    job_id: str
    state: str
    index: int
    label: str
    result: Optional[AdvisingResult]
    error: Optional[str]
    raw: dict

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


class ServiceClient:
    """Talks to one advising daemon."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw protocol
    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._decode_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServiceConnectionError(
                f"cannot reach the advising service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    @staticmethod
    def _decode_error(exc: urllib.error.HTTPError) -> ServiceError:
        message = f"HTTP {exc.code}"
        try:
            body = json.loads(exc.read().decode("utf-8"))
            message = body.get("error", message)
        except Exception:  # non-JSON error body: keep the status line
            pass
        return error_for_status(exc.code, message)

    def _get(self, path: str) -> dict:
        return self._call("GET", path)

    def _post(self, path: str, payload: dict) -> dict:
        return self._call("POST", path, payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._get("/v1/healthz")

    def stats(self) -> dict:
        return self._get("/v1/stats")

    # ------------------------------------------------------------------
    # Submission and polling
    # ------------------------------------------------------------------
    @staticmethod
    def _payload(request: Union[AdvisingRequest, dict]) -> dict:
        return request.to_dict() if isinstance(request, AdvisingRequest) else request

    def submit(self, request: Union[AdvisingRequest, dict]) -> str:
        """Enqueue one request; returns its job id immediately."""
        return self._post("/v1/advise", {"request": self._payload(request)})["job_id"]

    def submit_many(self, requests: Sequence[Union[AdvisingRequest, dict]]) -> List[str]:
        """Enqueue a batch atomically; returns job ids in submission order."""
        reply = self._post(
            "/v1/batch",
            {"requests": [self._payload(request) for request in requests]},
        )
        return list(reply["job_ids"])

    def job(self, job_id: str) -> JobView:
        """One snapshot of a job's state (404 -> ``UnknownJobError``)."""
        raw = self._get(f"/v1/jobs/{job_id}")
        result = raw.get("result")
        return JobView(
            job_id=raw["job_id"],
            state=raw["state"],
            index=raw.get("index", 0),
            label=raw.get("label", ""),
            result=AdvisingResult.from_dict(result) if result is not None else None,
            error=raw.get("error"),
            raw=raw,
        )

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> JobView:
        """Poll a job until it is terminal (or ``ServiceTimeoutError``)."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view.terminal:
                return view
            if time.monotonic() >= deadline:
                raise ServiceTimeoutError(
                    f"job {job_id} still {view.state!r} after {timeout:.1f}s"
                )
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Session-shaped conveniences
    # ------------------------------------------------------------------
    def advise(
        self,
        request: Union[AdvisingRequest, dict],
        timeout: float = 600.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> AdvisingResult:
        """Submit one request and wait for its typed result.

        Like :meth:`AdvisingSession.advise
        <repro.api.session.AdvisingSession.advise>`, advising failures are
        *captured*: the returned result carries ``error`` instead of this
        call raising.  Only service-level failures (unreachable daemon,
        queue full, timeout) raise.
        """
        view = self.wait(self.submit(request), timeout, poll_interval)
        if view.result is None:
            raise ServiceError(
                f"job {view.job_id} ended {view.state!r} without a result: "
                f"{view.error or 'unknown error'}"
            )
        return view.result

    def advise_many(
        self,
        requests: Sequence[Union[AdvisingRequest, dict]],
        timeout: float = 600.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> List[AdvisingResult]:
        """Submit a batch atomically; results come back in submission order."""
        job_ids = self.submit_many(requests)
        results = []
        deadline = time.monotonic() + timeout
        for job_id in job_ids:
            remaining = max(deadline - time.monotonic(), 0.001)
            view = self.wait(job_id, remaining, poll_interval)
            if view.result is None:
                raise ServiceError(
                    f"job {view.job_id} ended {view.state!r} without a "
                    f"result: {view.error or 'unknown error'}"
                )
            results.append(view.result)
        return results
