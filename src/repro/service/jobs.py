"""Jobs and the job store.

A :class:`Job` is one admitted advising request travelling through the
daemon: it carries the validated request payload (wire form), walks the
state machine ``queued -> running -> done | failed``, and ends with the
serialized :class:`~repro.api.result.AdvisingResult` — the same envelope an
inline :meth:`AdvisingSession.advise <repro.api.session.AdvisingSession
.advise>` call would dump, which is what makes daemon results bit-identical
to inline ones.

The :class:`JobStore` is the daemon's in-memory registry of jobs.  It is
fully thread-safe (HTTP handler threads read views while worker threads
advance states) and evicts *terminal* jobs whose results have outlived
``ttl`` seconds, so a long-running daemon's memory is bounded by its
traffic rate rather than its uptime.  Queued and running jobs are never
evicted.  The clock is injectable for deterministic eviction tests.

:class:`JobStore` and the SQLite-backed
:class:`~repro.service.repository.JobRepository` implement one registry
contract (:class:`JobRegistry`): the daemon talks to either
interchangeably, and eviction is *explicit* (:meth:`JobStore.evict`) on
both — the daemon schedules it — in addition to being piggybacked on
access, so the two backends share one eviction story instead of each
inventing its own.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

from repro.api.schema import API_SCHEMA_VERSION
from repro.service.errors import UnknownJobError

#: The job state machine, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")
#: States a job can never leave (and the only ones TTL eviction touches).
TERMINAL_STATES = ("done", "failed")


def new_job_id() -> str:
    """A fresh opaque job id (collision-free across daemon restarts)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Job:
    """One advising request's journey through the daemon."""

    job_id: str
    #: Submission index inside its batch (0 for single submissions); the
    #: executed result keeps the same index, like pool-streamed results do.
    index: int
    #: The validated ``advising_request`` envelope (canonical wire form).
    payload: dict
    label: str
    state: str = "queued"
    #: The ``advising_result`` envelope once terminal (present for failed
    #: jobs too: execution failures are captured into the result, mirroring
    #: the batch advisor's error capture).
    result: Optional[dict] = None
    #: The captured error text when the job failed, ``None`` otherwise.
    error: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Id of the in-flight job this submission coalesced onto (``None`` for
    #: jobs that ran — or will run — their own simulation).
    coalesced_with: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def view(self) -> dict:
        """The JSON shape ``GET /v1/jobs/<id>`` answers with."""
        return {
            "kind": "job",
            "schema_version": API_SCHEMA_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "index": self.index,
            "label": self.label,
            "result": self.result,
            "error": self.error,
            "coalesced_with": self.coalesced_with,
            "waited_seconds": (
                round(self.started_at - self.submitted_at, 6)
                if self.started_at is not None else None
            ),
            "ran_seconds": (
                round(self.finished_at - self.started_at, 6)
                if self.finished_at is not None and self.started_at is not None
                else None
            ),
        }


@dataclass
class JobCounts:
    """Aggregate throughput counters for ``/v1/stats``."""

    submitted: int = 0
    done: int = 0
    failed: int = 0
    #: Jobs dropped from the queue by a no-drain shutdown — they end in the
    #: ``failed`` *state* but were never executed, so they count neither as
    #: served nor as failed executions.
    aborted: int = 0
    evicted: int = 0
    #: Submissions that attached to another job's in-flight simulation
    #: instead of queueing their own (request coalescing).
    coalesced: int = 0

    @property
    def served(self) -> int:
        """Jobs actually executed to a terminal state."""
        return self.done + self.failed

    def as_dict(self) -> dict:
        """The ``/v1/stats`` representation of these counters."""
        return {
            "submitted": self.submitted,
            "done": self.done,
            "failed": self.failed,
            "aborted": self.aborted,
            "evicted": self.evicted,
            "coalesced": self.coalesced,
            "served": self.served,
        }


class JobStore:
    """Thread-safe registry of every job the daemon has admitted.

    ``ttl`` bounds how long a *terminal* job's result stays queryable; a
    ``ttl`` of ``None`` disables eviction (jobs live until shutdown).
    Eviction is piggybacked on every store operation — a daemon that is
    being talked to is a daemon that is being cleaned.
    """

    def __init__(self, ttl: Optional[float] = 900.0,
                 clock: Callable[[], float] = time.monotonic):
        if ttl is not None and ttl <= 0:
            raise ValueError(f"job ttl must be positive (or None), got {ttl}")
        self.ttl = ttl
        self._clock = clock
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self.counts = JobCounts()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, payload: dict, label: str, index: int = 0) -> Job:
        """Register a fresh ``queued`` job for a validated payload."""
        job = Job(
            job_id=new_job_id(), index=index, payload=payload, label=label,
            submitted_at=self._clock(),
        )
        with self._lock:
            self._evict_locked()
            self._jobs[job.job_id] = job
            self.counts.submitted += 1
        return job

    def discard(self, job_id: str) -> None:
        """Forget a job that was never admitted (queue rejected it)."""
        with self._lock:
            if self._jobs.pop(job_id, None) is not None:
                self.counts.submitted -= 1

    def mark_running(self, job_id: str) -> Job:
        with self._lock:
            job = self._get_locked(job_id)
            job.state = "running"
            job.started_at = self._clock()
            return job

    def attach(self, job_id: str, primary_id: str) -> Job:
        """Record that ``job_id`` coalesced onto ``primary_id``'s run."""
        with self._lock:
            job = self._get_locked(job_id)
            job.coalesced_with = primary_id
            self.counts.coalesced += 1
            return job

    def finish(self, job_id: str, result: Optional[dict],
               error: Optional[str]) -> Job:
        """Move an executed job to ``done``/``failed`` with its result."""
        return self._settle(job_id, result, error, aborted=False)

    def abort(self, job_id: str, error: str) -> Job:
        """Fail a job that was dropped from the queue without running."""
        return self._settle(job_id, None, error, aborted=True)

    def _settle(self, job_id: str, result: Optional[dict],
                error: Optional[str], aborted: bool) -> Job:
        with self._lock:
            job = self._get_locked(job_id)
            job.state = "failed" if error is not None else "done"
            job.result = result
            job.error = error
            job.finished_at = self._clock()
            if job.started_at is None:  # aborted straight out of the queue
                job.started_at = job.finished_at
            if aborted:
                self.counts.aborted += 1
            elif error is not None:
                self.counts.failed += 1
            else:
                self.counts.done += 1
            return job

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            self._evict_locked()
            return self._get_locked(job_id)

    def view(self, job_id: str) -> dict:
        with self._lock:
            self._evict_locked()
            return self._get_locked(job_id).view()

    def pending(self) -> List[str]:
        """Ids of every non-terminal job, oldest first."""
        with self._lock:
            return [job.job_id for job in self._jobs.values() if not job.terminal]

    def recover(self) -> List[str]:
        """Job ids to re-enqueue after a restart.

        An in-memory store forgets everything with its process, so there is
        never anything to recover; the SQLite repository overrides this
        with real crash recovery.  Part of the :class:`JobRegistry`
        contract so the daemon can call it unconditionally.
        """
        return []

    def close(self) -> None:
        """Release backing resources (no-op for the in-memory store)."""

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._jobs

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict(self) -> int:
        """Drop terminal jobs older than ``ttl``; returns how many."""
        with self._lock:
            return self._evict_locked()

    def _evict_locked(self) -> int:
        if self.ttl is None:
            return 0
        deadline = self._clock() - self.ttl
        stale = [
            job_id for job_id, job in self._jobs.items()
            if job.terminal and job.finished_at is not None
            and job.finished_at <= deadline
        ]
        for job_id in stale:
            del self._jobs[job_id]
        self.counts.evicted += len(stale)
        return len(stale)

    def _get_locked(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(
                f"unknown job id {job_id!r} (never submitted, or its result "
                f"outlived the {self.ttl}s retention window)"
            ) from None


@runtime_checkable
class JobRegistry(Protocol):
    """The registry contract the daemon programs against.

    Implemented by the in-memory :class:`JobStore` and the SQLite-backed
    :class:`~repro.service.repository.JobRepository`.  Everything the
    daemon, HTTP layer, and tests need from a store is here — swap
    backends without touching callers.
    """

    ttl: Optional[float]
    counts: JobCounts

    def create(self, payload: dict, label: str, index: int = 0) -> Job: ...
    def discard(self, job_id: str) -> None: ...
    def mark_running(self, job_id: str) -> Job: ...
    def attach(self, job_id: str, primary_id: str) -> Job: ...
    def finish(self, job_id: str, result: Optional[dict],
               error: Optional[str]) -> Job: ...
    def abort(self, job_id: str, error: str) -> Job: ...
    def get(self, job_id: str) -> Job: ...
    def view(self, job_id: str) -> dict: ...
    def pending(self) -> List[str]: ...
    def recover(self) -> List[str]: ...
    def evict(self) -> int: ...
    def close(self) -> None: ...
    def __len__(self) -> int: ...
    def __contains__(self, job_id: str) -> bool: ...
