"""The error vocabulary of the advising service.

Every failure the daemon can signal — and every failure the client can
relay — is a :class:`ServiceError`, itself an
:class:`~repro.api.schema.ApiError` so callers that already handle the
service-layer API family catch service failures for free.  Each error class
maps to exactly one HTTP status code (:data:`HTTP_STATUS`), and the client
reverses the mapping (:func:`error_for_status`), so a
:class:`QueueFullError` raised inside the daemon resurfaces as a
:class:`QueueFullError` in the submitting process.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.api.schema import ApiError


class ServiceError(ApiError):
    """Base class of every advising-service failure."""


class ServiceValidationError(ServiceError, ValueError):
    """A submitted payload is malformed (bad JSON, bad envelope, bad shape)."""


class UnknownJobError(ServiceError, KeyError):
    """No job with the requested id exists (never did, or TTL-evicted)."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message.
        return self.args[0] if self.args else "unknown job"


class QueueFullError(ServiceError):
    """The bounded job queue is at capacity — backpressure, try again later."""


class AuthenticationError(ServiceError):
    """The request carried no usable credentials (and the daemon wants some)."""


class AuthorizationError(ServiceError):
    """The request's bearer token is not one the daemon recognizes."""


class RateLimitedError(ServiceError):
    """The client exceeded its token-bucket rate; retry after a delay.

    ``retry_after`` (seconds, possibly fractional) is how long the bucket
    needs to refill one token — the daemon rounds it up into the HTTP
    ``Retry-After`` header, and :class:`~repro.service.client.ServiceClient`
    sleeps on it before retrying.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailableError(ServiceError):
    """The daemon is draining or stopped and accepts no new work."""


class ServiceConnectionError(ServiceError, ConnectionError):
    """The client could not reach the daemon at all."""


class ServiceTimeoutError(ServiceError, TimeoutError):
    """The client gave up waiting for a job to reach a terminal state."""


#: Error class -> HTTP status code the daemon answers with.  Two classes
#: share 429 (queue backpressure vs. rate limiting), so wire-form error
#: bodies also carry an ``error_kind`` (:data:`ERROR_KIND`) and the client
#: reconstructs from the kind first, the status only as a fallback.
HTTP_STATUS = {
    ServiceValidationError: 400,
    AuthenticationError: 401,
    AuthorizationError: 403,
    UnknownJobError: 404,
    QueueFullError: 429,
    RateLimitedError: 429,
    ServiceUnavailableError: 503,
}

#: Error class -> the stable ``error_kind`` string in error bodies.
ERROR_KIND = {
    ServiceValidationError: "validation",
    AuthenticationError: "authentication",
    AuthorizationError: "authorization",
    UnknownJobError: "unknown_job",
    QueueFullError: "queue_full",
    RateLimitedError: "rate_limited",
    ServiceUnavailableError: "unavailable",
}


def status_for_error(exc: BaseException) -> int:
    """The HTTP status code for a daemon-side failure (500 when unmapped)."""
    for klass, status in HTTP_STATUS.items():
        if isinstance(exc, klass):
            return status
    return 500


def kind_for_error(exc: BaseException) -> str:
    """The ``error_kind`` string for a daemon-side failure."""
    for klass, kind in ERROR_KIND.items():
        if isinstance(exc, klass):
            return kind
    return "internal"


def error_for_status(status: int, message: str) -> ServiceError:
    """The client-side twin of a daemon error response, from status alone."""
    klass: Optional[Type[ServiceError]] = None
    for candidate, candidate_status in HTTP_STATUS.items():
        if candidate_status == status:
            klass = candidate
            break
    if klass is None:
        return ServiceError(f"service answered HTTP {status}: {message}")
    return klass(message)


def error_for_kind(kind: Optional[str], status: int, message: str,
                   retry_after: Optional[float] = None) -> ServiceError:
    """The client-side twin of a daemon error response.

    Prefers the body's ``error_kind`` (unambiguous) and falls back to the
    status code for daemons that predate kinds.
    """
    for klass, candidate in ERROR_KIND.items():
        if candidate == kind:
            if klass is RateLimitedError:
                return RateLimitedError(message, retry_after=retry_after)
            return klass(message)
    return error_for_status(status, message)
