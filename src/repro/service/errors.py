"""The error vocabulary of the advising service.

Every failure the daemon can signal — and every failure the client can
relay — is a :class:`ServiceError`, itself an
:class:`~repro.api.schema.ApiError` so callers that already handle the
service-layer API family catch service failures for free.  Each error class
maps to exactly one HTTP status code (:data:`HTTP_STATUS`), and the client
reverses the mapping (:func:`error_for_status`), so a
:class:`QueueFullError` raised inside the daemon resurfaces as a
:class:`QueueFullError` in the submitting process.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.api.schema import ApiError


class ServiceError(ApiError):
    """Base class of every advising-service failure."""


class ServiceValidationError(ServiceError, ValueError):
    """A submitted payload is malformed (bad JSON, bad envelope, bad shape)."""


class UnknownJobError(ServiceError, KeyError):
    """No job with the requested id exists (never did, or TTL-evicted)."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message.
        return self.args[0] if self.args else "unknown job"


class QueueFullError(ServiceError):
    """The bounded job queue is at capacity — backpressure, try again later."""


class ServiceUnavailableError(ServiceError):
    """The daemon is draining or stopped and accepts no new work."""


class ServiceConnectionError(ServiceError, ConnectionError):
    """The client could not reach the daemon at all."""


class ServiceTimeoutError(ServiceError, TimeoutError):
    """The client gave up waiting for a job to reach a terminal state."""


#: Error class -> HTTP status code the daemon answers with.
HTTP_STATUS = {
    ServiceValidationError: 400,
    UnknownJobError: 404,
    QueueFullError: 429,
    ServiceUnavailableError: 503,
}


def status_for_error(exc: BaseException) -> int:
    """The HTTP status code for a daemon-side failure (500 when unmapped)."""
    for klass, status in HTTP_STATUS.items():
        if isinstance(exc, klass):
            return status
    return 500


def error_for_status(status: int, message: str) -> ServiceError:
    """The client-side twin of a daemon error response."""
    klass: Optional[Type[ServiceError]] = None
    for candidate, candidate_status in HTTP_STATUS.items():
        if candidate_status == status:
            klass = candidate
            break
    if klass is None:
        return ServiceError(f"service answered HTTP {status}: {message}")
    return klass(message)
